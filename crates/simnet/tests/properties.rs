//! Property tests for the hierarchical timer wheel and the event queue
//! built on it: random schedule/cancel/reschedule sequences must pop in
//! exactly the order a `BinaryHeap` oracle produces, including the FIFO
//! tie-break at equal timestamps — and that must keep holding beyond the
//! wheel's direct horizon (the overflow level) and through heavy cancel
//! churn (tombstone compaction).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;

use simnet::{SimTime, SimWorld, TimerWheel};

/// Deterministic splitmix64 — the only randomness source here, so every
/// failing case is reproducible from its printed seed.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// A timestamp spread across magnitudes: same-tick collisions and
    /// all four in-wheel levels get exercised (10^8 ns stays inside the
    /// wheel's ~68.7 s direct horizon).
    fn time(&mut self) -> u64 {
        let magnitude = self.next() % 9; // 10^0 .. 10^8 ns spans
        let span = 10u64.pow(magnitude as u32);
        self.next() % span
    }

    /// A timestamp strictly beyond the wheel's direct horizon (2^36 ns
    /// with a 4096 ns tick and 24 tick bits), spread across many
    /// overflow buckets: with the cursor anywhere below the horizon,
    /// placement is guaranteed to land in the overflow `BTreeMap`, and
    /// popping has to cascade it back through the levels.
    fn far_time(&mut self) -> u64 {
        (1u64 << 36) + self.next() % (1u64 << 40)
    }
}

/// Runs `check` over `cases` independent seeds derived from `seed`.
fn for_random_cases(seed: u64, cases: u64, check: impl Fn(u64)) {
    for case in 0..cases {
        let case_seed = seed ^ (case.wrapping_mul(0x9E3779B97F4A7C15));
        check(case_seed);
    }
}

#[test]
fn wheel_pops_in_heap_oracle_order() {
    for_random_cases(0x57EE1, 40, |case_seed| {
        let mut rng = Lcg(case_seed);
        let mut wheel: TimerWheel<u64> = TimerWheel::new();
        let mut oracle: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut popped = Vec::new();
        let mut expected = Vec::new();
        let ops = 400 + (rng.next() % 400);
        for _ in 0..ops {
            if rng.next().is_multiple_of(3) && !oracle.is_empty() {
                // Interleaved pop: both structures must agree mid-run.
                let Reverse(want) = oracle.pop().unwrap();
                let (t, s, item) = wheel.pop().expect("wheel has entries");
                assert_eq!((t, s), want, "seed {case_seed:#x}");
                assert_eq!(item, s, "payload follows its entry");
                expected.push(want);
                popped.push((t, s));
            } else {
                let t = rng.time();
                wheel.push(t, seq, seq);
                oracle.push(Reverse((t, seq)));
                seq += 1;
            }
        }
        while let Some(Reverse(want)) = oracle.pop() {
            let (t, s, _) = wheel.pop().expect("wheel drains with oracle");
            assert_eq!((t, s), want, "seed {case_seed:#x}");
        }
        assert!(wheel.pop().is_none(), "wheel empty when oracle is");
    });
}

#[test]
fn wheel_fifo_tie_break_at_equal_timestamps() {
    for_random_cases(0x71E8EAC, 20, |case_seed| {
        let mut rng = Lcg(case_seed);
        let mut wheel: TimerWheel<u64> = TimerWheel::new();
        // Few distinct timestamps, many entries: ties dominate.
        let times: Vec<u64> = (0..4).map(|_| rng.time()).collect();
        for seq in 0..200u64 {
            let t = times[(rng.next() % 4) as usize];
            wheel.push(t, seq, seq);
        }
        let mut last: Option<(u64, u64)> = None;
        while let Some((t, s, _)) = wheel.pop() {
            if let Some((lt, ls)) = last {
                assert!(
                    (t, s) > (lt, ls),
                    "equal times must pop in insertion order: \
                     ({t},{s}) after ({lt},{ls}), seed {case_seed:#x}"
                );
            }
            last = Some((t, s));
        }
    });
}

#[test]
fn wheel_retain_matches_oracle_cancellation() {
    for_random_cases(0xCA2CE1, 30, |case_seed| {
        let mut rng = Lcg(case_seed);
        let mut wheel: TimerWheel<u64> = TimerWheel::new();
        let mut live: Vec<(u64, u64)> = Vec::new();
        for seq in 0..300u64 {
            let t = rng.time();
            wheel.push(t, seq, seq);
            live.push((t, seq));
        }
        // Cancel a random third via retain; the oracle drops the same.
        let keep_mask: Vec<bool> = (0..300).map(|_| !rng.next().is_multiple_of(3)).collect();
        wheel.retain(|seq| keep_mask[seq as usize]);
        live.retain(|&(_, seq)| keep_mask[seq as usize]);
        live.sort_unstable();
        for want in live {
            let (t, s, _) = wheel.pop().expect("survivors pop");
            assert_eq!((t, s), want, "seed {case_seed:#x}");
        }
        assert!(wheel.pop().is_none());
    });
}

/// The overflow level against the heap oracle: pushes mix in-horizon and
/// far-future timestamps, and interleaved pops drag the cursor across
/// level and overflow-bucket boundaries, so entries parked in the
/// `BTreeMap` must cascade back through the wheel levels in exactly the
/// oracle's `(time, seq)` order.
#[test]
fn wheel_overflow_level_matches_heap_oracle() {
    for_random_cases(0x0F10D, 30, |case_seed| {
        let mut rng = Lcg(case_seed);
        let mut wheel: TimerWheel<u64> = TimerWheel::new();
        let mut oracle: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let ops = 300 + (rng.next() % 300);
        for _ in 0..ops {
            if rng.next().is_multiple_of(4) && !oracle.is_empty() {
                let Reverse(want) = oracle.pop().unwrap();
                let (t, s, item) = wheel.pop().expect("wheel has entries");
                assert_eq!((t, s), want, "seed {case_seed:#x}");
                assert_eq!(item, s, "payload follows its entry");
            } else {
                let t = if rng.next().is_multiple_of(2) {
                    rng.far_time()
                } else {
                    rng.time()
                };
                wheel.push(t, seq, seq);
                oracle.push(Reverse((t, seq)));
                seq += 1;
            }
        }
        assert_eq!(wheel.len(), oracle.len(), "seed {case_seed:#x}");
        while let Some(Reverse(want)) = oracle.pop() {
            let (t, s, _) = wheel.pop().expect("wheel drains with oracle");
            assert_eq!((t, s), want, "seed {case_seed:#x}");
        }
        assert!(wheel.pop().is_none(), "wheel empty when oracle is");
    });
}

/// `retain` over the overflow level: cancelling entries that live in
/// far-future overflow buckets must drop exactly the same set as the
/// oracle, keep the length bookkeeping exact, and leave the survivors
/// popping in oracle order.
#[test]
fn wheel_retain_reaches_the_overflow_level() {
    for_random_cases(0xCA2FA2, 20, |case_seed| {
        let mut rng = Lcg(case_seed);
        let mut wheel: TimerWheel<u64> = TimerWheel::new();
        let mut live: Vec<(u64, u64)> = Vec::new();
        for seq in 0..300u64 {
            let t = if seq % 3 == 0 {
                rng.time()
            } else {
                rng.far_time()
            };
            wheel.push(t, seq, seq);
            live.push((t, seq));
        }
        let keep_mask: Vec<bool> = (0..300).map(|_| !rng.next().is_multiple_of(3)).collect();
        wheel.retain(|seq| keep_mask[seq as usize]);
        live.retain(|&(_, seq)| keep_mask[seq as usize]);
        assert_eq!(wheel.len(), live.len(), "seed {case_seed:#x}");
        live.sort_unstable();
        for want in live {
            let (t, s, _) = wheel.pop().expect("survivors pop");
            assert_eq!((t, s), want, "seed {case_seed:#x}");
        }
        assert!(wheel.pop().is_none());
    });
}

#[test]
fn event_queue_schedule_cancel_reschedule_matches_model() {
    for_random_cases(0x5C8ED, 25, |case_seed| {
        let mut rng = Lcg(case_seed);
        let mut world = SimWorld::new(case_seed);
        let log: Rc<std::cell::RefCell<Vec<u64>>> = Rc::default();

        // Model: (time, schedule-order, payload) of every live event.
        let mut model: Vec<(u64, u64, u64)> = Vec::new();
        let mut order = 0u64;
        let mut handles = Vec::new();
        let n = 150 + (rng.next() % 150);
        for payload in 0..n {
            let t = rng.time();
            let l2 = log.clone();
            let id = world.schedule_at(SimTime::from_nanos(t), move |_w| {
                l2.borrow_mut().push(payload);
            });
            handles.push(id);
            model.push((t, order, payload));
            order += 1;
        }
        // Cancel a random subset; double-cancels must report false.
        for _ in 0..n / 3 {
            let pick = (rng.next() % n) as usize;
            let was_live = model.iter().any(|&(_, _, p)| p == pick as u64);
            assert_eq!(
                world.cancel(handles[pick]),
                was_live,
                "cancel verdict mismatch, seed {case_seed:#x}"
            );
            model.retain(|&(_, _, p)| p != pick as u64);
        }
        // Reschedule a random subset: cancel + fresh schedule, new order.
        for _ in 0..n / 4 {
            let pick = (rng.next() % n) as usize;
            if !world.cancel(handles[pick]) {
                continue;
            }
            model.retain(|&(_, _, p)| p != pick as u64);
            let t = rng.time();
            let l2 = log.clone();
            handles[pick] = world.schedule_at(SimTime::from_nanos(t), move |_w| {
                l2.borrow_mut().push(pick as u64);
            });
            model.push((t, order, pick as u64));
            order += 1;
        }

        world.run();
        model.sort_unstable();
        let want: Vec<u64> = model.iter().map(|&(_, _, p)| p).collect();
        assert_eq!(*log.borrow(), want, "seed {case_seed:#x}");
    });
}

/// Heavy cancel/reschedule churn pinned to far-future timestamps: every
/// tombstone lives in an overflow bucket the pop path will not reach for
/// tens of simulated seconds, so only compaction can reclaim it. The
/// queue must (a) actually compact, (b) keep the tombstone population
/// under its floor-or-half-of-live bound after every cancel, and (c)
/// still execute exactly the surviving model in `(time, order)` order.
#[test]
fn event_queue_compacts_far_future_cancel_churn() {
    for_random_cases(0xFA2C0DE, 10, |case_seed| {
        let mut rng = Lcg(case_seed);
        let mut world = SimWorld::new(case_seed);
        let log: Rc<std::cell::RefCell<Vec<u64>>> = Rc::default();

        let mut model: Vec<(u64, u64, u64)> = Vec::new();
        let mut handles = Vec::new();
        let mut order = 0u64;
        let n = 400u64;
        for payload in 0..n {
            let t = rng.far_time();
            let l2 = log.clone();
            handles.push(world.schedule_at(SimTime::from_nanos(t), move |_w| {
                l2.borrow_mut().push(payload);
            }));
            model.push((t, order, payload));
            order += 1;
        }

        for _wave in 0..6 {
            // A cancel storm: most of the population tombstones...
            for _ in 0..n / 2 {
                let pick = (rng.next() % n) as usize;
                if world.cancel(handles[pick]) {
                    model.retain(|&(_, _, p)| p != pick as u64);
                    let tombstones = world.cancelled_pending();
                    assert!(
                        tombstones < 64 || tombstones * 2 <= world.pending_events(),
                        "tombstones unbounded: {tombstones} vs {} live, seed {case_seed:#x}",
                        world.pending_events()
                    );
                }
            }
            // ...and a reschedule wave repopulates at fresh far times.
            for _ in 0..n / 4 {
                let pick = (rng.next() % n) as usize;
                if !world.cancel(handles[pick]) {
                    continue;
                }
                model.retain(|&(_, _, p)| p != pick as u64);
                let t = rng.far_time();
                let l2 = log.clone();
                handles[pick] = world.schedule_at(SimTime::from_nanos(t), move |_w| {
                    l2.borrow_mut().push(pick as u64);
                });
                model.push((t, order, pick as u64));
                order += 1;
            }
        }
        assert!(
            world.queue_compactions() > 0,
            "the churn never triggered a compaction sweep, seed {case_seed:#x}"
        );

        world.run();
        model.sort_unstable();
        let want: Vec<u64> = model.iter().map(|&(_, _, p)| p).collect();
        assert_eq!(*log.borrow(), want, "seed {case_seed:#x}");
    });
}
