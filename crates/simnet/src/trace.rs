//! Lightweight event tracing.
//!
//! Tracing is disabled by default (it allocates); experiments and tests can
//! enable it to inspect the exact sequence of simulated events.

use crate::time::SimTime;

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time at which the event happened.
    pub time: SimTime,
    /// Short category tag, e.g. `"net"`, `"tcp"`, `"madio"`.
    pub category: &'static str,
    /// Free-form message.
    pub message: String,
}

/// A bounded in-memory trace sink.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    records: Vec<TraceRecord>,
    capacity: usize,
}

impl Trace {
    /// Creates a disabled trace with a default capacity.
    pub fn new() -> Self {
        Trace {
            enabled: false,
            records: Vec::new(),
            capacity: 1_000_000,
        }
    }

    /// Enables recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Disables recording (existing records are kept).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Whether recording is currently enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Sets the maximum number of records kept; older records are not
    /// evicted, recording simply stops at the cap.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
    }

    /// Records a message if tracing is enabled and the cap is not reached.
    pub fn record(&mut self, time: SimTime, category: &'static str, message: impl Into<String>) {
        if self.enabled && self.records.len() < self.capacity {
            self.records.push(TraceRecord {
                time,
                category,
                message: message.into(),
            });
        }
    }

    /// All records collected so far.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records whose category matches.
    pub fn by_category<'a>(
        &'a self,
        category: &'a str,
    ) -> impl Iterator<Item = &'a TraceRecord> + 'a {
        self.records.iter().filter(move |r| r.category == category)
    }

    /// Clears all records.
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new();
        t.record(SimTime::ZERO, "net", "hello");
        assert!(t.records().is_empty());
    }

    #[test]
    fn enabled_trace_records_and_filters() {
        let mut t = Trace::new();
        t.enable();
        assert!(t.is_enabled());
        t.record(SimTime::from_nanos(1), "net", "a");
        t.record(SimTime::from_nanos(2), "tcp", "b");
        t.record(SimTime::from_nanos(3), "net", "c");
        assert_eq!(t.records().len(), 3);
        assert_eq!(t.by_category("net").count(), 2);
        t.clear();
        assert!(t.records().is_empty());
    }

    #[test]
    fn capacity_caps_recording() {
        let mut t = Trace::new();
        t.enable();
        t.set_capacity(2);
        for i in 0..5 {
            t.record(SimTime::from_nanos(i), "x", "m");
        }
        assert_eq!(t.records().len(), 2);
    }
}
