//! Lightweight event tracing.
//!
//! Tracing is disabled by default (it allocates); experiments and tests can
//! enable it to inspect the exact sequence of simulated events.

use std::collections::VecDeque;

use crate::time::SimTime;

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time at which the event happened.
    pub time: SimTime,
    /// Short category tag, e.g. `"net"`, `"tcp"`, `"madio"`.
    pub category: &'static str,
    /// Free-form message.
    pub message: String,
}

/// A bounded in-memory trace sink: a ring buffer that evicts its oldest
/// records at capacity and counts what it evicted.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    records: VecDeque<TraceRecord>,
    capacity: usize,
    records_dropped: u64,
}

impl Trace {
    /// Creates a disabled trace with a default capacity.
    pub fn new() -> Self {
        Trace {
            enabled: false,
            records: VecDeque::new(),
            capacity: 1_000_000,
            records_dropped: 0,
        }
    }

    /// Enables recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Disables recording (existing records are kept).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Whether recording is currently enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Sets the maximum number of records kept; the *oldest* records are
    /// evicted (and counted in [`Trace::records_dropped`]) when the cap is
    /// exceeded, immediately if the trace already holds more.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.records.len() > capacity {
            self.records.pop_front();
            self.records_dropped += 1;
        }
    }

    /// Records a message if tracing is enabled, evicting the oldest
    /// record once the cap is reached.
    pub fn record(&mut self, time: SimTime, category: &'static str, message: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if self.records.len() >= self.capacity {
            self.records.pop_front();
            self.records_dropped += 1;
        }
        if self.capacity > 0 {
            self.records.push_back(TraceRecord {
                time,
                category,
                message: message.into(),
            });
        }
    }

    /// All records currently held, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no records are held.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted oldest-first to stay within the capacity since the
    /// last [`Trace::clear`].
    pub fn records_dropped(&self) -> u64 {
        self.records_dropped
    }

    /// Records whose category matches.
    pub fn by_category<'a>(
        &'a self,
        category: &'a str,
    ) -> impl Iterator<Item = &'a TraceRecord> + 'a {
        self.records.iter().filter(move |r| r.category == category)
    }

    /// Clears all records and the eviction counter.
    pub fn clear(&mut self) {
        self.records.clear();
        self.records_dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new();
        t.record(SimTime::ZERO, "net", "hello");
        assert!(t.is_empty());
        assert_eq!(t.records_dropped(), 0);
    }

    #[test]
    fn enabled_trace_records_and_filters() {
        let mut t = Trace::new();
        t.enable();
        assert!(t.is_enabled());
        t.record(SimTime::from_nanos(1), "net", "a");
        t.record(SimTime::from_nanos(2), "tcp", "b");
        t.record(SimTime::from_nanos(3), "net", "c");
        assert_eq!(t.len(), 3);
        assert_eq!(t.by_category("net").count(), 2);
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn capacity_evicts_oldest_and_counts_drops() {
        let mut t = Trace::new();
        t.enable();
        t.set_capacity(2);
        for i in 0..5 {
            t.record(SimTime::from_nanos(i), "x", format!("m{i}"));
        }
        // The ring keeps the two *newest* records and counts the evicted.
        assert_eq!(t.len(), 2);
        let kept: Vec<&str> = t.records().map(|r| r.message.as_str()).collect();
        assert_eq!(kept, vec!["m3", "m4"]);
        assert_eq!(t.records_dropped(), 3);
        t.clear();
        assert_eq!(t.records_dropped(), 0);
    }

    #[test]
    fn shrinking_capacity_evicts_immediately() {
        let mut t = Trace::new();
        t.enable();
        for i in 0..4 {
            t.record(SimTime::from_nanos(i), "x", format!("m{i}"));
        }
        t.set_capacity(1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.records().next().unwrap().message, "m3");
        assert_eq!(t.records_dropped(), 3);
    }
}
