//! Ready-made topologies matching the deployments discussed in the paper:
//! a PC cluster with a SAN, two clusters joined by a WAN, a pair of hosts on
//! a lossy Internet path, …
//!
//! These builders are used throughout the examples, integration tests and
//! experiment harnesses so every experiment runs on the same calibrated
//! hardware models.

use crate::network::NetworkId;
use crate::node::NodeId;
use crate::spec::NetworkSpec;
use crate::world::SimWorld;

/// A PC cluster: nodes attached to a high-performance SAN and to a
/// commodity LAN (the paper's test platform has both Myrinet-2000 and
/// switched Ethernet-100).
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Cluster nodes, in rank order.
    pub nodes: Vec<NodeId>,
    /// The system-area network (e.g. Myrinet-2000), if present.
    pub san: Option<NetworkId>,
    /// The local-area network (e.g. Ethernet-100).
    pub lan: NetworkId,
}

impl Cluster {
    /// Number of nodes in the cluster.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node of the given rank.
    pub fn node(&self, rank: usize) -> NodeId {
        self.nodes[rank]
    }
}

/// Builds a cluster of `n` nodes attached to both a SAN (given spec) and an
/// Ethernet-100 LAN.
pub fn build_san_cluster(
    world: &mut SimWorld,
    name: &str,
    n: usize,
    san_spec: NetworkSpec,
) -> Cluster {
    let san = world.add_network(san_spec);
    let lan = world.add_network(NetworkSpec::ethernet_100());
    let mut nodes = Vec::with_capacity(n);
    for i in 0..n {
        let node = world.add_node(&format!("{name}{i}"));
        world.attach(node, san);
        world.attach(node, lan);
        nodes.push(node);
    }
    Cluster {
        nodes,
        san: Some(san),
        lan,
    }
}

/// Builds a cluster of `n` nodes attached only to an Ethernet-100 LAN.
pub fn build_lan_cluster(world: &mut SimWorld, name: &str, n: usize) -> Cluster {
    let lan = world.add_network(NetworkSpec::ethernet_100());
    let mut nodes = Vec::with_capacity(n);
    for i in 0..n {
        let node = world.add_node(&format!("{name}{i}"));
        world.attach(node, lan);
        nodes.push(node);
    }
    Cluster {
        nodes,
        san: None,
        lan,
    }
}

/// The paper's test platform: a pair of nodes connected by both
/// Myrinet-2000 and switched Ethernet-100.
pub struct SanPair {
    /// The world holding the scenario.
    pub world: SimWorld,
    /// First node.
    pub a: NodeId,
    /// Second node.
    pub b: NodeId,
    /// The Myrinet-2000 network.
    pub san: NetworkId,
    /// The Ethernet-100 network.
    pub lan: NetworkId,
}

/// Builds the two-node Myrinet + Ethernet test platform.
pub fn san_pair(seed: u64) -> SanPair {
    let mut world = SimWorld::new(seed);
    let cluster = build_san_cluster(&mut world, "node", 2, NetworkSpec::myrinet_2000());
    SanPair {
        a: cluster.nodes[0],
        b: cluster.nodes[1],
        san: cluster.san.expect("SAN requested"),
        lan: cluster.lan,
        world,
    }
}

/// A simple two-node scenario over a single network.
pub struct Pair {
    /// The world holding the scenario.
    pub world: SimWorld,
    /// First node.
    pub a: NodeId,
    /// Second node.
    pub b: NodeId,
    /// The connecting network.
    pub network: NetworkId,
}

/// Two hosts joined by a given network spec.
pub fn pair_over(seed: u64, spec: NetworkSpec) -> Pair {
    let mut world = SimWorld::new(seed);
    let a = world.add_node("a");
    let b = world.add_node("b");
    let network = world.add_network(spec);
    world.attach(a, network);
    world.attach(b, network);
    Pair {
        world,
        a,
        b,
        network,
    }
}

/// Two hosts at either end of the VTHD WAN (Ethernet-100 access links).
pub fn wan_pair(seed: u64) -> Pair {
    pair_over(seed, NetworkSpec::vthd_wan())
}

/// Two hosts at either end of a slow, lossy trans-continental link.
pub fn lossy_internet_pair(seed: u64) -> Pair {
    pair_over(seed, NetworkSpec::lossy_internet())
}

/// A grid deployment: two SAN clusters joined by a WAN, as in the paper's
/// "two separate PC clusters interconnected through a high-bandwidth WAN"
/// deployment configuration.
pub struct Grid {
    /// The world holding the scenario.
    pub world: SimWorld,
    /// First cluster.
    pub cluster_a: Cluster,
    /// Second cluster.
    pub cluster_b: Cluster,
    /// The wide-area network joining every node of both clusters.
    pub wan: NetworkId,
}

/// Builds a two-cluster grid with `n_per_cluster` nodes per cluster.
pub fn two_clusters_over_wan(seed: u64, n_per_cluster: usize) -> Grid {
    let mut world = SimWorld::new(seed);
    let cluster_a = build_san_cluster(&mut world, "a", n_per_cluster, NetworkSpec::myrinet_2000());
    let cluster_b = build_san_cluster(&mut world, "b", n_per_cluster, NetworkSpec::myrinet_2000());
    let wan = world.add_network(NetworkSpec::vthd_wan());
    for &n in cluster_a.nodes.iter().chain(cluster_b.nodes.iter()) {
        world.attach(n, wan);
    }
    Grid {
        world,
        cluster_a,
        cluster_b,
        wan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::NetworkClass;

    #[test]
    fn san_pair_has_both_networks() {
        let p = san_pair(1);
        let between = p.world.networks_between(p.a, p.b);
        assert_eq!(between.len(), 2);
        assert_eq!(p.world.network(p.san).spec.class, NetworkClass::San);
        assert_eq!(p.world.network(p.lan).spec.class, NetworkClass::Lan);
    }

    #[test]
    fn grid_nodes_reach_each_other_only_via_wan_across_clusters() {
        let g = two_clusters_over_wan(1, 4);
        let a0 = g.cluster_a.node(0);
        let a1 = g.cluster_a.node(1);
        let b0 = g.cluster_b.node(0);
        // Inside a cluster: SAN + LAN + WAN.
        assert_eq!(g.world.networks_between(a0, a1).len(), 3);
        // Across clusters: only the WAN.
        let across = g.world.networks_between(a0, b0);
        assert_eq!(across, vec![g.wan]);
        assert_eq!(g.world.network(g.wan).spec.class, NetworkClass::Wan);
    }

    #[test]
    fn lan_cluster_has_no_san() {
        let mut world = SimWorld::new(0);
        let c = build_lan_cluster(&mut world, "x", 3);
        assert!(c.san.is_none());
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert_eq!(world.networks_between(c.node(0), c.node(2)), vec![c.lan]);
    }

    #[test]
    fn lossy_pair_uses_internet_class() {
        let p = lossy_internet_pair(0);
        assert_eq!(
            p.world.network(p.network).spec.class,
            NetworkClass::Internet
        );
    }
}
