//! Simulated network fabrics.
//!
//! A [`Network`] models a switched fabric (a Myrinet switch, an Ethernet
//! switch, a WAN path) to which nodes attach. Each attached node has a full
//! duplex access port; transmission occupies the sender's TX port for the
//! serialization time, travels for the propagation latency, and then
//! occupies the receiver's RX port, which models incast contention when
//! several senders converge on one receiver.

use std::collections::HashMap;

use crate::node::NodeId;
use crate::spec::NetworkSpec;
use crate::stats::NetworkStats;
use crate::time::SimTime;

/// Identifier of a network fabric inside a [`crate::world::SimWorld`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetworkId(pub u32);

impl NetworkId {
    /// Index usable for vectors keyed by network.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NetworkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "net{}", self.0)
    }
}

/// A network fabric and its dynamic port state.
#[derive(Debug)]
pub struct Network {
    /// Identifier of this network.
    pub id: NetworkId,
    /// Static hardware description.
    pub spec: NetworkSpec,
    members: Vec<NodeId>,
    tx_busy_until: HashMap<NodeId, SimTime>,
    rx_busy_until: HashMap<NodeId, SimTime>,
    /// Traffic counters.
    pub stats: NetworkStats,
}

impl Network {
    pub(crate) fn new(id: NetworkId, spec: NetworkSpec) -> Self {
        Network {
            id,
            spec,
            members: Vec::new(),
            tx_busy_until: HashMap::new(),
            rx_busy_until: HashMap::new(),
            stats: NetworkStats::default(),
        }
    }

    pub(crate) fn attach(&mut self, node: NodeId) {
        if !self.members.contains(&node) {
            self.members.push(node);
            self.tx_busy_until.insert(node, SimTime::ZERO);
            self.rx_busy_until.insert(node, SimTime::ZERO);
        }
    }

    /// Nodes attached to this fabric.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Whether `node` is attached.
    pub fn is_attached(&self, node: NodeId) -> bool {
        self.members.contains(&node)
    }

    /// Instant at which `node`'s transmit port becomes free.
    pub fn tx_free_at(&self, node: NodeId) -> SimTime {
        self.tx_busy_until
            .get(&node)
            .copied()
            .unwrap_or(SimTime::ZERO)
    }

    /// Instant at which `node`'s receive port becomes free.
    pub fn rx_free_at(&self, node: NodeId) -> SimTime {
        self.rx_busy_until
            .get(&node)
            .copied()
            .unwrap_or(SimTime::ZERO)
    }

    pub(crate) fn set_tx_busy_until(&mut self, node: NodeId, t: SimTime) {
        self.tx_busy_until.insert(node, t);
    }

    pub(crate) fn set_rx_busy_until(&mut self, node: NodeId, t: SimTime) {
        self.rx_busy_until.insert(node, t);
    }
}

/// Error returned when a frame cannot be accepted for transmission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendError {
    /// The source node is not attached to this network.
    SourceNotAttached,
    /// The destination node is not attached to this network.
    DestinationNotAttached,
    /// The frame payload exceeds the network MTU; the caller must segment.
    FrameTooLarge {
        /// Payload size of the rejected frame.
        size: usize,
        /// Maximum allowed payload size.
        mtu: usize,
    },
    /// The network id does not exist in this world.
    NoSuchNetwork,
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::SourceNotAttached => write!(f, "source node is not attached to the network"),
            SendError::DestinationNotAttached => {
                write!(f, "destination node is not attached to the network")
            }
            SendError::FrameTooLarge { size, mtu } => {
                write!(
                    f,
                    "frame payload of {size} bytes exceeds the MTU of {mtu} bytes"
                )
            }
            SendError::NoSuchNetwork => write!(f, "no such network"),
        }
    }
}

impl std::error::Error for SendError {}
