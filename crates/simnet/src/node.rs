//! Nodes: the hosts attached to simulated networks.

use crate::spec::HostProfile;

/// Identifier of a simulated host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index usable for vectors keyed by node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A simulated host: a name, and the host performance profile that layers
/// above use to charge CPU-side costs (memory copies, system calls).
#[derive(Debug, Clone)]
pub struct Node {
    /// Identifier of this node.
    pub id: NodeId,
    /// Human-readable name (used in traces).
    pub name: String,
    /// CPU/memory performance profile of the host.
    pub host: HostProfile,
}

impl Node {
    pub(crate) fn new(id: NodeId, name: impl Into<String>, host: HostProfile) -> Self {
        Node {
            id,
            name: name.into(),
            host,
        }
    }
}
