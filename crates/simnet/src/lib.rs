//! # simnet — deterministic discrete-event network simulator
//!
//! `simnet` is the hardware substrate of PadicoTM-RS. The original
//! PadicoTM (IPDPS 2004) was evaluated on real Myrinet-2000, Ethernet-100,
//! the VTHD WAN and a lossy trans-continental Internet link; none of that
//! hardware is available here, so this crate models it: nodes, switched
//! network fabrics with bandwidth/latency/MTU/loss, a virtual clock, and a
//! deterministic event queue.
//!
//! Everything above this crate (transports, Madeleine, NetAccess, the
//! PadicoTM abstractions, the middleware systems) is ordinary protocol code
//! that happens to run against simulated time, which makes every experiment
//! in the paper reproducible on any machine, bit-for-bit for a given seed.
//!
//! ## Example
//!
//! ```
//! use simnet::prelude::*;
//!
//! let mut world = SimWorld::new(7);
//! let a = world.add_node("a");
//! let b = world.add_node("b");
//! let net = world.add_network(NetworkSpec::myrinet_2000());
//! world.attach(a, net);
//! world.attach(b, net);
//!
//! // Deliver one 1 kB frame and observe the virtual time it took.
//! world.register_handler(b, ProtoId::user(0), |world, _net, frame| {
//!     println!("got {} bytes at {}", frame.payload_len(), world.now());
//! });
//! world.send_frame(net, Frame::new(a, b, ProtoId::user(0), vec![0u8; 1024])).unwrap();
//! world.run();
//! assert!(world.now() > SimTime::ZERO);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arena;
pub mod event;
pub mod frame;
pub mod loss;
pub mod network;
pub mod node;
pub mod rng;
pub mod shard;
pub mod spec;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod topology;
pub mod trace;
pub mod wheel;
pub mod world;

pub use arena::{FramePool, PoolStats};
pub use event::EventId;
pub use frame::{Frame, ProtoId};
pub use loss::LossModel;
pub use network::{Network, NetworkId, SendError};
pub use node::{Node, NodeId};
pub use rng::SimRng;
pub use shard::{
    run_partitioned, Partition, PartitionReport, PartitionStats, RemoteFrame, ShardMap,
    ShardOutcome, ShardStats, TrunkLookahead, REMOTE_NET,
};
pub use spec::{HostProfile, NetworkClass, NetworkSpec};
pub use stats::{NetworkStats, WorldStats};
pub use telemetry::{
    CauseId, Counter, DropCause, EventRing, FlightRecorder, Gauge, Histogram, Log2Histogram,
    MetricValue, MetricsRegistry, MetricsSnapshot, SnapshotBuilder, StreamTransition, TimedEvent,
    TraceEvent,
};
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceRecord};
pub use wheel::TimerWheel;
pub use world::SimWorld;

/// Convenient glob import for users of the simulator.
pub mod prelude {
    pub use crate::frame::{Frame, ProtoId};
    pub use crate::loss::LossModel;
    pub use crate::network::{NetworkId, SendError};
    pub use crate::node::NodeId;
    pub use crate::spec::{HostProfile, NetworkClass, NetworkSpec};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::topology;
    pub use crate::world::SimWorld;
}
