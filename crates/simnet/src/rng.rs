//! Deterministic random number generation for the simulator.
//!
//! Every source of randomness in a simulation comes from one seeded
//! generator owned by the [`crate::world::SimWorld`], so a given seed always
//! reproduces the exact same run.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// The simulator's random number generator (a seeded `StdRng`).
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Returns `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Uniform value in `[0, 1)`.
    pub fn gen_unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// Derives an independent generator from this one (for components that
    /// need their own stream without perturbing the world's).
    pub fn fork(&mut self) -> SimRng {
        SimRng::seeded(self.inner.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seeded(123);
        let mut b = SimRng::seeded(123);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0, 1_000_000), b.gen_range(0, 1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seeded(1);
        let mut b = SimRng::seeded(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0, u64::MAX) == b.gen_range(0, u64::MAX))
            .count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_degenerate() {
        let mut a = SimRng::seeded(9);
        assert_eq!(a.gen_range(5, 5), 5);
        assert_eq!(a.gen_range(7, 3), 7);
    }

    #[test]
    fn fork_is_deterministic() {
        let mut a = SimRng::seeded(77);
        let mut b = SimRng::seeded(77);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.gen_range(0, 1000), fb.gen_range(0, 1000));
    }
}
