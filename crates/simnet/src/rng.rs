//! Deterministic random number generation for the simulator.
//!
//! Every source of randomness in a simulation comes from one seeded
//! generator owned by the [`crate::world::SimWorld`], so a given seed always
//! reproduces the exact same run.
//!
//! The generator is a self-contained xoshiro256++ (seeded through
//! SplitMix64), so the simulator has no external dependencies and the
//! stream is stable across toolchain upgrades — bit-for-bit reproducibility
//! is part of the crate's contract.

/// The simulator's random number generator (xoshiro256++, seeded via
/// SplitMix64).
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        if p <= 0.0 {
            // Keep the stream position consistent with the p > 0 path.
            let _ = self.next_u64();
            return false;
        }
        self.gen_unit() < p
    }

    /// Uniform value in `[0, 1)`.
    pub fn gen_unit(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        let span = hi - lo;
        // Lemire's multiply-shift; the modulo bias over a u64 draw is
        // negligible for simulation purposes.
        let hi128 = (self.next_u64() as u128 * span as u128) >> 64;
        lo + hi128 as u64
    }

    /// Derives an independent generator from this one (for components that
    /// need their own stream without perturbing the world's).
    pub fn fork(&mut self) -> SimRng {
        SimRng::seeded(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seeded(123);
        let mut b = SimRng::seeded(123);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0, 1_000_000), b.gen_range(0, 1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seeded(1);
        let mut b = SimRng::seeded(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0, u64::MAX) == b.gen_range(0, u64::MAX))
            .count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_degenerate() {
        let mut a = SimRng::seeded(9);
        assert_eq!(a.gen_range(5, 5), 5);
        assert_eq!(a.gen_range(7, 3), 7);
    }

    #[test]
    fn fork_is_deterministic() {
        let mut a = SimRng::seeded(77);
        let mut b = SimRng::seeded(77);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.gen_range(0, 1000), fb.gen_range(0, 1000));
    }

    #[test]
    fn unit_draws_are_roughly_uniform() {
        let mut rng = SimRng::seeded(4242);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.gen_unit()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SimRng::seeded(7);
        let n = 50_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate was {rate}");
    }
}
