//! Freelist allocation for frame payloads.
//!
//! At 10⁵ nodes the simulator materializes millions of payload buffers;
//! allocating and freeing each one individually is pure overhead since
//! frames are immutable and short-lived. [`FramePool`] keeps a freelist
//! of retired `Vec<u8>` buffers: the hot path takes a buffer, fills it,
//! freezes it into [`Bytes`], and the receive handler gives the buffer
//! back via [`FramePool::reclaim`] — possible at zero cost because the
//! vendored [`Bytes`] exposes [`Bytes::try_into_vec`] for uniquely-owned
//! full buffers.
//!
//! The pool is deliberately not wired into [`SimWorld`](crate::world::SimWorld)
//! itself: payload lifecycle belongs to the workload, and each shard of a
//! partitioned run owns a private pool (the pool is plain data, no
//! interior sharing).

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;

use crate::telemetry::MetricsRegistry;

/// A bounded freelist of payload buffers.
#[derive(Debug)]
pub struct FramePool {
    free: Vec<Vec<u8>>,
    max_buffers: usize,
    stats: PoolStats,
}

/// Allocation counters of a [`FramePool`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers handed out from the freelist.
    pub reused: u64,
    /// Buffers that had to be freshly allocated (freelist empty).
    pub allocated: u64,
    /// Buffers returned to the freelist.
    pub reclaimed: u64,
    /// Reclaim attempts that failed (shared or sliced payloads) or found
    /// the freelist full.
    pub missed: u64,
}

impl FramePool {
    /// Creates a pool retaining at most `max_buffers` retired buffers.
    pub fn new(max_buffers: usize) -> Self {
        FramePool {
            free: Vec::new(),
            max_buffers,
            stats: PoolStats::default(),
        }
    }

    /// Takes a zero-filled buffer of exactly `len` bytes, reusing a
    /// retired allocation when one is available.
    pub fn take(&mut self, len: usize) -> Vec<u8> {
        let buf = match self.free.pop() {
            Some(mut buf) => {
                self.stats.reused += 1;
                buf.clear();
                buf.resize(len, 0);
                buf
            }
            None => {
                self.stats.allocated += 1;
                vec![0u8; len]
            }
        };
        self.debug_assert_conserved();
        buf
    }

    /// Tries to recover `payload`'s backing buffer into the freelist.
    /// Returns `true` on success; shared, sliced or surplus buffers are
    /// simply dropped (`false`).
    pub fn reclaim(&mut self, payload: Bytes) -> bool {
        let kept = match payload.try_into_vec() {
            Ok(buf) if self.free.len() < self.max_buffers => {
                self.stats.reclaimed += 1;
                self.free.push(buf);
                true
            }
            _ => {
                self.stats.missed += 1;
                false
            }
        };
        self.debug_assert_conserved();
        kept
    }

    /// Returns a buffer obtained via [`FramePool::take`] without it ever
    /// having become a payload.
    pub fn give(&mut self, buf: Vec<u8>) {
        if self.free.len() < self.max_buffers {
            self.stats.reclaimed += 1;
            self.free.push(buf);
        } else {
            self.stats.missed += 1;
        }
        self.debug_assert_conserved();
    }

    /// Runtime twin of the simlint C1 conservation rule: every buffer in
    /// the freelist arrived through a counted reclaim and left through a
    /// counted reuse, so `free == reclaimed - reused` at every step.
    /// Compiled out of release builds.
    fn debug_assert_conserved(&self) {
        debug_assert_eq!(
            self.free.len() as u64,
            self.stats.reclaimed - self.stats.reused,
            "frame-pool leak: freelist {} != reclaimed {} - reused {}",
            self.free.len(),
            self.stats.reclaimed,
            self.stats.reused,
        );
    }

    /// Buffers currently parked in the freelist.
    pub fn free_buffers(&self) -> usize {
        self.free.len()
    }

    /// Allocation counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Registers a shared pool into a [`MetricsRegistry`] under
    /// `sim.executor.pool.*` (hit/miss counters plus a freelist gauge),
    /// so [`MetricsSnapshot`](crate::telemetry::MetricsSnapshot) covers
    /// payload recycling wherever the sharded/partitioned executors use
    /// it. Holds only a weak reference — a dropped pool scrapes nothing.
    pub fn register_metrics(pool: &Rc<RefCell<FramePool>>, registry: &MetricsRegistry) {
        let weak = Rc::downgrade(pool);
        registry.register_collector(move |b| {
            let Some(pool) = weak.upgrade() else { return };
            let pool = pool.borrow();
            let s = pool.stats();
            b.counter("sim.executor.pool.reused", &[], s.reused);
            b.counter("sim.executor.pool.allocated", &[], s.allocated);
            b.counter("sim.executor.pool.reclaimed", &[], s.reclaimed);
            b.counter("sim.executor.pool.missed", &[], s.missed);
            b.gauge(
                "sim.executor.pool.free_buffers",
                &[],
                pool.free_buffers() as i64,
            );
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_reuses_the_allocation() {
        let mut pool = FramePool::new(8);
        let buf = pool.take(256);
        assert_eq!(buf.len(), 256);
        let payload = Bytes::from(buf);
        assert!(pool.reclaim(payload));
        assert_eq!(pool.free_buffers(), 1);
        let again = pool.take(64);
        assert_eq!(again.len(), 64);
        let s = pool.stats();
        assert_eq!((s.allocated, s.reused, s.reclaimed), (1, 1, 1));
    }

    #[test]
    fn shared_payloads_are_not_reclaimed() {
        let mut pool = FramePool::new(8);
        let payload = Bytes::from(pool.take(16));
        let clone = payload.clone();
        assert!(!pool.reclaim(payload));
        drop(clone);
        assert_eq!(pool.free_buffers(), 0);
        assert_eq!(pool.stats().missed, 1);
    }

    #[test]
    fn freelist_is_bounded() {
        let mut pool = FramePool::new(2);
        let bufs: Vec<_> = (0..5).map(|_| pool.take(8)).collect();
        for b in bufs {
            pool.give(b);
        }
        assert_eq!(pool.free_buffers(), 2);
        assert_eq!(pool.stats().missed, 3);
    }
}
