//! Hierarchical timer wheel — the hot-path replacement for the global
//! `BinaryHeap` event queue.
//!
//! Simulated grids at 10⁵ nodes push tens of millions of events through
//! the queue; a binary heap pays `O(log n)` comparisons *per push and per
//! pop* on a working set that blows the cache. The classic alternative
//! (Varghese & Lauck) is a hierarchy of timing wheels: insertion hashes
//! an event into a slot by its expiry tick (`O(1)`), and the clock cursor
//! cascades entries down one level at a time as it advances.
//!
//! This implementation keeps the simulator's determinism contract intact:
//! entries pop in exact `(time, seq)` order — including the FIFO
//! tie-break at equal timestamps — byte-for-byte identical to the
//! `BinaryHeap` it replaces (property-tested against that oracle in
//! `tests/properties.rs`).
//!
//! Shape: 4 levels × 64 slots over a 4096 ns tick, covering ~68.7 s of
//! virtual time; anything farther out parks in a sorted overflow map and
//! is re-placed when the cursor reaches its window. Slots within the
//! current tick drain into a small `ready` min-heap which provides the
//! exact ordering; per-level occupancy bitmaps make cursor advancement a
//! couple of `trailing_zeros` calls rather than a slot-by-slot scan.

use std::collections::{BTreeMap, BinaryHeap};

/// Nanoseconds per tick (2^12 = 4.096 µs). Events inside the same tick
/// are ordered exactly by `(time, seq)` via the ready heap, so the tick
/// size trades memory for cascade frequency without affecting order.
const TICK_SHIFT: u32 = 12;
/// log2(slots per level).
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
const SLOT_MASK: u64 = (SLOTS - 1) as u64;
/// Number of wheel levels; beyond `64^4` ticks entries go to overflow.
const LEVELS: usize = 4;
const WHEEL_BITS: u32 = SLOT_BITS * LEVELS as u32;

struct Entry<T> {
    time: u64,
    seq: u64,
    item: T,
}

/// Min-heap wrapper: `BinaryHeap` is a max-heap, so invert the ordering.
struct Ready<T>(Entry<T>);

impl<T> PartialEq for Ready<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.time == other.0.time && self.0.seq == other.0.seq
    }
}
impl<T> Eq for Ready<T> {}
impl<T> PartialOrd for Ready<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Ready<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.0.time, other.0.seq).cmp(&(self.0.time, self.0.seq))
    }
}

/// A hierarchical timer wheel holding `(time, seq, item)` entries and
/// popping them in exact `(time, seq)` order.
///
/// `seq` values are assigned by the caller (the event queue's insertion
/// counter) and must be unique; they provide the deterministic FIFO
/// tie-break at equal times.
pub struct TimerWheel<T> {
    /// Current tick. Entries with `tick <= cursor` live in `ready`.
    cursor: u64,
    /// Entries whose tick the cursor has reached, in exact pop order.
    ready: BinaryHeap<Ready<T>>,
    /// `LEVELS × SLOTS` slot vectors, flattened.
    slots: Vec<Vec<Entry<T>>>,
    /// Per-level occupancy bitmaps (bit i = slot i non-empty).
    occupied: [u64; LEVELS],
    /// Entries beyond the wheel horizon, keyed by `tick >> WHEEL_BITS`.
    overflow: BTreeMap<u64, Vec<Entry<T>>>,
    len: usize,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimerWheel<T> {
    /// Creates an empty wheel with the cursor at tick 0.
    pub fn new() -> Self {
        TimerWheel {
            cursor: 0,
            ready: BinaryHeap::new(),
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            overflow: BTreeMap::new(),
            len: 0,
        }
    }

    /// Total entries stored (including any not yet cascaded).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the wheel holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an entry. Entries at or before the cursor's tick (e.g. an
    /// event scheduled for "now" by a running handler) go straight to the
    /// ready heap, which keeps them in exact `(time, seq)` order relative
    /// to everything else in the current tick.
    pub fn push(&mut self, time: u64, seq: u64, item: T) {
        self.len += 1;
        self.place(Entry { time, seq, item });
    }

    /// `(time, seq)` of the earliest entry, advancing the cursor as
    /// needed to find it.
    pub fn peek(&mut self) -> Option<(u64, u64)> {
        self.advance();
        self.ready.peek().map(|r| (r.0.time, r.0.seq))
    }

    /// Removes and returns the earliest entry.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        self.advance();
        let r = self.ready.pop()?;
        self.len -= 1;
        Some((r.0.time, r.0.seq, r.0.item))
    }

    /// Drops every entry for which `keep(seq)` returns false. Used by the
    /// event queue to compact cancelled tombstones in place.
    pub fn retain(&mut self, mut keep: impl FnMut(u64) -> bool) {
        let mut removed = 0usize;
        for level in 0..LEVELS {
            for slot in 0..SLOTS {
                let v = &mut self.slots[level * SLOTS + slot];
                let before = v.len();
                v.retain(|e| keep(e.seq));
                removed += before - v.len();
                if v.is_empty() {
                    self.occupied[level] &= !(1u64 << slot);
                } else {
                    self.occupied[level] |= 1u64 << slot;
                }
            }
        }
        self.overflow.retain(|_, v| {
            let before = v.len();
            v.retain(|e| keep(e.seq));
            removed += before - v.len();
            !v.is_empty()
        });
        // BinaryHeap has no retain on stable paths we target; rebuild.
        let drained = std::mem::take(&mut self.ready).into_vec();
        let before = drained.len();
        let kept: Vec<Ready<T>> = drained.into_iter().filter(|r| keep(r.0.seq)).collect();
        removed += before - kept.len();
        self.ready = BinaryHeap::from(kept);
        self.len -= removed;
    }

    fn place(&mut self, entry: Entry<T>) {
        let tick = entry.time >> TICK_SHIFT;
        if tick <= self.cursor {
            self.ready.push(Ready(entry));
            return;
        }
        // Aligned-window placement: the entry goes to the lowest level
        // whose parent window still contains the cursor. This avoids the
        // circular-wrap ambiguity of offset-based wheels and makes "is
        // this slot current-or-future" a plain integer comparison.
        for level in 0..LEVELS {
            let parent_shift = SLOT_BITS * (level as u32 + 1);
            if tick >> parent_shift == self.cursor >> parent_shift {
                let idx = ((tick >> (SLOT_BITS * level as u32)) & SLOT_MASK) as usize;
                self.slots[level * SLOTS + idx].push(entry);
                self.occupied[level] |= 1u64 << idx;
                return;
            }
        }
        self.overflow
            .entry(tick >> WHEEL_BITS)
            .or_default()
            .push(entry);
    }

    /// Moves the cursor forward until the ready heap is non-empty or the
    /// wheel is exhausted. Jumps directly to occupied slots via the
    /// bitmaps, cascading higher-level slots down as it goes.
    fn advance(&mut self) {
        while self.ready.is_empty() && self.len > 0 {
            self.advance_once();
        }
    }

    fn advance_once(&mut self) {
        // Level 0: every entry in this block's L0 slots sits at a single
        // tick > cursor; jump to the first occupied one and drain it.
        let base = (self.cursor & SLOT_MASK) as u32;
        let mask = (!0u64).checked_shl(base + 1).unwrap_or(0);
        let avail = self.occupied[0] & mask;
        if avail != 0 {
            let idx = avail.trailing_zeros() as usize;
            self.cursor = (self.cursor & !SLOT_MASK) + idx as u64;
            self.occupied[0] &= !(1u64 << idx);
            for e in std::mem::take(&mut self.slots[idx]) {
                self.ready.push(Ready(e));
            }
            return;
        }
        // Higher levels: jump the cursor to the start of the first
        // occupied slot after the current one and re-place its entries
        // (they land one level down, or in ready if at the new cursor).
        // The slot holding the cursor itself is always empty at level
        // >= 1: entries in the cursor's own window were placed lower.
        for level in 1..LEVELS {
            let shift = SLOT_BITS * level as u32;
            let cur_idx = ((self.cursor >> shift) & SLOT_MASK) as u32;
            let mask = (!0u64).checked_shl(cur_idx + 1).unwrap_or(0);
            let avail = self.occupied[level] & mask;
            if avail != 0 {
                let idx = avail.trailing_zeros() as usize;
                let parent_shift = SLOT_BITS * (level as u32 + 1);
                let window = self.cursor >> parent_shift << parent_shift;
                self.cursor = window + ((idx as u64) << shift);
                self.occupied[level] &= !(1u64 << idx);
                for e in std::mem::take(&mut self.slots[level * SLOTS + idx]) {
                    self.place(e);
                }
                return;
            }
        }
        // Overflow: jump to the earliest parked window.
        if let Some((&window, _)) = self.overflow.iter().next() {
            let entries = self.overflow.remove(&window).expect("window present");
            self.cursor = window << WHEEL_BITS;
            for e in entries {
                self.place(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut TimerWheel<u32>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some((t, s, _)) = w.pop() {
            out.push((t, s));
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimerWheel::new();
        // Mixed magnitudes: same tick, same level-0 block, cross-level,
        // and overflow (~100 s out).
        let times = [
            5u64,
            7,
            5,
            4_000,
            4_100,
            1 << 20,
            (1 << 20) + 1,
            1 << 30,
            100_000_000_000,
            3,
        ];
        for (seq, &t) in times.iter().enumerate() {
            w.push(t, seq as u64, 0);
        }
        let got = drain(&mut w);
        let mut want: Vec<(u64, u64)> = times
            .iter()
            .enumerate()
            .map(|(s, &t)| (t, s as u64))
            .collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn push_into_the_past_pops_immediately_in_order() {
        let mut w = TimerWheel::new();
        w.push(10_000_000, 0, 0);
        assert_eq!(w.pop().map(|(t, s, _)| (t, s)), Some((10_000_000, 0)));
        // Cursor is now deep in; a push at an earlier time still pops
        // next (the simulator clamps times, but the wheel must not lose
        // or reorder entries regardless).
        w.push(5, 1, 0);
        w.push(10_000_001, 2, 0);
        assert_eq!(drain(&mut w), vec![(5, 1), (10_000_001, 2)]);
    }

    #[test]
    fn fifo_tie_break_at_equal_times() {
        let mut w = TimerWheel::new();
        for seq in 0..100u64 {
            w.push(999_999, seq, 0);
        }
        let got = drain(&mut w);
        assert_eq!(got, (0..100).map(|s| (999_999, s)).collect::<Vec<_>>());
    }

    #[test]
    fn retain_drops_and_rebuilds_bitmaps() {
        let mut w = TimerWheel::new();
        for seq in 0..1000u64 {
            w.push(seq * 77_777, seq, 0);
        }
        w.retain(|seq| seq % 3 != 0);
        assert_eq!(w.len(), (0..1000).filter(|s| s % 3 != 0).count());
        let got = drain(&mut w);
        let want: Vec<(u64, u64)> = (0..1000u64)
            .filter(|s| s % 3 != 0)
            .map(|s| (s * 77_777, s))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn interleaved_push_pop_keeps_global_order() {
        // Pop half, push more (some before the cursor), pop the rest.
        let mut w = TimerWheel::new();
        for seq in 0..50u64 {
            w.push(seq * 10_000, seq, 0);
        }
        let mut got = Vec::new();
        for _ in 0..25 {
            let (t, s, _) = w.pop().unwrap();
            got.push((t, s));
        }
        for seq in 50..80u64 {
            // Straddles the cursor position (~24 * 10_000 ns).
            w.push((seq - 50) * 17_000, seq, 0);
        }
        got.extend(drain(&mut w));
        // Everything popped after the cursor passed a time may interleave,
        // but each pop must be >= in (time, seq) order among remaining
        // entries; verify by re-sorting the tail and comparing.
        let tail = &got[25..];
        let mut sorted = tail.to_vec();
        sorted.sort();
        assert_eq!(tail, &sorted[..], "tail must already be sorted");
        assert_eq!(got.len(), 80);
    }

    #[test]
    fn empty_wheel() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        assert!(w.is_empty());
        assert_eq!(w.peek(), None);
        assert!(w.pop().is_none());
    }
}
