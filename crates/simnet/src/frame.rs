//! Frames: the unit of data handed to a network for transmission.
//!
//! A frame is what a NIC would put on the wire: a protocol tag used for
//! demultiplexing at the receiving node, an opaque payload, and an
//! accounting of header bytes added by the layers above (used by the
//! network model to compute wire occupancy).

use bytes::Bytes;

use crate::node::NodeId;

/// Protocol tag carried by every frame, used to select the receive handler
/// registered on the destination node.
///
/// Well-known values are defined as associated constants; layers are free
/// to allocate their own tags above [`ProtoId::USER_BASE`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProtoId(pub u16);

impl ProtoId {
    /// Raw datagram service (UDP-like).
    pub const DATAGRAM: ProtoId = ProtoId(1);
    /// Simulated TCP segments.
    pub const TCP: ProtoId = ProtoId(2);
    /// Madeleine messages on a SAN.
    pub const MADELEINE: ProtoId = ProtoId(3);
    /// VRP (Variable Reliability Protocol) frames.
    pub const VRP: ProtoId = ProtoId(4);
    /// Encapsulated multi-hop relay frames (gateway store-and-forward,
    /// see the `gridtopo` crate).
    pub const RELAY: ProtoId = ProtoId(5);
    /// Relay credit-return advertisements carried on the wire (the
    /// inter-site credit plane of the `gridtopo` relay fabric).
    pub const RELAY_CREDIT: ProtoId = ProtoId(6);
    /// First tag available for user/test protocols.
    pub const USER_BASE: ProtoId = ProtoId(1000);

    /// Returns the `n`-th user protocol tag.
    pub fn user(n: u16) -> ProtoId {
        ProtoId(Self::USER_BASE.0 + n)
    }
}

/// A frame in flight on a simulated network.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Protocol demultiplexing tag.
    pub proto: ProtoId,
    /// Opaque payload bytes.
    pub payload: Bytes,
    /// Header bytes accounted in addition to the payload when computing
    /// serialization time (e.g. TCP/IP headers, Madeleine headers).
    pub header_bytes: u32,
}

impl Frame {
    /// Builds a frame with no extra header accounting.
    pub fn new(src: NodeId, dst: NodeId, proto: ProtoId, payload: impl Into<Bytes>) -> Self {
        Frame {
            src,
            dst,
            proto,
            payload: payload.into(),
            header_bytes: 0,
        }
    }

    /// Sets the number of header bytes accounted on the wire.
    pub fn with_header_bytes(mut self, header_bytes: u32) -> Self {
        self.header_bytes = header_bytes;
        self
    }

    /// Payload length in bytes.
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// Total bytes occupying the wire: payload plus headers.
    pub fn wire_bytes(&self) -> u64 {
        self.payload.len() as u64 + self.header_bytes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_accounts_headers() {
        let f =
            Frame::new(NodeId(0), NodeId(1), ProtoId::TCP, vec![0u8; 100]).with_header_bytes(40);
        assert_eq!(f.payload_len(), 100);
        assert_eq!(f.wire_bytes(), 140);
    }

    #[test]
    fn user_proto_ids_do_not_collide_with_builtin() {
        assert!(ProtoId::user(0) >= ProtoId::USER_BASE);
        assert_ne!(ProtoId::user(0), ProtoId::TCP);
        assert_ne!(ProtoId::user(1), ProtoId::user(2));
    }
}
