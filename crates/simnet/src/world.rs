//! The simulation world: virtual clock, event queue, nodes, networks and
//! frame delivery.
//!
//! The world is single-threaded and fully deterministic for a given seed.
//! Protocol stacks (transports, Madeleine, NetAccess, the PadicoTM
//! abstractions and middleware) live *outside* the world, typically behind
//! `Rc<RefCell<…>>`, and interact with it in two ways:
//!
//! * they schedule events and send frames through `&mut SimWorld`;
//! * they register per-`(node, protocol)` receive handlers that the world
//!   invokes when a frame is delivered — the callback-based "Active
//!   Message" style the paper argues for at the arbitration level.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::event::{EventFn, EventId, EventQueue};
use crate::frame::{Frame, ProtoId};
use crate::network::{Network, NetworkId, SendError};
use crate::node::{Node, NodeId};
use crate::rng::SimRng;
use crate::shard::{PartitionStats, RemoteFrame, ShardMap, ShardStats, ShardedQueue, REMOTE_NET};
use crate::spec::{HostProfile, NetworkSpec};
use crate::stats::WorldStats;
use crate::telemetry::{EventRing, MetricsRegistry, MetricsSnapshot, SnapshotBuilder, TraceEvent};
use crate::time::{SimDuration, SimTime};
use crate::trace::Trace;

/// Receive handler invoked when a frame is delivered to a node.
pub type FrameHandler = Rc<RefCell<dyn FnMut(&mut SimWorld, NetworkId, Frame)>>;

/// The event queue behind the world: either the classic single queue or
/// the per-site sharded-merge queue. Both pop in the same global
/// `(time, seq)` order, so the choice is invisible to everything above.
enum Queue {
    Single(EventQueue),
    Sharded(ShardedQueue),
}

impl Queue {
    fn push(&mut self, t: SimTime, lane: u16, f: EventFn) -> EventId {
        match self {
            Queue::Single(q) => q.push(t, f),
            Queue::Sharded(q) => q.push(t, lane, f),
        }
    }
    fn cancel(&mut self, id: EventId) -> bool {
        match self {
            Queue::Single(q) => q.cancel(id),
            Queue::Sharded(q) => q.cancel(id),
        }
    }
    fn next_time(&mut self) -> Option<SimTime> {
        match self {
            Queue::Single(q) => q.next_time(),
            Queue::Sharded(q) => q.next_time(),
        }
    }
    fn pop(&mut self) -> Option<(SimTime, u16, EventFn)> {
        match self {
            Queue::Single(q) => q.pop().map(|(t, f)| (t, 0, f)),
            Queue::Sharded(q) => q.pop(),
        }
    }
    fn len(&self) -> usize {
        match self {
            Queue::Single(q) => q.len(),
            Queue::Sharded(q) => q.len(),
        }
    }
    fn cancelled_pending(&self) -> usize {
        match self {
            Queue::Single(q) => q.cancelled_pending(),
            Queue::Sharded(q) => q.cancelled_pending(),
        }
    }
    fn compactions(&self) -> u64 {
        match self {
            Queue::Single(q) => q.compactions(),
            Queue::Sharded(q) => q.compactions(),
        }
    }
}

/// Sharded-merge executor state (see [`SimWorld::enable_sharding`]).
struct ShardState {
    map: ShardMap,
    stats: ShardStats,
    /// Lane of the event currently executing; inherited by anything it
    /// schedules. Lane 0 between events (top-level test driving).
    current_lane: u16,
}

/// Partitioned executor state (see [`SimWorld::enable_partition`]).
struct PartitionState {
    shard: u16,
    lookahead: SimDuration,
    /// Per-destination-shard lookahead (this shard's trunk out-edges);
    /// empty when the run uses the single global window.
    trunk_out: Vec<Option<SimDuration>>,
    /// Mirror ownership: node index → owning shard. When non-empty, the
    /// world was built as a full mirror of the grid and
    /// [`SimWorld::send_frame`] intercepts frames whose destination is
    /// owned by another shard at the trunk boundary (full local wire
    /// timing, then ship). Empty = no mirror, only explicit
    /// [`SimWorld::send_remote`] crosses shards.
    owner_of: Vec<u16>,
    out_seq: u64,
    outbox: Vec<RemoteFrame>,
    stats: PartitionStats,
}

/// The discrete-event simulation world.
pub struct SimWorld {
    clock: SimTime,
    queue: Queue,
    shard: Option<Box<ShardState>>,
    partition: Option<Box<PartitionState>>,
    rng: SimRng,
    nodes: Vec<Node>,
    networks: Vec<Network>,
    handlers: HashMap<(NodeId, ProtoId), FrameHandler>,
    /// Free-form string trace (disabled by default); protocol layers above
    /// the hot paths may still use it. Frame-level hot paths record typed
    /// events into [`SimWorld::events`] instead.
    pub trace: Trace,
    /// Typed event ring (disabled by default, allocation-free while off).
    pub events: EventRing,
    /// The unified metrics registry every layer of the stack registers
    /// into; scrape it with [`SimWorld::metrics_snapshot`].
    pub metrics: MetricsRegistry,
    /// Global counters.
    pub stats: WorldStats,
    /// Safety cap on the number of events executed by a single `run*` call;
    /// prevents accidental infinite simulations in tests. `None` = no cap.
    pub max_events_per_run: Option<u64>,
}

impl SimWorld {
    /// Creates an empty world with the given random seed.
    pub fn new(seed: u64) -> Self {
        SimWorld {
            clock: SimTime::ZERO,
            queue: Queue::Single(EventQueue::new()),
            shard: None,
            partition: None,
            rng: SimRng::seeded(seed),
            nodes: Vec::new(),
            networks: Vec::new(),
            handlers: HashMap::new(),
            trace: Trace::new(),
            events: EventRing::new(),
            metrics: MetricsRegistry::new(),
            stats: WorldStats::default(),
            max_events_per_run: Some(200_000_000),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Access to the deterministic random number generator.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    // ----------------------------------------------------------------- //
    // Scheduling
    // ----------------------------------------------------------------- //

    /// Schedules `f` to run at absolute time `t` (clamped to now if in the
    /// past).
    pub fn schedule_at(&mut self, t: SimTime, f: impl FnOnce(&mut SimWorld) + 'static) -> EventId {
        let t = t.max(self.clock);
        self.stats.events_scheduled += 1;
        let lane = self.shard.as_ref().map_or(0, |s| s.current_lane);
        self.queue.push(t, lane, Box::new(f) as EventFn)
    }

    /// Schedules `f` to run after the duration `d`.
    pub fn schedule_after(
        &mut self,
        d: SimDuration,
        f: impl FnOnce(&mut SimWorld) + 'static,
    ) -> EventId {
        self.schedule_at(self.clock + d, f)
    }

    /// Cancels a pending event; returns `false` if it already fired or was
    /// already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let cancelled = self.queue.cancel(id);
        if cancelled {
            self.stats.events_cancelled += 1;
        }
        cancelled
    }

    /// Number of pending events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Cancelled events still occupying queue slots (tombstones awaiting
    /// pop-skip or compaction).
    pub fn cancelled_pending(&self) -> usize {
        self.queue.cancelled_pending()
    }

    /// How many tombstone compaction sweeps the queue has performed.
    pub fn queue_compactions(&self) -> u64 {
        self.queue.compactions()
    }

    /// Time of the earliest pending event, if any.
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        self.queue.next_time()
    }

    // ----------------------------------------------------------------- //
    // Execution
    // ----------------------------------------------------------------- //

    /// Executes the next event, if any. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some((t, lane, f)) => {
                debug_assert!(t >= self.clock, "time must be monotonic");
                self.clock = t;
                self.stats.events_executed += 1;
                if let Some(s) = self.shard.as_deref_mut() {
                    s.current_lane = lane;
                    if let Some(n) = s.stats.lane_events.get_mut(lane as usize) {
                        *n += 1;
                    }
                }
                f(self);
                true
            }
            None => false,
        }
    }

    /// Runs until no events remain.
    pub fn run(&mut self) {
        let mut executed = 0u64;
        while self.step() {
            executed += 1;
            if let Some(cap) = self.max_events_per_run {
                assert!(
                    executed <= cap,
                    "simulation exceeded the safety cap of {cap} events"
                );
            }
        }
    }

    /// Runs until the virtual clock reaches `t` (events at exactly `t` are
    /// executed) or the queue empties. The clock is advanced to `t` even if
    /// the queue empties earlier.
    pub fn run_until(&mut self, t: SimTime) {
        let mut executed = 0u64;
        loop {
            match self.queue.next_time() {
                Some(next) if next <= t => {
                    self.step();
                    executed += 1;
                    if let Some(cap) = self.max_events_per_run {
                        assert!(
                            executed <= cap,
                            "simulation exceeded the safety cap of {cap} events"
                        );
                    }
                }
                _ => break,
            }
        }
        if t > self.clock {
            self.clock = t;
        }
    }

    /// Runs for the duration `d` of virtual time.
    pub fn run_for(&mut self, d: SimDuration) {
        let target = self.clock + d;
        self.run_until(target);
    }

    /// Runs while `keep_going()` returns true and events remain. The
    /// predicate typically checks completion flags held outside the world.
    pub fn run_while(&mut self, mut keep_going: impl FnMut() -> bool) {
        let mut executed = 0u64;
        while keep_going() && self.step() {
            executed += 1;
            if let Some(cap) = self.max_events_per_run {
                assert!(
                    executed <= cap,
                    "simulation exceeded the safety cap of {cap} events"
                );
            }
        }
    }

    /// Runs every event with time *strictly before* `t`, leaving the
    /// clock at the last executed event (it is not advanced to `t`).
    /// This is the window primitive of the partitioned executor: a shard
    /// executes its safe window `[now, horizon)` and stops.
    pub fn run_before(&mut self, t: SimTime) {
        let mut executed = 0u64;
        while let Some(next) = self.queue.next_time() {
            if next >= t {
                break;
            }
            self.step();
            executed += 1;
            if let Some(cap) = self.max_events_per_run {
                assert!(
                    executed <= cap,
                    "simulation exceeded the safety cap of {cap} events"
                );
            }
        }
    }

    // ----------------------------------------------------------------- //
    // Topology
    // ----------------------------------------------------------------- //

    /// Adds a node with the default (Pentium III era) host profile.
    pub fn add_node(&mut self, name: &str) -> NodeId {
        self.add_node_with_profile(name, HostProfile::default())
    }

    /// Adds a node with an explicit host profile.
    pub fn add_node_with_profile(&mut self, name: &str, host: HostProfile) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::new(id, name, host));
        id
    }

    /// Looks a node up.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// All node ids.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.iter().map(|n| n.id).collect()
    }

    /// Creates a network fabric from a spec.
    pub fn add_network(&mut self, spec: NetworkSpec) -> NetworkId {
        let id = NetworkId(self.networks.len() as u32);
        self.networks.push(Network::new(id, spec));
        id
    }

    /// Attaches a node to a network fabric.
    pub fn attach(&mut self, node: NodeId, network: NetworkId) {
        assert!(node.index() < self.nodes.len(), "unknown node");
        self.networks[network.index()].attach(node);
    }

    /// Looks a network up.
    pub fn network(&self, id: NetworkId) -> &Network {
        &self.networks[id.index()]
    }

    /// Number of networks.
    pub fn network_count(&self) -> usize {
        self.networks.len()
    }

    /// All network ids, in creation order.
    pub fn network_ids(&self) -> Vec<NetworkId> {
        self.networks.iter().map(|n| n.id).collect()
    }

    /// All networks to which both `a` and `b` are attached, in creation
    /// order. This is what the PadicoTM selector inspects to choose an
    /// adapter for a link.
    pub fn networks_between(&self, a: NodeId, b: NodeId) -> Vec<NetworkId> {
        self.networks
            .iter()
            .filter(|n| n.is_attached(a) && n.is_attached(b))
            .map(|n| n.id)
            .collect()
    }

    /// All networks `node` is attached to, in creation order. Together with
    /// [`Network::members`] this exposes the full attachment graph, which
    /// is what the `gridtopo` routing layer walks to compute multi-hop
    /// routes.
    pub fn networks_of(&self, node: NodeId) -> Vec<NetworkId> {
        self.networks
            .iter()
            .filter(|n| n.is_attached(node))
            .map(|n| n.id)
            .collect()
    }

    /// Virtual-time cost of one memory copy of `bytes` on `node`.
    pub fn copy_cost(&self, node: NodeId, bytes: u64) -> SimDuration {
        self.node(node).host.copy_cost(bytes)
    }

    // ----------------------------------------------------------------- //
    // Frame transmission and delivery
    // ----------------------------------------------------------------- //

    /// Registers the receive handler for `(node, proto)`. Replaces any
    /// previous handler for the same key (the arbitration layer is expected
    /// to be the single registrant per protocol).
    pub fn register_handler(
        &mut self,
        node: NodeId,
        proto: ProtoId,
        handler: impl FnMut(&mut SimWorld, NetworkId, Frame) + 'static,
    ) {
        self.handlers
            .insert((node, proto), Rc::new(RefCell::new(handler)));
    }

    /// Removes the receive handler for `(node, proto)`.
    pub fn unregister_handler(&mut self, node: NodeId, proto: ProtoId) {
        self.handlers.remove(&(node, proto));
    }

    /// Whether a handler is registered for `(node, proto)`.
    pub fn has_handler(&self, node: NodeId, proto: ProtoId) -> bool {
        self.handlers.contains_key(&(node, proto))
    }

    /// Submits a frame for transmission on `network`.
    ///
    /// The frame occupies the sender's TX port for its serialization time,
    /// propagates for the network latency, may be dropped by the loss
    /// model, and is finally delivered to the handler registered for
    /// `(frame.dst, frame.proto)` — or silently counted as unclaimed if no
    /// handler exists.
    pub fn send_frame(&mut self, network: NetworkId, frame: Frame) -> Result<(), SendError> {
        if network.index() >= self.networks.len() {
            return Err(SendError::NoSuchNetwork);
        }
        let now = self.clock;
        let (delivery_time, dropped) = {
            let rng = &mut self.rng;
            let net = &mut self.networks[network.index()];
            if !net.is_attached(frame.src) {
                return Err(SendError::SourceNotAttached);
            }
            if !net.is_attached(frame.dst) {
                return Err(SendError::DestinationNotAttached);
            }
            if frame.payload.len() > net.spec.mtu {
                return Err(SendError::FrameTooLarge {
                    size: frame.payload.len(),
                    mtu: net.spec.mtu,
                });
            }

            let wire_bytes = frame.wire_bytes();
            let ser = net.spec.serialization(wire_bytes);

            // Sender-side: fixed per-frame cost, then the TX port.
            let tx_start = (now + net.spec.per_frame_overhead).max(net.tx_free_at(frame.src));
            let tx_done = tx_start + ser;
            net.set_tx_busy_until(frame.src, tx_done);

            // Loss is decided at transmit time (the frame still burned wire
            // time, as a real lost packet does).
            let dropped = net.spec.loss.should_drop(rng);

            // Receiver-side: propagation, then the RX port (incast model).
            let arrival = tx_done + net.spec.latency;
            let delivery = arrival.max(net.rx_free_at(frame.dst));
            net.set_rx_busy_until(frame.dst, delivery + ser);

            net.stats.frames_sent += 1;
            net.stats.payload_bytes_sent += frame.payload.len() as u64;
            net.stats.wire_bytes_sent += wire_bytes + net.spec.link_header_bytes as u64;
            if dropped {
                net.stats.frames_dropped += 1;
            }
            (delivery, dropped)
        };

        if self.events.is_enabled() {
            let (net, src, dst, proto, bytes) = (
                network,
                frame.src,
                frame.dst,
                frame.proto,
                frame.payload.len() as u32,
            );
            self.events.record(
                now,
                if dropped {
                    TraceEvent::FrameLost {
                        net,
                        src,
                        dst,
                        proto,
                        bytes,
                    }
                } else {
                    TraceEvent::FrameSent {
                        net,
                        src,
                        dst,
                        proto,
                        bytes,
                    }
                },
            );
        }

        if dropped {
            return Ok(());
        }

        // Partition-mirror trunk boundary: the wire timing above ran
        // against this world's mirror of the network (ports, stats,
        // serialization — byte-identical to the single-world run), but
        // the destination node executes in another shard's world. Ship
        // the frame at its true delivery time; the destination world
        // re-enters through its normal per-network delivery path. The
        // delivery event is *not* scheduled (or counted) here — the
        // destination world schedules it at injection.
        if let Some(p) = self.partition.as_deref_mut() {
            if let Some(&owner) = p.owner_of.get(frame.dst.index()) {
                if owner != p.shard {
                    let declared = p.trunk_out.get(owner as usize).copied().flatten();
                    if !p.trunk_out.is_empty() && declared.is_none() {
                        // Per-trunk windows promise nothing about an
                        // undeclared pair — crossing one is unsafe.
                        p.stats.lookahead_violations += 1;
                    }
                    if delivery_time < now + declared.unwrap_or(p.lookahead) {
                        // Never floored: ship at the true time so
                        // equivalence runs surface the bad lookahead
                        // instead of masking it with skewed clocks.
                        p.stats.lookahead_violations += 1;
                    }
                    let seq = p.out_seq;
                    p.out_seq += 1;
                    p.stats.cross_out += 1;
                    p.outbox.push(RemoteFrame {
                        to: owner,
                        from: p.shard,
                        seq,
                        deliver_at: delivery_time,
                        net: network,
                        frame,
                    });
                    return Ok(());
                }
            }
        }

        // Under the sharded-merge executor the delivery event belongs to
        // the destination's lane; a lane crossing is counted and checked
        // against the lookahead window (both always satisfied on a
        // gateway-isolated grid — the invariant the sharding stands on).
        let lane = match self.shard.as_deref_mut() {
            Some(s) => {
                let src_lane = s.map.lane_of(frame.src);
                let dst_lane = s.map.lane_of(frame.dst);
                if src_lane != dst_lane {
                    s.stats.cross_out[src_lane as usize] += 1;
                    s.stats.cross_in[dst_lane as usize] += 1;
                    if src_lane != 0 && dst_lane != 0 && delivery_time < now + s.map.lookahead() {
                        s.stats.lookahead_violations += 1;
                    }
                }
                dst_lane
            }
            None => 0,
        };
        self.stats.events_scheduled += 1;
        self.queue.push(
            delivery_time,
            lane,
            Box::new(move |world: &mut SimWorld| {
                world.deliver(network, frame);
            }),
        );
        Ok(())
    }

    // ----------------------------------------------------------------- //
    // Executors: per-site sharding and partitioned worlds
    // ----------------------------------------------------------------- //

    /// Switches this world to the sharded-merge executor: per-lane timer
    /// wheels with a global sequence, popping the identical global
    /// `(time, seq)` order as the single queue — every RNG draw, metric
    /// and snapshot byte stays the same (asserted by
    /// `tests/executor_equivalence.rs`).
    ///
    /// The existing queue (with any already-scheduled events) becomes
    /// lane 0, so previously-issued [`EventId`]s remain cancellable.
    /// Typically called right after the grid is built, with the map from
    /// `GridTopology::shard_map`.
    pub fn enable_sharding(&mut self, map: ShardMap) {
        assert!(self.shard.is_none(), "sharding already enabled");
        assert!(
            self.partition.is_none(),
            "a partitioned world is already a shard; it cannot be sharded again"
        );
        let single = std::mem::replace(&mut self.queue, Queue::Single(EventQueue::new()));
        let Queue::Single(q) = single else {
            unreachable!("shard is None implies a single queue")
        };
        self.queue = Queue::Sharded(ShardedQueue::from_single(q, map.lanes()));
        let stats = ShardStats::with_lanes(map.lanes());
        self.shard = Some(Box::new(ShardState {
            map,
            stats,
            current_lane: 0,
        }));
    }

    /// Per-lane execution and cross-lane traffic counters, if the
    /// sharded-merge executor is enabled. Kept out of
    /// [`SimWorld::metrics_snapshot`] on purpose: snapshots must stay
    /// byte-identical across executors.
    pub fn shard_stats(&self) -> Option<&ShardStats> {
        self.shard.as_ref().map(|s| &s.stats)
    }

    /// `(live, tombstoned)` entry counts of one sharded-merge lane, or
    /// `None` when the sharded-merge executor is not enabled (or the
    /// lane does not exist). Used by site drain to decide whether a
    /// departing site's lane still holds work.
    pub fn shard_lane_pending(&self, lane: u16) -> Option<(usize, usize)> {
        match &self.queue {
            Queue::Sharded(q) => q.lane_pending(lane),
            Queue::Single(_) => None,
        }
    }

    /// Forces a tombstone compaction sweep of one sharded-merge lane,
    /// returning the number of cancelled entries physically removed.
    /// Site drain calls this before detaching a site so a dead lane does
    /// not keep tombstones resident for the rest of the run.
    pub fn sweep_shard_lane(&mut self, lane: u16) -> usize {
        match &mut self.queue {
            Queue::Sharded(q) => q.compact_lane(lane),
            Queue::Single(_) => 0,
        }
    }

    /// Which executor this world runs on: `"single"`, `"sharded"` or
    /// `"partitioned"`.
    pub fn executor_kind(&self) -> &'static str {
        if self.partition.is_some() {
            "partitioned"
        } else if self.shard.is_some() {
            "sharded"
        } else {
            "single"
        }
    }

    /// Marks this world as shard `shard` of a partitioned run with the
    /// given conservative lookahead. Normally called by
    /// [`run_partitioned`](crate::shard::run_partitioned), not directly.
    pub fn enable_partition(&mut self, shard: u16, lookahead: SimDuration) {
        assert!(self.partition.is_none(), "partition already enabled");
        assert!(self.shard.is_none(), "cannot partition a sharded world");
        self.partition = Some(Box::new(PartitionState {
            shard,
            lookahead,
            trunk_out: Vec::new(),
            owner_of: Vec::new(),
            out_seq: 0,
            outbox: Vec::new(),
            stats: PartitionStats {
                shard,
                ..PartitionStats::default()
            },
        }));
    }

    /// Installs this shard's per-trunk lookahead out-edges
    /// (`out[to_shard]`), replacing the single global floor for declared
    /// destinations. Normally called by
    /// [`run_partitioned`](crate::shard::run_partitioned) from
    /// [`Partition::trunks`](crate::shard::Partition::trunks).
    pub fn set_trunk_lookaheads(&mut self, out: Vec<Option<SimDuration>>) {
        let p = self
            .partition
            .as_deref_mut()
            .expect("set_trunk_lookaheads requires enable_partition");
        p.trunk_out = out;
    }

    /// Declares this world a full *mirror* of the grid: every shard
    /// builds identical nodes/networks (same ids, same seed-independent
    /// construction order), and `owner_of[node.index()]` names the shard
    /// whose world actually executes that node. From then on,
    /// [`SimWorld::send_frame`] computes full local wire timing for every
    /// frame — TX/RX port occupancy, serialization, latency — and frames
    /// whose destination is foreign-owned are shipped across the shard
    /// boundary at their true delivery time instead of being scheduled
    /// locally. Nodes beyond the map are treated as local.
    pub fn set_mirror_owners(&mut self, owner_of: Vec<u16>) {
        let p = self
            .partition
            .as_deref_mut()
            .expect("set_mirror_owners requires enable_partition");
        p.owner_of = owner_of;
    }

    /// The shard owning `node` under the mirror map (`None` when no
    /// mirror is installed: everything is local).
    pub fn mirror_owner(&self, node: NodeId) -> Option<u16> {
        self.partition
            .as_deref()
            .and_then(|p| p.owner_of.get(node.index()).copied())
    }

    /// Emits `frame` towards another shard world. Delivery happens at
    /// `now + max(extra_delay, lookahead)` — the lookahead floor is what
    /// keeps conservative window synchronization safe. The frame reaches
    /// the destination world's `(frame.dst, frame.proto)` handler with
    /// [`REMOTE_NET`] as the network id.
    pub fn send_remote(&mut self, to_shard: u16, frame: Frame, extra_delay: SimDuration) {
        let now = self.clock;
        let p = self
            .partition
            .as_deref_mut()
            .expect("send_remote requires enable_partition");
        let declared = p.trunk_out.get(to_shard as usize).copied().flatten();
        if !p.trunk_out.is_empty() && declared.is_none() {
            p.stats.lookahead_violations += 1;
        }
        let deliver_at = now + extra_delay.max(declared.unwrap_or(p.lookahead));
        let seq = p.out_seq;
        p.out_seq += 1;
        p.stats.cross_out += 1;
        p.outbox.push(RemoteFrame {
            to: to_shard,
            from: p.shard,
            seq,
            deliver_at,
            net: REMOTE_NET,
            frame,
        });
    }

    /// Drains the frames queued by [`SimWorld::send_remote`] since the
    /// last call (the window-barrier exchange).
    pub fn take_remote_outbox(&mut self) -> Vec<RemoteFrame> {
        self.partition
            .as_deref_mut()
            .map(|p| std::mem::take(&mut p.outbox))
            .unwrap_or_default()
    }

    /// Schedules an in-transit remote frame for delivery in this world.
    pub fn inject_remote(&mut self, rf: RemoteFrame) {
        let p = self
            .partition
            .as_deref_mut()
            .expect("inject_remote requires enable_partition");
        p.stats.cross_in += 1;
        let frame = rf.frame;
        let net = rf.net;
        self.schedule_at(rf.deliver_at, move |world| {
            world.deliver_remote(net, frame);
        });
    }

    /// Cross-shard traffic counters, if this world is a partition shard.
    pub fn partition_stats(&self) -> Option<&PartitionStats> {
        self.partition.as_ref().map(|p| &p.stats)
    }

    fn deliver_remote(&mut self, net: NetworkId, frame: Frame) {
        // A mirrored-trunk frame carries its real network id; deliver
        // through the normal per-network path so handler dispatch and
        // unclaimed accounting match the single-world run byte-for-byte.
        if net != REMOTE_NET && net.index() < self.networks.len() {
            self.deliver(net, frame);
            return;
        }
        let key = (frame.dst, frame.proto);
        match self.handlers.get(&key).cloned() {
            Some(handler) => {
                handler.borrow_mut()(self, REMOTE_NET, frame);
            }
            None => {
                if let Some(p) = self.partition.as_deref_mut() {
                    p.stats.remote_unclaimed += 1;
                }
            }
        }
    }

    // ----------------------------------------------------------------- //
    // Telemetry
    // ----------------------------------------------------------------- //

    /// Scrapes one deterministic snapshot of the whole telemetry
    /// namespace: the world and per-network counters under `sim.*`, the
    /// trace/event-ring health counters, plus everything every layer
    /// registered into [`SimWorld::metrics`].
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut b = SnapshotBuilder::new();
        b.counter("sim.world.events_executed", &[], self.stats.events_executed);
        b.counter(
            "sim.world.events_scheduled",
            &[],
            self.stats.events_scheduled,
        );
        b.counter(
            "sim.world.events_cancelled",
            &[],
            self.stats.events_cancelled,
        );
        b.gauge("sim.world.nodes", &[], self.nodes.len() as i64);
        b.gauge("sim.world.networks", &[], self.networks.len() as i64);
        b.counter(
            "sim.trace.records_dropped",
            &[],
            self.trace.records_dropped(),
        );
        b.counter("sim.events.dropped", &[], self.events.dropped());
        for net in &self.networks {
            let id = net.id.index().to_string();
            let labels: &[(&str, &str)] = &[("net", id.as_str())];
            b.counter("sim.net.frames_sent", labels, net.stats.frames_sent);
            b.counter("sim.net.frames_dropped", labels, net.stats.frames_dropped);
            b.counter(
                "sim.net.frames_unclaimed",
                labels,
                net.stats.frames_unclaimed,
            );
            b.counter(
                "sim.net.payload_bytes_sent",
                labels,
                net.stats.payload_bytes_sent,
            );
            b.counter("sim.net.wire_bytes_sent", labels, net.stats.wire_bytes_sent);
        }
        // Executor-level bookkeeping lives under `sim.executor.*` — only
        // emitted when a non-single executor is active, and stripped by
        // the equivalence suite (via `to_json_excluding`) because queue
        // organization legitimately differs across executors.
        if let Some(s) = self.shard.as_deref() {
            s.stats.debug_assert_balanced();
            b.gauge("sim.executor.lanes", &[], s.map.lanes() as i64);
            b.counter(
                "sim.executor.lookahead_violations",
                &[],
                s.stats.lookahead_violations,
            );
            for lane in 0..s.map.lanes() as usize {
                let id = lane.to_string();
                let labels: &[(&str, &str)] = &[("lane", id.as_str())];
                b.counter(
                    "sim.executor.lane_events",
                    labels,
                    s.stats.lane_events[lane],
                );
                b.counter("sim.executor.cross_in", labels, s.stats.cross_in[lane]);
                b.counter("sim.executor.cross_out", labels, s.stats.cross_out[lane]);
            }
        }
        if let Some(p) = self.partition.as_deref() {
            b.gauge("sim.executor.shard", &[], p.stats.shard as i64);
            b.counter("sim.executor.cross_in", &[], p.stats.cross_in);
            b.counter("sim.executor.cross_out", &[], p.stats.cross_out);
            b.counter(
                "sim.executor.remote_unclaimed",
                &[],
                p.stats.remote_unclaimed,
            );
            b.counter(
                "sim.executor.lookahead_violations",
                &[],
                p.stats.lookahead_violations,
            );
        }
        if self.shard.is_some() || self.partition.is_some() {
            b.gauge(
                "sim.executor.cancelled_pending",
                &[],
                self.queue.cancelled_pending() as i64,
            );
            b.counter("sim.executor.compactions", &[], self.queue.compactions());
        }
        self.metrics.collect_into(&mut b);
        b.finish()
    }

    fn deliver(&mut self, network: NetworkId, frame: Frame) {
        let key = (frame.dst, frame.proto);
        match self.handlers.get(&key).cloned() {
            Some(handler) => {
                handler.borrow_mut()(self, network, frame);
            }
            None => {
                self.networks[network.index()].stats.frames_unclaimed += 1;
                if self.events.is_enabled() {
                    self.events.record(
                        self.clock,
                        TraceEvent::FrameUnclaimed {
                            net: network,
                            dst: frame.dst,
                            proto: frame.proto,
                        },
                    );
                }
            }
        }
    }
}

impl std::fmt::Debug for SimWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimWorld")
            .field("now", &self.clock)
            .field("pending_events", &self.queue.len())
            .field("nodes", &self.nodes.len())
            .field("networks", &self.networks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::LossModel;
    use std::cell::Cell;

    fn two_node_world(spec: NetworkSpec) -> (SimWorld, NodeId, NodeId, NetworkId) {
        let mut w = SimWorld::new(42);
        let a = w.add_node("a");
        let b = w.add_node("b");
        let net = w.add_network(spec);
        w.attach(a, net);
        w.attach(b, net);
        (w, a, b, net)
    }

    #[test]
    fn clock_advances_with_events() {
        let mut w = SimWorld::new(0);
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        w.schedule_after(SimDuration::from_micros(5), move |_| f.set(true));
        assert_eq!(w.now(), SimTime::ZERO);
        w.run();
        assert!(fired.get());
        assert_eq!(w.now(), SimTime::from_micros(5));
    }

    #[test]
    fn run_until_stops_at_target_and_advances_clock() {
        let mut w = SimWorld::new(0);
        let count = Rc::new(Cell::new(0));
        for i in 1..=10u64 {
            let c = count.clone();
            w.schedule_at(SimTime::from_micros(i), move |_| c.set(c.get() + 1));
        }
        w.run_until(SimTime::from_micros(4));
        assert_eq!(count.get(), 4);
        assert_eq!(w.now(), SimTime::from_micros(4));
        w.run();
        assert_eq!(count.get(), 10);
    }

    #[test]
    fn run_for_advances_clock_even_without_events() {
        let mut w = SimWorld::new(0);
        w.run_for(SimDuration::from_millis(3));
        assert_eq!(w.now(), SimTime::from_millis(3));
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut w = SimWorld::new(0);
        let fired = Rc::new(Cell::new(false));
        let f = fired.clone();
        let id = w.schedule_after(SimDuration::from_micros(1), move |_| f.set(true));
        assert!(w.cancel(id));
        w.run();
        assert!(!fired.get());
        assert_eq!(w.stats.events_cancelled, 1);
    }

    #[test]
    fn frame_delivery_latency_matches_model() {
        let (mut w, a, b, net) = two_node_world(NetworkSpec::myrinet_2000());
        let delivered_at = Rc::new(Cell::new(SimTime::ZERO));
        let d = delivered_at.clone();
        w.register_handler(b, ProtoId::user(0), move |world, _net, _frame| {
            d.set(world.now());
        });
        let frame = Frame::new(a, b, ProtoId::user(0), vec![0u8; 1000]);
        w.send_frame(net, frame).unwrap();
        w.run();
        let spec = NetworkSpec::myrinet_2000();
        let expected =
            SimTime::ZERO + spec.per_frame_overhead + spec.serialization(1000) + spec.latency;
        assert_eq!(delivered_at.get(), expected);
    }

    #[test]
    fn back_to_back_frames_pipeline_at_link_rate() {
        let (mut w, a, b, net) = two_node_world(NetworkSpec::myrinet_2000());
        let received = Rc::new(Cell::new(0u64));
        let last = Rc::new(Cell::new(SimTime::ZERO));
        let (r, l) = (received.clone(), last.clone());
        w.register_handler(b, ProtoId::user(0), move |world, _net, frame| {
            r.set(r.get() + frame.payload_len() as u64);
            l.set(world.now());
        });
        let n_frames = 100u64;
        let frame_size = 100_000u64;
        for _ in 0..n_frames {
            let frame = Frame::new(a, b, ProtoId::user(0), vec![0u8; frame_size as usize]);
            w.send_frame(net, frame).unwrap();
        }
        w.run();
        assert_eq!(received.get(), n_frames * frame_size);
        // Sustained bandwidth should be close to the 250 MB/s wire rate
        // (within 5%, accounting for per-frame overheads and latency).
        let secs = last.get().as_secs_f64();
        let bw = received.get() as f64 / secs;
        assert!(bw > 0.95 * 250.0e6 * 0.95, "bandwidth was {bw}");
        assert!(bw <= 250.0e6 * 1.01, "bandwidth was {bw}");
    }

    #[test]
    fn mtu_is_enforced() {
        let (mut w, a, b, net) = two_node_world(NetworkSpec::ethernet_100());
        let frame = Frame::new(a, b, ProtoId::user(0), vec![0u8; 2000]);
        let err = w.send_frame(net, frame).unwrap_err();
        assert!(matches!(err, SendError::FrameTooLarge { mtu: 1500, .. }));
    }

    #[test]
    fn unattached_nodes_are_rejected() {
        let mut w = SimWorld::new(0);
        let a = w.add_node("a");
        let b = w.add_node("b");
        let c = w.add_node("c");
        let net = w.add_network(NetworkSpec::ethernet_100());
        w.attach(a, net);
        w.attach(b, net);
        let err = w
            .send_frame(net, Frame::new(c, b, ProtoId::user(0), vec![1]))
            .unwrap_err();
        assert_eq!(err, SendError::SourceNotAttached);
        let err = w
            .send_frame(net, Frame::new(a, c, ProtoId::user(0), vec![1]))
            .unwrap_err();
        assert_eq!(err, SendError::DestinationNotAttached);
    }

    #[test]
    fn frames_without_handler_are_counted_unclaimed() {
        let (mut w, a, b, net) = two_node_world(NetworkSpec::ethernet_100());
        w.send_frame(net, Frame::new(a, b, ProtoId::user(7), vec![1, 2, 3]))
            .unwrap();
        w.run();
        assert_eq!(w.network(net).stats.frames_unclaimed, 1);
    }

    #[test]
    fn lossy_network_drops_roughly_the_configured_fraction() {
        let mut spec = NetworkSpec::ethernet_100();
        spec.loss = LossModel::bernoulli(0.2);
        let (mut w, a, b, net) = two_node_world(spec);
        let received = Rc::new(Cell::new(0u32));
        let r = received.clone();
        w.register_handler(b, ProtoId::user(0), move |_w, _n, _f| r.set(r.get() + 1));
        let sent = 5000;
        for _ in 0..sent {
            w.send_frame(net, Frame::new(a, b, ProtoId::user(0), vec![0u8; 100]))
                .unwrap();
        }
        w.run();
        let stats = w.network(net).stats;
        assert_eq!(stats.frames_sent, sent as u64);
        let loss = stats.drop_rate();
        assert!((loss - 0.2).abs() < 0.03, "observed loss {loss}");
        assert_eq!(received.get() as u64, stats.frames_delivered());
    }

    #[test]
    fn networks_between_lists_shared_fabrics() {
        let mut w = SimWorld::new(0);
        let a = w.add_node("a");
        let b = w.add_node("b");
        let c = w.add_node("c");
        let san = w.add_network(NetworkSpec::myrinet_2000());
        let lan = w.add_network(NetworkSpec::ethernet_100());
        w.attach(a, san);
        w.attach(b, san);
        w.attach(a, lan);
        w.attach(b, lan);
        w.attach(c, lan);
        assert_eq!(w.networks_between(a, b), vec![san, lan]);
        assert_eq!(w.networks_between(a, c), vec![lan]);
        assert!(w.networks_between(c, c).contains(&lan));
    }

    #[test]
    fn same_seed_reproduces_identical_runs() {
        let run = |seed: u64| -> (u64, u64) {
            let mut spec = NetworkSpec::lossy_internet();
            spec.loss = LossModel::bernoulli(0.1);
            let mut w = SimWorld::new(seed);
            let a = w.add_node("a");
            let b = w.add_node("b");
            let net = w.add_network(spec);
            w.attach(a, net);
            w.attach(b, net);
            let received = Rc::new(Cell::new(0u64));
            let r = received.clone();
            w.register_handler(b, ProtoId::user(0), move |_w, _n, _f| r.set(r.get() + 1));
            for _ in 0..1000 {
                w.send_frame(net, Frame::new(a, b, ProtoId::user(0), vec![0u8; 200]))
                    .unwrap();
            }
            w.run();
            (received.get(), w.now().as_nanos())
        };
        let mut w1 = run(5);
        let w2 = run(5);
        assert_eq!(w1, w2);
        w1 = run(6);
        assert_ne!(w1.0, 0);
        let _ = w1;
    }

    #[test]
    fn handler_can_send_replies() {
        // A ping/pong exchange implemented purely with handlers.
        let (mut w, a, b, net) = two_node_world(NetworkSpec::myrinet_2000());
        let pong_at = Rc::new(Cell::new(SimTime::ZERO));
        let p = pong_at.clone();
        w.register_handler(b, ProtoId::user(0), move |world, netid, frame| {
            let reply = Frame::new(
                frame.dst,
                frame.src,
                ProtoId::user(1),
                frame.payload.clone(),
            );
            world.send_frame(netid, reply).unwrap();
        });
        w.register_handler(a, ProtoId::user(1), move |world, _netid, _frame| {
            p.set(world.now());
        });
        w.send_frame(net, Frame::new(a, b, ProtoId::user(0), vec![0u8; 4]))
            .unwrap();
        w.run();
        assert!(pong_at.get() > SimTime::ZERO);
        // Round trip should be roughly twice the one-way latency.
        let spec = NetworkSpec::myrinet_2000();
        let one_way = (spec.per_frame_overhead + spec.serialization(4) + spec.latency).as_nanos();
        let rtt = pong_at.get().as_nanos();
        assert!(rtt >= 2 * one_way);
        assert!(rtt < 2 * one_way + 2_000);
    }
}
