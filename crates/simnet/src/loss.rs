//! Packet-loss models for simulated networks.
//!
//! The paper's WAN results hinge on loss behaviour: the VTHD WAN shows rare
//! background loss (which caps a single TCP stream well below the access
//! bandwidth), and the trans-continental Internet link shows a heavy 5–10 %
//! loss rate (which TCP collapses under and VRP tolerates). Both a simple
//! Bernoulli model and a bursty Gilbert–Elliott model are provided.

use crate::rng::SimRng;

/// A packet-loss model. The model is stateful (Gilbert–Elliott keeps its
/// current channel state) and is owned by the network that applies it.
#[derive(Debug, Clone, Default)]
pub enum LossModel {
    /// No loss at all (SAN, loopback, switched LAN).
    #[default]
    None,
    /// Independent per-frame loss with the given probability.
    Bernoulli {
        /// Probability in `[0, 1]` that any frame is dropped.
        p: f64,
    },
    /// Two-state bursty loss model. The channel alternates between a good
    /// and a bad state with the given transition probabilities (evaluated
    /// per frame); each state has its own loss probability.
    GilbertElliott {
        /// Probability of moving good → bad, per frame.
        p_good_to_bad: f64,
        /// Probability of moving bad → good, per frame.
        p_bad_to_good: f64,
        /// Loss probability while in the good state.
        loss_good: f64,
        /// Loss probability while in the bad state.
        loss_bad: f64,
        /// Current state (`true` = bad). Part of the model so the burst
        /// structure is preserved across frames.
        in_bad_state: bool,
    },
    /// Deterministic periodic loss: drops every `period`-th frame
    /// (1-indexed). Useful for reproducible unit tests.
    Periodic {
        /// Drop one frame out of every `period`.
        period: u64,
        /// Frames seen so far.
        count: u64,
    },
}

impl LossModel {
    /// Bernoulli loss with probability `p`.
    pub fn bernoulli(p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability must be in [0,1]"
        );
        LossModel::Bernoulli { p }
    }

    /// A Gilbert–Elliott model with typical bursty-Internet parameters that
    /// averages roughly `mean_loss` overall.
    pub fn bursty(mean_loss: f64) -> Self {
        assert!((0.0..=1.0).contains(&mean_loss));
        // Bad state is entered rarely but loses half its frames; solve the
        // stationary distribution so the long-run average matches.
        let loss_bad = 0.5;
        let loss_good = mean_loss / 10.0;
        // pi_bad * loss_bad + (1 - pi_bad) * loss_good = mean_loss
        let pi_bad = ((mean_loss - loss_good) / (loss_bad - loss_good)).clamp(0.0, 1.0);
        let p_bad_to_good = 0.2;
        let p_good_to_bad = if pi_bad >= 1.0 {
            1.0
        } else {
            (pi_bad * p_bad_to_good / (1.0 - pi_bad)).min(1.0)
        };
        LossModel::GilbertElliott {
            p_good_to_bad,
            p_bad_to_good,
            loss_good,
            loss_bad,
            in_bad_state: false,
        }
    }

    /// Deterministic loss of one frame in every `period`.
    pub fn periodic(period: u64) -> Self {
        assert!(period >= 1);
        LossModel::Periodic { period, count: 0 }
    }

    /// Decides whether the next frame is dropped.
    pub fn should_drop(&mut self, rng: &mut SimRng) -> bool {
        match self {
            LossModel::None => false,
            LossModel::Bernoulli { p } => *p > 0.0 && rng.gen_bool(*p),
            LossModel::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                loss_good,
                loss_bad,
                in_bad_state,
            } => {
                // Transition first, then draw a loss in the new state.
                if *in_bad_state {
                    if rng.gen_bool(*p_bad_to_good) {
                        *in_bad_state = false;
                    }
                } else if rng.gen_bool(*p_good_to_bad) {
                    *in_bad_state = true;
                }
                let p = if *in_bad_state { *loss_bad } else { *loss_good };
                p > 0.0 && rng.gen_bool(p)
            }
            LossModel::Periodic { period, count } => {
                *count += 1;
                *count % *period == 0
            }
        }
    }

    /// The long-run average loss rate of this model (approximate for
    /// Gilbert–Elliott).
    pub fn mean_loss(&self) -> f64 {
        match self {
            LossModel::None => 0.0,
            LossModel::Bernoulli { p } => *p,
            LossModel::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                loss_good,
                loss_bad,
                ..
            } => {
                let denom = p_good_to_bad + p_bad_to_good;
                if denom <= 0.0 {
                    return *loss_good;
                }
                let pi_bad = p_good_to_bad / denom;
                pi_bad * loss_bad + (1.0 - pi_bad) * loss_good
            }
            LossModel::Periodic { period, .. } => 1.0 / *period as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measure(model: &mut LossModel, rng: &mut SimRng, n: usize) -> f64 {
        let drops = (0..n).filter(|_| model.should_drop(rng)).count();
        drops as f64 / n as f64
    }

    #[test]
    fn none_never_drops() {
        let mut rng = SimRng::seeded(1);
        let mut m = LossModel::None;
        assert_eq!(measure(&mut m, &mut rng, 1000), 0.0);
        assert_eq!(m.mean_loss(), 0.0);
    }

    #[test]
    fn bernoulli_matches_probability() {
        let mut rng = SimRng::seeded(42);
        let mut m = LossModel::bernoulli(0.07);
        let rate = measure(&mut m, &mut rng, 200_000);
        assert!((rate - 0.07).abs() < 0.005, "observed {rate}");
        assert!((m.mean_loss() - 0.07).abs() < 1e-12);
    }

    #[test]
    fn bursty_long_run_rate_is_close_to_target() {
        let mut rng = SimRng::seeded(7);
        let mut m = LossModel::bursty(0.07);
        let rate = measure(&mut m, &mut rng, 400_000);
        assert!(
            (rate - 0.07).abs() < 0.02,
            "observed {rate}, expected about 0.07"
        );
        assert!((m.mean_loss() - 0.07).abs() < 0.02);
    }

    #[test]
    fn periodic_drops_every_nth() {
        let mut rng = SimRng::seeded(0);
        let mut m = LossModel::periodic(4);
        let pattern: Vec<bool> = (0..8).map(|_| m.should_drop(&mut rng)).collect();
        assert_eq!(
            pattern,
            vec![false, false, false, true, false, false, false, true]
        );
        assert!((m.mean_loss() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn bernoulli_rejects_invalid_probability() {
        let _ = LossModel::bernoulli(1.5);
    }
}
