//! Unified telemetry: the metrics registry, typed event tracing and the
//! per-stream flight recorder.
//!
//! Every layer of the stack used to expose its own ad-hoc stats surface
//! (anonymous tuples, per-crate structs, free-form trace strings). This
//! module unifies them:
//!
//! * [`MetricsRegistry`] — counters, gauges and log₂-bucketed histograms
//!   keyed by a hierarchical dotted name plus sorted labels
//!   (`relay.gateway.frames_relayed{gw=5}`). Components either register
//!   live instruments once, or register a *collector* closure that mirrors
//!   an existing stats struct at scrape time. A scrape produces a
//!   [`MetricsSnapshot`] whose iteration order (and therefore JSON) is
//!   deterministic: identical seeded runs render bit-identical documents.
//! * [`EventRing`] / [`TraceEvent`] — typed, allocation-free event records
//!   with virtual timestamps and [`CauseId`] correlation, replacing string
//!   traces on the hot paths. The ring evicts oldest-first at capacity and
//!   counts what it evicted.
//! * [`FlightRecorder`] — a bounded per-stream log of lifecycle
//!   transitions (dial, credit stall, migration, re-dial, close) so a
//!   fault-injection failure prints a forensic timeline instead of a bare
//!   assert.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::rc::Rc;

use crate::frame::ProtoId;
use crate::network::NetworkId;
use crate::node::NodeId;
use crate::time::SimTime;

// --------------------------------------------------------------------- //
// Metric keys
// --------------------------------------------------------------------- //

/// Canonical metric key: `name{k1=v1,k2=v2}` with labels sorted by key
/// (no braces when there are no labels). Every registry and snapshot API
/// keys metrics by this string.
pub fn metric_key(name: &str, labels: &[(&str, &str)]) -> String {
    debug_assert!(
        !name.contains(['{', '}', '"', '\\']),
        "metric names must stay JSON-safe: {name}"
    );
    if labels.is_empty() {
        return name.to_string();
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_unstable();
    let mut key = String::with_capacity(name.len() + 16);
    key.push_str(name);
    key.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        debug_assert!(
            !k.contains(['{', '}', '"', '\\', '=', ',']) && !v.contains(['{', '}', '"', '\\']),
            "metric labels must stay JSON-safe: {k}={v}"
        );
        if i > 0 {
            key.push(',');
        }
        key.push_str(k);
        key.push('=');
        key.push_str(v);
    }
    key.push('}');
    key
}

// --------------------------------------------------------------------- //
// Log₂ histogram
// --------------------------------------------------------------------- //

/// A log₂-bucketed histogram of `u64` samples. Bucket `k` counts samples
/// `v` with `2^(k-1) <= v < 2^k` (bucket 0 counts zeros), so byte sizes
/// and durations compress into at most 65 buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    counts: [u64; 65],
    count: u64,
    sum: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            counts: [0; 65],
            count: 0,
            sum: 0,
        }
    }
}

impl Log2Histogram {
    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        let bucket = if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        };
        self.counts[bucket] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Non-empty `(bucket, count)` pairs in ascending bucket order.
    pub fn buckets(&self) -> Vec<(u32, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (b as u32, c))
            .collect()
    }

    /// Accumulates another histogram into this one, bucket-wise.
    pub fn absorb(&mut self, other: &Log2Histogram) {
        for (b, c) in other.buckets() {
            self.counts[b as usize] += c;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

// --------------------------------------------------------------------- //
// Live instruments
// --------------------------------------------------------------------- //

/// A monotonically increasing counter handle (cloned handles share the
/// same underlying cell).
#[derive(Debug, Clone, Default)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    /// Adds `delta`.
    pub fn add(&self, delta: u64) {
        self.0.set(self.0.get() + delta);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// A gauge handle: a value that can move both ways.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Rc<Cell<i64>>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, value: i64) {
        self.0.set(value);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.set(self.0.get() + delta);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.get()
    }
}

/// A shared histogram handle.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Rc<RefCell<Log2Histogram>>);

impl Histogram {
    /// Records one sample.
    pub fn observe(&self, value: u64) {
        self.0.borrow_mut().observe(value);
    }

    /// A copy of the current distribution.
    pub fn snapshot(&self) -> Log2Histogram {
        self.0.borrow().clone()
    }
}

// --------------------------------------------------------------------- //
// Snapshot
// --------------------------------------------------------------------- //

/// One scraped metric value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic counter.
    Counter(u64),
    /// Point-in-time gauge.
    Gauge(i64),
    /// Log₂ distribution (count, sum, non-empty buckets). Boxed: the 65
    /// fixed buckets would otherwise dominate every entry's footprint.
    Histogram(Box<Log2Histogram>),
}

/// Accumulates metric values during a scrape. Counters merge by addition
/// when several components report under the same key; gauges and
/// histograms overwrite.
#[derive(Debug, Default)]
pub struct SnapshotBuilder {
    entries: BTreeMap<String, MetricValue>,
}

impl SnapshotBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reports a counter value.
    pub fn counter(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        let key = metric_key(name, labels);
        match self.entries.entry(key).or_insert(MetricValue::Counter(0)) {
            MetricValue::Counter(v) => *v += value,
            other => *other = MetricValue::Counter(value),
        }
    }

    /// Reports a gauge value.
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)], value: i64) {
        self.entries
            .insert(metric_key(name, labels), MetricValue::Gauge(value));
    }

    /// Reports a histogram.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], value: Log2Histogram) {
        self.entries.insert(
            metric_key(name, labels),
            MetricValue::Histogram(Box::new(value)),
        );
    }

    /// Finishes the scrape.
    pub fn finish(self) -> MetricsSnapshot {
        MetricsSnapshot {
            entries: self.entries,
        }
    }
}

/// A deterministic point-in-time scrape of every registered metric,
/// sorted by canonical key.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    entries: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// Number of metrics in the snapshot.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The value under a canonical key (see [`metric_key`]).
    pub fn get(&self, key: &str) -> Option<&MetricValue> {
        self.entries.get(key)
    }

    /// Counter value under a canonical key.
    pub fn counter(&self, key: &str) -> Option<u64> {
        match self.entries.get(key) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value under a canonical key.
    pub fn gauge(&self, key: &str) -> Option<i64> {
        match self.entries.get(key) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Sum of every counter whose *name* (the part before any `{`)
    /// matches `name` exactly — i.e. the same metric summed over all label
    /// sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .filter(|(k, _)| {
                k.as_str() == name || k.starts_with(name) && k[name.len()..].starts_with('{')
            })
            .filter_map(|(_, v)| match v {
                MetricValue::Counter(c) => Some(*c),
                _ => None,
            })
            .sum()
    }

    /// Iterates `(key, value)` in deterministic (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// `(key, value)` pairs whose key starts with `prefix`, in order.
    pub fn with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, &'a MetricValue)> + 'a {
        self.entries
            .range(prefix.to_string()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), v))
    }

    /// Renders the snapshot as a JSON document. Keys are sorted, numbers
    /// are integers, histograms become
    /// `{"count": …, "sum": …, "buckets": {"<bucket>": count, …}}` — the
    /// output is bit-identical across identical seeded runs.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"metrics\": {\n");
        for (i, (key, value)) in self.entries.iter().enumerate() {
            let _ = write!(s, "    \"{key}\": ");
            match value {
                MetricValue::Counter(v) => {
                    let _ = write!(s, "{v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(s, "{v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        s,
                        "{{\"count\": {}, \"sum\": {}, \"buckets\": {{",
                        h.count(),
                        h.sum()
                    );
                    for (j, (bucket, count)) in h.buckets().iter().enumerate() {
                        if j > 0 {
                            s.push_str(", ");
                        }
                        let _ = write!(s, "\"{bucket}\": {count}");
                    }
                    s.push_str("}}");
                }
            }
            s.push_str(if i + 1 == self.entries.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        s.push_str("  }\n}\n");
        s
    }

    /// Like [`to_json`](Self::to_json), but with every entry whose key
    /// starts with one of `prefixes` omitted. The comparison surface for
    /// cross-executor equivalence: executor-internal bookkeeping
    /// (`sim.executor.*`) legitimately differs between queue
    /// organizations and is stripped before asserting byte-identity.
    pub fn to_json_excluding(&self, prefixes: &[&str]) -> String {
        let filtered = MetricsSnapshot {
            entries: self
                .entries
                .iter()
                .filter(|(k, _)| !prefixes.iter().any(|p| k.starts_with(p)))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        };
        filtered.to_json()
    }

    /// Merges per-shard snapshots of one partitioned run into the
    /// single-world view: counters add, gauges take the maximum (mirror
    /// worlds report identical structural gauges, and per-gateway
    /// high-water marks live in exactly one world each — the others hold
    /// zero), histograms accumulate bucket-wise.
    pub fn merge<'a>(parts: impl IntoIterator<Item = &'a MetricsSnapshot>) -> MetricsSnapshot {
        let mut entries: BTreeMap<String, MetricValue> = BTreeMap::new();
        for part in parts {
            for (key, value) in &part.entries {
                match entries.entry(key.clone()) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(value.clone());
                    }
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        match (e.get_mut(), value) {
                            (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                            (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = (*a).max(*b),
                            (MetricValue::Histogram(a), MetricValue::Histogram(b)) => {
                                a.absorb(b);
                            }
                            (slot, other) => *slot = other.clone(),
                        }
                    }
                }
            }
        }
        MetricsSnapshot { entries }
    }
}

/// Concatenates labeled snapshots into one deterministic digest string —
/// the comparison surface for partitioned executor runs, where each
/// shard world produces its own snapshot and "bit-for-bit identical"
/// must hold over the whole fleet, not one world.
///
/// The caller supplies parts in a canonical order (e.g. sorted by shard
/// index); the digest is exactly `<header>\n<snapshot JSON>` per part.
pub fn merged_digest<'a>(parts: impl Iterator<Item = (String, &'a MetricsSnapshot)>) -> String {
    let mut out = String::new();
    for (header, snapshot) in parts {
        out.push_str(&header);
        out.push('\n');
        out.push_str(&snapshot.to_json());
    }
    out
}

// --------------------------------------------------------------------- //
// Registry
// --------------------------------------------------------------------- //

type Collector = Box<dyn Fn(&mut SnapshotBuilder)>;

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
    collectors: Vec<Collector>,
}

/// The shared metrics registry. Cloning the handle shares the registry;
/// one lives on every [`crate::SimWorld`] (`world.metrics`) so each layer
/// of the stack registers into the same namespace.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Rc<RefCell<RegistryInner>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or retrieves, if the key is already registered) the
    /// counter `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.inner
            .borrow_mut()
            .counters
            .entry(metric_key(name, labels))
            .or_default()
            .clone()
    }

    /// Registers (or retrieves) the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.inner
            .borrow_mut()
            .gauges
            .entry(metric_key(name, labels))
            .or_default()
            .clone()
    }

    /// Registers (or retrieves) the histogram `name{labels}`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.inner
            .borrow_mut()
            .histograms
            .entry(metric_key(name, labels))
            .or_default()
            .clone()
    }

    /// Registers a collector closure that mirrors an existing stats
    /// surface into the snapshot at every scrape.
    pub fn register_collector(&self, f: impl Fn(&mut SnapshotBuilder) + 'static) {
        self.inner.borrow_mut().collectors.push(Box::new(f));
    }

    /// Number of registered collectors.
    pub fn collector_count(&self) -> usize {
        self.inner.borrow().collectors.len()
    }

    /// Scrapes every instrument and collector into `builder`.
    pub fn collect_into(&self, builder: &mut SnapshotBuilder) {
        let inner = self.inner.borrow();
        for (key, c) in &inner.counters {
            match builder
                .entries
                .entry(key.clone())
                .or_insert(MetricValue::Counter(0))
            {
                MetricValue::Counter(v) => *v += c.get(),
                other => *other = MetricValue::Counter(c.get()),
            }
        }
        for (key, g) in &inner.gauges {
            builder
                .entries
                .insert(key.clone(), MetricValue::Gauge(g.get()));
        }
        for (key, h) in &inner.histograms {
            builder
                .entries
                .insert(key.clone(), MetricValue::Histogram(Box::new(h.snapshot())));
        }
        for collector in &inner.collectors {
            collector(builder);
        }
    }

    /// Scrapes a standalone snapshot (instruments + collectors only; the
    /// world adds its own counters in `SimWorld::metrics_snapshot`).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut builder = SnapshotBuilder::new();
        self.collect_into(&mut builder);
        builder.finish()
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("MetricsRegistry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .field("collectors", &inner.collectors.len())
            .finish()
    }
}

// --------------------------------------------------------------------- //
// Typed event tracing
// --------------------------------------------------------------------- //

/// Correlates the records of one logical journey (e.g. one relayed frame
/// across every gateway hop). Allocated from [`EventRing::next_cause`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CauseId(pub u64);

impl std::fmt::Display for CauseId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Why a relayed frame died at a gateway.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCause {
    /// Bounded relay queue was full (drop backpressure).
    QueueFull,
    /// Hop budget exhausted.
    Ttl,
    /// No route towards the destination.
    NoRoute,
    /// Injected fault.
    Fault,
    /// The gateway holding the frame was fail-stopped.
    GatewayDown,
}

/// One typed, allocation-free trace event. Virtual timestamps live on the
/// enclosing [`TimedEvent`]; `cause` fields correlate the hops of one
/// frame's journey.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A frame was accepted for transmission on a network.
    FrameSent {
        /// Network carrying the frame.
        net: NetworkId,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Protocol.
        proto: ProtoId,
        /// Payload bytes.
        bytes: u32,
    },
    /// The loss model discarded a frame at transmit time.
    FrameLost {
        /// Network carrying the frame.
        net: NetworkId,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Protocol.
        proto: ProtoId,
        /// Payload bytes.
        bytes: u32,
    },
    /// A frame arrived at a node with no registered handler.
    FrameUnclaimed {
        /// Network that delivered it.
        net: NetworkId,
        /// Destination node.
        dst: NodeId,
        /// Protocol nobody claimed.
        proto: ProtoId,
    },
    /// A relayed frame entered the fabric at its origin.
    RelayAccepted {
        /// Origin node.
        node: NodeId,
        /// Journey id.
        cause: CauseId,
    },
    /// A gateway store-and-forwarded a relayed frame one hop onward.
    RelayForwarded {
        /// Forwarding gateway.
        gateway: NodeId,
        /// Journey id.
        cause: CauseId,
    },
    /// A relayed frame parked on an exhausted credit pool.
    RelayParked {
        /// Node where the frame waits.
        node: NodeId,
        /// Journey id.
        cause: CauseId,
    },
    /// A parked frame resumed after a credit returned.
    RelayResumed {
        /// Node that resumed it.
        node: NodeId,
        /// Journey id.
        cause: CauseId,
    },
    /// A relayed frame was re-routed around a down gateway.
    RelayRerouted {
        /// Node that re-dispatched the frame.
        node: NodeId,
        /// Journey id.
        cause: CauseId,
    },
    /// A relayed frame died at a gateway.
    RelayDropped {
        /// Gateway that dropped it.
        gateway: NodeId,
        /// Journey id.
        cause: CauseId,
        /// Why.
        drop_cause: DropCause,
    },
    /// A relayed frame reached its destination node.
    RelayDelivered {
        /// Destination node.
        node: NodeId,
        /// Journey id.
        cause: CauseId,
    },
    /// A relayed stream leg (un)stalled on trunk credits.
    CreditStall {
        /// Gateway-side node of the stalled leg.
        node: NodeId,
        /// Trunk stream id.
        stream: u64,
    },
    /// The stalled stream resumed.
    CreditResume {
        /// Gateway-side node of the leg.
        node: NodeId,
        /// Trunk stream id.
        stream: u64,
    },
    /// A relayed stream migrated off a dead trunk towards a new gateway.
    StreamMigrated {
        /// Stream id (connection id of the failover stream).
        stream: u64,
        /// Gateway the stream was using.
        from: NodeId,
        /// Gateway it re-resolved to.
        to: NodeId,
    },
    /// A gateway was marked down in a knowledge base.
    GatewayDown {
        /// The dead gateway.
        node: NodeId,
    },
    /// A down gateway resumed its backbone role.
    GatewayRestored {
        /// The recovered gateway.
        node: NodeId,
    },
    /// A backbone link flapped down in the routing tables.
    LinkDown {
        /// The masked network.
        net: NetworkId,
    },
    /// A flapped backbone link came back up.
    LinkUp {
        /// The restored network.
        net: NetworkId,
    },
    /// A new site was admitted into the running grid.
    SiteAdmitted {
        /// Site index in the layout.
        site: u32,
        /// Gateways the site brought.
        gateways: u32,
        /// Total member nodes (gateways included).
        nodes: u32,
    },
    /// A site began its graceful drain: streams quiesce, credits return,
    /// trunks retire.
    SiteDraining {
        /// Site index in the layout.
        site: u32,
    },
    /// The drained site left the grid; its routes are withdrawn.
    SiteDrained {
        /// Tombstoned site index.
        site: u32,
        /// Trunks retired during the drain.
        trunks_retired: u32,
    },
    /// The routing tables reconverged after one churn delta.
    Reconverged {
        /// Sites whose intra tables were recomputed (0 for pure flaps).
        sites_recomputed: u32,
        /// Gateways in the rebuilt backbone graph.
        backbone_gateways: u32,
    },
}

impl TraceEvent {
    /// The journey id carried by the event, when it has one.
    pub fn cause(&self) -> Option<CauseId> {
        match self {
            TraceEvent::RelayAccepted { cause, .. }
            | TraceEvent::RelayForwarded { cause, .. }
            | TraceEvent::RelayParked { cause, .. }
            | TraceEvent::RelayResumed { cause, .. }
            | TraceEvent::RelayRerouted { cause, .. }
            | TraceEvent::RelayDropped { cause, .. }
            | TraceEvent::RelayDelivered { cause, .. } => Some(*cause),
            _ => None,
        }
    }
}

/// A [`TraceEvent`] plus the virtual time at which it happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedEvent {
    /// Virtual timestamp.
    pub time: SimTime,
    /// The event.
    pub event: TraceEvent,
}

/// The bounded typed-event sink: a ring buffer that evicts oldest-first
/// at capacity and counts evictions. Disabled by default — recording then
/// costs one branch and allocates nothing.
#[derive(Debug)]
pub struct EventRing {
    enabled: bool,
    capacity: usize,
    events: VecDeque<TimedEvent>,
    dropped: u64,
    next_cause: u64,
}

impl Default for EventRing {
    fn default() -> Self {
        EventRing {
            enabled: false,
            capacity: 65_536,
            events: VecDeque::new(),
            dropped: 0,
            next_cause: 0,
        }
    }
}

impl EventRing {
    /// Creates a disabled ring with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Disables recording (existing events are kept).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Whether recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Sets the ring capacity; the oldest events are evicted immediately
    /// if the ring already exceeds it.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.events.len() > capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
    }

    /// Allocates a fresh journey id (works while disabled too — ids stay
    /// stable whether or not anyone is watching).
    pub fn next_cause(&mut self) -> CauseId {
        self.next_cause += 1;
        CauseId(self.next_cause)
    }

    /// Records an event if enabled, evicting the oldest at capacity.
    pub fn record(&mut self, time: SimTime, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        if self.capacity > 0 {
            self.events.push_back(TimedEvent { time, event });
        }
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TimedEvent> {
        self.events.iter()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted (oldest-first) since the last [`EventRing::clear`].
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The journey of one cause id: every held event carrying it, in
    /// chronological order.
    pub fn journey(&self, cause: CauseId) -> Vec<TimedEvent> {
        self.events
            .iter()
            .filter(|e| e.event.cause() == Some(cause))
            .copied()
            .collect()
    }

    /// Clears events and the eviction counter.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

// --------------------------------------------------------------------- //
// Flight recorder
// --------------------------------------------------------------------- //

/// One lifecycle transition of a relayed stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamTransition {
    /// First dial of the stream's onward leg through a gateway.
    Dialed {
        /// Gateway dialed.
        gateway: NodeId,
    },
    /// The stream's trunk stalled on exhausted credits.
    CreditStalled,
    /// The stalled trunk resumed.
    CreditResumed,
    /// The carrier under the stream died.
    CarrierDead {
        /// Gateway whose trunk died.
        gateway: NodeId,
    },
    /// The stream re-resolved its route to a surviving gateway.
    Migrated {
        /// Old gateway.
        from: NodeId,
        /// New gateway.
        to: NodeId,
    },
    /// The stream re-dialed (same or new gateway) after a carrier death.
    Redialed {
        /// Gateway re-dialed.
        gateway: NodeId,
    },
    /// Unacknowledged bytes replayed onto the fresh connection.
    Replayed {
        /// Bytes resent.
        bytes: u64,
    },
    /// Orderly close.
    Closed,
    /// The stream gave up (no surviving route).
    Failed,
}

impl std::fmt::Display for StreamTransition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamTransition::Dialed { gateway } => write!(f, "dialed via {gateway}"),
            StreamTransition::CreditStalled => write!(f, "credit stall"),
            StreamTransition::CreditResumed => write!(f, "credit resume"),
            StreamTransition::CarrierDead { gateway } => write!(f, "carrier dead at {gateway}"),
            StreamTransition::Migrated { from, to } => write!(f, "migrated {from} -> {to}"),
            StreamTransition::Redialed { gateway } => write!(f, "re-dialed via {gateway}"),
            StreamTransition::Replayed { bytes } => write!(f, "replayed {bytes} unacked bytes"),
            StreamTransition::Closed => write!(f, "closed"),
            StreamTransition::Failed => write!(f, "failed (no surviving route)"),
        }
    }
}

/// A bounded per-stream log of the last N lifecycle transitions, kept
/// cheap enough to stay always-on. [`FlightRecorder::dump`] renders the
/// forensic timeline fault-injection failures print.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    label: String,
    capacity: usize,
    entries: VecDeque<(SimTime, StreamTransition)>,
    dropped: u64,
}

impl FlightRecorder {
    /// Default number of transitions retained per stream.
    pub const DEFAULT_CAPACITY: usize = 32;

    /// Creates a recorder for the stream labelled `label`.
    pub fn new(label: impl Into<String>) -> Self {
        Self::with_capacity(label, Self::DEFAULT_CAPACITY)
    }

    /// Creates a recorder retaining the last `capacity` transitions.
    pub fn with_capacity(label: impl Into<String>, capacity: usize) -> Self {
        FlightRecorder {
            label: label.into(),
            capacity: capacity.max(1),
            entries: VecDeque::new(),
            dropped: 0,
        }
    }

    /// The stream label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Records a transition, evicting the oldest past capacity.
    pub fn record(&mut self, time: SimTime, transition: StreamTransition) {
        if self.entries.len() >= self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back((time, transition));
    }

    /// Retained `(time, transition)` entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &(SimTime, StreamTransition)> {
        self.entries.iter()
    }

    /// Transitions evicted past the retention window.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the retained timeline, one transition per line.
    pub fn dump(&self) -> String {
        let mut s = format!(
            "flight recorder [{}] — last {} transitions ({} evicted):\n",
            self.label,
            self.entries.len(),
            self.dropped
        );
        for (time, transition) in &self.entries {
            let _ = writeln!(s, "  [{:>14}] {}", time.to_string(), transition);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn metric_keys_sort_labels_canonically() {
        assert_eq!(metric_key("a.b", &[]), "a.b");
        assert_eq!(metric_key("a.b", &[("z", "1"), ("a", "2")]), "a.b{a=2,z=1}");
    }

    #[test]
    fn counters_merge_and_gauges_overwrite() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("x.count", &[("n", "1")]);
        c.add(3);
        reg.counter("x.count", &[("n", "1")]).add(4); // same instrument
        reg.gauge("x.gauge", &[]).set(-5);
        reg.register_collector(|b| b.counter("x.count", &[("n", "1")], 10));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("x.count{n=1}"), Some(17));
        assert_eq!(snap.gauge("x.gauge"), Some(-5));
        assert_eq!(snap.counter_total("x.count"), 17);
    }

    #[test]
    fn snapshot_json_is_sorted_and_deterministic() {
        let build = || {
            let reg = MetricsRegistry::new();
            reg.counter("b.z", &[]).add(2);
            reg.counter("a.z", &[("gw", "3")]).add(1);
            let h = reg.histogram("a.h", &[]);
            h.observe(0);
            h.observe(1);
            h.observe(1500);
            reg.snapshot().to_json()
        };
        let json = build();
        assert_eq!(json, build(), "identical runs render bit-identically");
        let a = json.find("a.h").unwrap();
        let b = json.find("a.z").unwrap();
        let c = json.find("b.z").unwrap();
        assert!(a < b && b < c, "keys are sorted: {json}");
        assert!(json.contains("\"count\": 3"));
        assert!(json.contains("\"buckets\": {\"0\": 1, \"1\": 1, \"11\": 1}"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn log2_histogram_buckets_powers_of_two() {
        let mut h = Log2Histogram::default();
        for v in [0u64, 1, 2, 3, 4, 1023, 1024] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 2057);
        // 0 -> b0; 1 -> b1; 2,3 -> b2; 4 -> b3; 1023 -> b10; 1024 -> b11.
        assert_eq!(
            h.buckets(),
            vec![(0, 1), (1, 1), (2, 2), (3, 1), (10, 1), (11, 1)]
        );
    }

    #[test]
    fn event_ring_evicts_oldest_and_counts() {
        let mut ring = EventRing::new();
        ring.enable();
        ring.set_capacity(2);
        for i in 0..5u64 {
            ring.record(
                SimTime::from_nanos(i),
                TraceEvent::GatewayDown {
                    node: NodeId(i as u32),
                },
            );
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 3);
        let kept: Vec<u64> = ring.events().map(|e| e.time.as_nanos()).collect();
        assert_eq!(kept, vec![3, 4], "oldest evicted first");
    }

    #[test]
    fn disabled_ring_records_nothing() {
        let mut ring = EventRing::new();
        ring.record(SimTime::ZERO, TraceEvent::GatewayDown { node: NodeId(0) });
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn journeys_filter_by_cause() {
        let mut ring = EventRing::new();
        ring.enable();
        let a = ring.next_cause();
        let b = ring.next_cause();
        assert_ne!(a, b);
        ring.record(
            SimTime::from_nanos(1),
            TraceEvent::RelayAccepted {
                node: NodeId(0),
                cause: a,
            },
        );
        ring.record(
            SimTime::from_nanos(2),
            TraceEvent::RelayAccepted {
                node: NodeId(1),
                cause: b,
            },
        );
        ring.record(
            SimTime::from_nanos(3),
            TraceEvent::RelayDelivered {
                node: NodeId(9),
                cause: a,
            },
        );
        let journey = ring.journey(a);
        assert_eq!(journey.len(), 2);
        assert!(matches!(
            journey[1].event,
            TraceEvent::RelayDelivered {
                node: NodeId(9),
                ..
            }
        ));
    }

    #[test]
    fn flight_recorder_keeps_last_n_and_dumps() {
        let mut fr = FlightRecorder::with_capacity("vl#7", 3);
        fr.record(
            SimTime::from_micros(1),
            StreamTransition::Dialed { gateway: NodeId(4) },
        );
        fr.record(SimTime::from_micros(2), StreamTransition::CreditStalled);
        fr.record(SimTime::from_micros(3), StreamTransition::CreditResumed);
        fr.record(
            SimTime::from_micros(4),
            StreamTransition::Migrated {
                from: NodeId(4),
                to: NodeId(5),
            },
        );
        fr.record(SimTime::from_micros(5), StreamTransition::Closed);
        assert_eq!(fr.entries().count(), 3);
        assert_eq!(fr.dropped(), 2);
        let dump = fr.dump();
        assert!(dump.contains("vl#7"), "{dump}");
        assert!(dump.contains("migrated"), "{dump}");
        assert!(dump.contains("closed"), "{dump}");
        assert!(!dump.contains("dialed via"), "evicted: {dump}");
    }
}
