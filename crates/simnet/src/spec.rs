//! Network and host hardware profiles.
//!
//! These are the calibration knobs of the reproduction: they encode the
//! 2003-era hardware the paper's evaluation ran on (dual Pentium III
//! 1 GHz nodes, Myrinet-2000, switched Ethernet-100, the VTHD WAN and a
//! lossy trans-continental Internet link). Changing a profile re-calibrates
//! every experiment consistently.

use crate::loss::LossModel;
use crate::time::SimDuration;

/// Broad class of a network, used by the PadicoTM selector to decide which
/// communication paradigm/adapters are appropriate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NetworkClass {
    /// Intra-node loopback (shared memory copy).
    Loopback,
    /// System-area network: Myrinet, SCI, … Parallel-oriented hardware.
    San,
    /// Local-area network (switched Ethernet). Distributed-oriented.
    Lan,
    /// High-bandwidth wide-area network (e.g. VTHD).
    Wan,
    /// Commodity Internet path, possibly slow and lossy.
    Internet,
}

impl NetworkClass {
    /// True for networks that the paper classifies as "parallel-oriented"
    /// hardware (a straight parallel adapter exists).
    pub fn is_parallel_oriented(self) -> bool {
        matches!(self, NetworkClass::San | NetworkClass::Loopback)
    }

    /// True for networks reached through the IP stack.
    pub fn is_distributed_oriented(self) -> bool {
        matches!(
            self,
            NetworkClass::Lan | NetworkClass::Wan | NetworkClass::Internet
        )
    }
}

/// Static description of a network fabric.
#[derive(Debug, Clone)]
pub struct NetworkSpec {
    /// Human-readable name used in traces and experiment output.
    pub name: String,
    /// Broad class (SAN/LAN/WAN/…).
    pub class: NetworkClass,
    /// Usable wire bandwidth, in bytes per second, per direction and per
    /// node access port (full duplex).
    pub bytes_per_sec: f64,
    /// One-way propagation + switching latency.
    pub latency: SimDuration,
    /// Maximum payload bytes per frame. Larger sends must be segmented by
    /// the caller.
    pub mtu: usize,
    /// Physical/link-level header bytes added to every frame on the wire
    /// (in addition to any header bytes the protocol itself accounts for).
    pub link_header_bytes: u32,
    /// Fixed per-frame sender-side cost (driver, DMA setup, interrupt).
    pub per_frame_overhead: SimDuration,
    /// Loss model applied to every frame.
    pub loss: LossModel,
    /// Number of hardware communication channels the NIC/driver exposes
    /// (e.g. 2 on Myrinet with GM, 1 on SCI). `0` means "not applicable"
    /// (IP networks multiplex in software).
    pub hw_channels: u8,
}

impl NetworkSpec {
    /// Serialization time of `wire_bytes` on this network's access link.
    pub fn serialization(&self, wire_bytes: u64) -> SimDuration {
        SimDuration::for_transfer(
            wire_bytes + self.link_header_bytes as u64,
            self.bytes_per_sec,
        )
    }

    /// Composes this spec with a further hop, producing the end-to-end
    /// logical path used when a route crosses several networks (e.g.
    /// Ethernet access link into a WAN core): bandwidth is the bottleneck,
    /// latencies add, loss combines, the MTU is the smallest.
    pub fn compose(
        &self,
        next: &NetworkSpec,
        name: impl Into<String>,
        class: NetworkClass,
    ) -> NetworkSpec {
        let p1 = self.loss.mean_loss();
        let p2 = next.loss.mean_loss();
        let combined_loss = 1.0 - (1.0 - p1) * (1.0 - p2);
        NetworkSpec {
            name: name.into(),
            class,
            bytes_per_sec: self.bytes_per_sec.min(next.bytes_per_sec),
            latency: self.latency + next.latency,
            mtu: self.mtu.min(next.mtu),
            link_header_bytes: self.link_header_bytes.max(next.link_header_bytes),
            per_frame_overhead: self.per_frame_overhead + next.per_frame_overhead,
            loss: if combined_loss > 0.0 {
                LossModel::bernoulli(combined_loss)
            } else {
                LossModel::None
            },
            hw_channels: 0,
        }
    }

    /// Myrinet-2000 SAN: 2 Gbit/s links (≈250 MB/s usable), ≈7 µs one-way
    /// hardware + driver latency, two hardware channels (as exposed by GM).
    pub fn myrinet_2000() -> NetworkSpec {
        NetworkSpec {
            name: "Myrinet-2000".to_string(),
            class: NetworkClass::San,
            bytes_per_sec: 250.0e6,
            latency: SimDuration::from_micros_f64(6.8),
            mtu: 32 * 1024 * 1024,
            link_header_bytes: 8,
            per_frame_overhead: SimDuration::from_nanos(200),
            loss: LossModel::None,
            hw_channels: 2,
        }
    }

    /// SCI (Scalable Coherent Interface) SAN: one hardware channel.
    pub fn sci() -> NetworkSpec {
        NetworkSpec {
            name: "SCI".to_string(),
            class: NetworkClass::San,
            bytes_per_sec: 170.0e6,
            latency: SimDuration::from_micros_f64(3.5),
            mtu: 8 * 1024 * 1024,
            link_header_bytes: 16,
            per_frame_overhead: SimDuration::from_nanos(300),
            loss: LossModel::None,
            hw_channels: 1,
        }
    }

    /// Switched Fast Ethernet (100 Mbit/s) with the kernel TCP/IP stack:
    /// 12.5 MB/s wire rate, ≈60 µs one-way latency, 1500-byte MTU.
    pub fn ethernet_100() -> NetworkSpec {
        NetworkSpec {
            name: "Ethernet-100".to_string(),
            class: NetworkClass::Lan,
            bytes_per_sec: 12.5e6,
            latency: SimDuration::from_micros(55),
            mtu: 1500,
            link_header_bytes: 18,
            per_frame_overhead: SimDuration::from_micros_f64(2.0),
            loss: LossModel::None,
            hw_channels: 0,
        }
    }

    /// Gigabit Ethernet, used in extension experiments.
    pub fn gigabit_ethernet() -> NetworkSpec {
        NetworkSpec {
            name: "Gigabit-Ethernet".to_string(),
            class: NetworkClass::Lan,
            bytes_per_sec: 125.0e6,
            latency: SimDuration::from_micros(25),
            mtu: 1500,
            link_header_bytes: 18,
            per_frame_overhead: SimDuration::from_micros_f64(1.0),
            loss: LossModel::None,
            hw_channels: 0,
        }
    }

    /// The VTHD experimental high-bandwidth WAN, as seen end-to-end from a
    /// node whose access link is Fast Ethernet: bottleneck 12.5 MB/s,
    /// ≈8 ms latency, rare background loss.
    pub fn vthd_wan() -> NetworkSpec {
        NetworkSpec {
            name: "VTHD-WAN".to_string(),
            class: NetworkClass::Wan,
            bytes_per_sec: 12.5e6,
            latency: SimDuration::from_millis(8),
            mtu: 1500,
            link_header_bytes: 18,
            per_frame_overhead: SimDuration::from_micros_f64(2.0),
            loss: LossModel::bernoulli(8.0e-5),
            hw_channels: 0,
        }
    }

    /// A slow trans-continental Internet link with a typical 5–10 % loss
    /// rate (the paper's VRP experiment).
    pub fn lossy_internet() -> NetworkSpec {
        NetworkSpec {
            name: "Lossy-Internet".to_string(),
            class: NetworkClass::Internet,
            bytes_per_sec: 700.0e3,
            latency: SimDuration::from_millis(25),
            mtu: 1500,
            link_header_bytes: 18,
            per_frame_overhead: SimDuration::from_micros_f64(5.0),
            loss: LossModel::bernoulli(0.05),
            hw_channels: 0,
        }
    }

    /// Intra-node loopback: a memory copy.
    pub fn loopback() -> NetworkSpec {
        NetworkSpec {
            name: "Loopback".to_string(),
            class: NetworkClass::Loopback,
            bytes_per_sec: 800.0e6,
            latency: SimDuration::from_nanos(500),
            mtu: 64 * 1024 * 1024,
            link_header_bytes: 0,
            per_frame_overhead: SimDuration::from_nanos(100),
            loss: LossModel::None,
            hw_channels: 0,
        }
    }
}

/// CPU/memory performance profile of a host, used by upper layers to charge
/// software costs in virtual time.
#[derive(Debug, Clone, Copy)]
pub struct HostProfile {
    /// Sustained single-copy memory bandwidth (bytes/s). Marshalling engines
    /// that copy data pay `bytes / memcpy_bytes_per_sec` per copy.
    pub memcpy_bytes_per_sec: f64,
    /// Cost of a system call (socket read/write entry).
    pub syscall_overhead: SimDuration,
    /// Cost of taking an interrupt / waking a blocked thread.
    pub wakeup_overhead: SimDuration,
}

impl HostProfile {
    /// A dual Pentium III 1 GHz node of the paper's testbed.
    pub fn pentium3_1ghz() -> HostProfile {
        HostProfile {
            memcpy_bytes_per_sec: 150.0e6,
            syscall_overhead: SimDuration::from_nanos(900),
            wakeup_overhead: SimDuration::from_micros_f64(2.0),
        }
    }

    /// A modern (2020s) server node, for extension experiments.
    pub fn modern_server() -> HostProfile {
        HostProfile {
            memcpy_bytes_per_sec: 8.0e9,
            syscall_overhead: SimDuration::from_nanos(300),
            wakeup_overhead: SimDuration::from_nanos(800),
        }
    }

    /// Virtual-time cost of copying `bytes` once through memory.
    pub fn copy_cost(&self, bytes: u64) -> SimDuration {
        SimDuration::for_transfer(bytes, self.memcpy_bytes_per_sec)
    }
}

impl Default for HostProfile {
    fn default() -> Self {
        HostProfile::pentium3_1ghz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn myrinet_is_parallel_lan_is_distributed() {
        assert!(NetworkSpec::myrinet_2000().class.is_parallel_oriented());
        assert!(NetworkSpec::ethernet_100().class.is_distributed_oriented());
        assert!(NetworkClass::Loopback.is_parallel_oriented());
        assert!(!NetworkClass::Wan.is_parallel_oriented());
    }

    #[test]
    fn serialization_time_scales_with_size() {
        let spec = NetworkSpec::myrinet_2000();
        let t1 = spec.serialization(1_000_000);
        let t2 = spec.serialization(2_000_000);
        assert!(t2 > t1);
        // 1 MB at 250 MB/s is 4 ms, plus the 8-byte header which is negligible.
        assert!((t1.as_millis_f64() - 4.0).abs() < 0.01);
    }

    #[test]
    fn compose_takes_bottleneck_and_sums_latency() {
        let eth = NetworkSpec::ethernet_100();
        let wan = NetworkSpec::vthd_wan();
        let path = eth.compose(&wan, "eth+vthd", NetworkClass::Wan);
        assert_eq!(path.bytes_per_sec, 12.5e6);
        assert_eq!(path.latency, eth.latency + wan.latency);
        assert_eq!(path.mtu, 1500);
        assert!(path.loss.mean_loss() > 0.0);
    }

    #[test]
    fn host_copy_cost() {
        let host = HostProfile::pentium3_1ghz();
        // 150 MB at 150 MB/s = 1 s.
        assert_eq!(host.copy_cost(150_000_000), SimDuration::from_secs(1));
    }

    #[test]
    fn profile_sanity() {
        // Myrinet must be much faster and lower latency than Ethernet-100;
        // the lossy Internet link must be the slowest and lossiest.
        let myri = NetworkSpec::myrinet_2000();
        let eth = NetworkSpec::ethernet_100();
        let inet = NetworkSpec::lossy_internet();
        assert!(myri.bytes_per_sec > 10.0 * eth.bytes_per_sec);
        assert!(myri.latency < eth.latency);
        assert!(inet.bytes_per_sec < eth.bytes_per_sec);
        assert!(inet.loss.mean_loss() > 0.01);
    }
}
