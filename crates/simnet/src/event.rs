//! The discrete-event queue.
//!
//! Events are closures scheduled at an absolute [`SimTime`]. Ties are broken
//! by insertion order so that the simulation is fully deterministic.
//!
//! The queue is backed by the hierarchical [`TimerWheel`]
//! (`O(1)` insertion instead of a `BinaryHeap`'s `O(log n)`), and pops in
//! exact `(time, seq)` order — property-tested against a heap oracle in
//! `tests/properties.rs`.
//!
//! Cancellation is tombstone-based: a cancelled entry stays in the wheel
//! until popped (and skipped) — but the queue now *compacts* itself when
//! tombstones outnumber half the live entries, so a workload that
//! schedules and cancels many timers (retransmit timers, stall probes,
//! heartbeats) no longer accumulates dead entries without bound. The
//! [`EventQueue::cancelled_pending`] stat exposes the current tombstone
//! count.

use std::collections::HashSet;

use crate::time::SimTime;
use crate::wheel::TimerWheel;
use crate::world::SimWorld;

/// Identifier of a scheduled event, usable to cancel it before it fires.
///
/// The low 48 bits are the global insertion sequence; the high 16 bits
/// name the shard lane the event lives in (0 for the single-queue
/// executor), so cancellation can be routed without a global lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub(crate) u64);

/// Bits of an [`EventId`] holding the insertion sequence.
pub(crate) const SEQ_BITS: u32 = 48;
/// Mask extracting the insertion sequence from an [`EventId`].
pub(crate) const SEQ_MASK: u64 = (1u64 << SEQ_BITS) - 1;

impl EventId {
    pub(crate) fn new(lane: u16, seq: u64) -> Self {
        debug_assert!(seq <= SEQ_MASK);
        EventId(((lane as u64) << SEQ_BITS) | seq)
    }
    pub(crate) fn lane(self) -> u16 {
        (self.0 >> SEQ_BITS) as u16
    }
    pub(crate) fn seq(self) -> u64 {
        self.0 & SEQ_MASK
    }
}

/// The callback type executed when an event fires.
pub type EventFn = Box<dyn FnOnce(&mut SimWorld)>;

/// Don't bother compacting tiny queues: the sweep is O(pending) and only
/// pays off once a meaningful number of tombstones can be reclaimed.
const COMPACT_FLOOR: usize = 64;

/// Priority queue of pending events ordered by (time, insertion sequence).
#[derive(Default)]
pub struct EventQueue {
    wheel: TimerWheel<EventFn>,
    next_seq: u64,
    cancelled: HashSet<u64>,
    live: usize,
    compactions: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of cancelled entries still occupying the wheel (tombstones
    /// awaiting pop-skip or compaction).
    pub fn cancelled_pending(&self) -> usize {
        self.wheel.len().saturating_sub(self.live)
    }

    /// How many times the queue has compacted tombstones away.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Schedules `callback` to run at `time`. Returns an id for cancellation.
    pub fn push(&mut self, time: SimTime, callback: EventFn) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.wheel.push(time.as_nanos(), seq, callback);
        self.live += 1;
        EventId::new(0, seq)
    }

    /// Cancels a pending event. Cancelling an already-fired or unknown event
    /// is a no-op and returns `false`.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.seq() >= self.next_seq {
            return false;
        }
        if self.cancelled.insert(id.seq()) {
            // The entry stays in the wheel but will be skipped when popped
            // — unless tombstones pile up, in which case we compact below.
            self.live = self.live.saturating_sub(1);
            self.maybe_compact();
            true
        } else {
            false
        }
    }

    /// Time of the next live event, if any.
    pub fn next_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.wheel.peek().map(|(t, _)| SimTime::from_nanos(t))
    }

    /// Pops the next live event.
    pub fn pop(&mut self) -> Option<(SimTime, EventFn)> {
        self.skip_cancelled();
        let (t, _seq, f) = self.wheel.pop()?;
        self.live = self.live.saturating_sub(1);
        Some((SimTime::from_nanos(t), f))
    }

    fn skip_cancelled(&mut self) {
        while let Some((_, seq)) = self.wheel.peek() {
            if self.cancelled.contains(&seq) {
                self.wheel.pop();
            } else {
                break;
            }
        }
    }

    /// Sweeps tombstones out of the wheel once they exceed half the live
    /// entries. The purged ids *stay* in the tombstone set — that is what
    /// makes double-cancel detection exact: if compaction (or pop-skip)
    /// forgot an id, a second `cancel` of the same handle would read as a
    /// fresh cancellation and corrupt the live count. The set therefore
    /// holds one bare id per cancellation for the rest of the run, while
    /// the compacted closures (the part worth reclaiming) are freed.
    fn maybe_compact(&mut self) {
        let tombstones = self.cancelled_pending();
        if tombstones < COMPACT_FLOOR || tombstones * 2 <= self.live {
            return;
        }
        let cancelled = &self.cancelled;
        self.wheel.retain(|seq| !cancelled.contains(&seq));
        self.compactions += 1;
    }

    /// Decomposes the queue so a sharded queue can adopt it as a lane
    /// (wheel, next sequence, tombstones, live count, compaction count).
    pub(crate) fn into_parts(self) -> (TimerWheel<EventFn>, u64, HashSet<u64>, usize, u64) {
        (
            self.wheel,
            self.next_seq,
            self.cancelled,
            self.live,
            self.compactions,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn record(log: &Rc<RefCell<Vec<u32>>>, v: u32) -> EventFn {
        let log = log.clone();
        Box::new(move |_w| log.borrow_mut().push(v))
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        q.push(SimTime::from_nanos(30), record(&log, 3));
        q.push(SimTime::from_nanos(10), record(&log, 1));
        q.push(SimTime::from_nanos(20), record(&log, 2));
        let mut times = Vec::new();
        while let Some((t, _f)) = q.pop() {
            times.push(t.as_nanos());
        }
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let t = SimTime::from_nanos(5);
        let ids: Vec<_> = (0..10).map(|i| q.push(t, record(&log, i))).collect();
        // Ids are strictly increasing.
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        let mut world = SimWorld::new(0);
        while let Some((_t, f)) = q.pop() {
            f(&mut world);
        }
        assert_eq!(*log.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation() {
        let mut q = EventQueue::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let a = q.push(SimTime::from_nanos(1), record(&log, 1));
        let b = q.push(SimTime::from_nanos(2), record(&log, 2));
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel is a no-op");
        assert!(!q.cancel(EventId(999)), "unknown id is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.cancelled_pending(), 1);
        assert_eq!(q.next_time(), Some(SimTime::from_nanos(2)));
        assert_eq!(q.cancelled_pending(), 0, "skipped at peek");
        let mut world = SimWorld::new(0);
        while let Some((_t, f)) = q.pop() {
            f(&mut world);
        }
        assert_eq!(*log.borrow(), vec![2]);
        let _ = b;
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.next_time(), None);
        assert!(q.pop().is_none());
    }

    #[test]
    fn tombstones_compact_when_they_outnumber_live() {
        let mut q = EventQueue::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        // 300 events far in the future; cancel 2 of every 3.
        let ids: Vec<_> = (0..300)
            .map(|i| q.push(SimTime::from_micros(1000 + i), record(&log, i as u32)))
            .collect();
        for (i, id) in ids.iter().enumerate() {
            if i % 3 != 0 {
                assert!(q.cancel(*id));
            }
        }
        assert_eq!(q.len(), 100);
        assert!(q.compactions() >= 1, "compaction must have triggered");
        assert!(
            q.cancelled_pending() <= q.len(),
            "tombstones were swept: {} pending vs {} live",
            q.cancelled_pending(),
            q.len()
        );
        // Survivors still pop in exact order.
        let mut world = SimWorld::new(0);
        while let Some((_t, f)) = q.pop() {
            f(&mut world);
        }
        let want: Vec<u32> = (0..300).filter(|i| i % 3 == 0).collect();
        assert_eq!(*log.borrow(), want);
    }

    #[test]
    fn cancel_after_fire_still_reports_cancelled_once() {
        // Legacy semantics the executor-equivalence suite depends on: the
        // queue cannot distinguish "fired" from "pending" by id alone, so
        // the first cancel of a fired id returns true and the second false.
        let mut q = EventQueue::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let a = q.push(SimTime::from_nanos(1), record(&log, 1));
        let mut world = SimWorld::new(0);
        let (_t, f) = q.pop().unwrap();
        f(&mut world);
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
    }
}
