//! The discrete-event queue.
//!
//! Events are closures scheduled at an absolute [`SimTime`]. Ties are broken
//! by insertion order so that the simulation is fully deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

use crate::time::SimTime;
use crate::world::SimWorld;

/// Identifier of a scheduled event, usable to cancel it before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub(crate) u64);

/// The callback type executed when an event fires.
pub type EventFn = Box<dyn FnOnce(&mut SimWorld)>;

struct Scheduled {
    time: SimTime,
    seq: u64,
    id: EventId,
    callback: EventFn,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so that the earliest event (and,
        // at equal times, the earliest scheduled) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Priority queue of pending events ordered by (time, insertion sequence).
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
    cancelled: HashSet<EventId>,
    live: usize,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedules `callback` to run at `time`. Returns an id for cancellation.
    pub fn push(&mut self, time: SimTime, callback: EventFn) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = EventId(seq);
        self.heap.push(Scheduled {
            time,
            seq,
            id,
            callback,
        });
        self.live += 1;
        id
    }

    /// Cancels a pending event. Cancelling an already-fired or unknown event
    /// is a no-op and returns `false`.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        if self.cancelled.insert(id) {
            // The entry stays in the heap but will be skipped when popped.
            self.live = self.live.saturating_sub(1);
            true
        } else {
            false
        }
    }

    /// Time of the next live event, if any.
    pub fn next_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|s| s.time)
    }

    /// Pops the next live event.
    pub fn pop(&mut self) -> Option<(SimTime, EventFn)> {
        self.skip_cancelled();
        let s = self.heap.pop()?;
        self.live = self.live.saturating_sub(1);
        Some((s.time, s.callback))
    }

    fn skip_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.remove(&top.id) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn record(log: &Rc<RefCell<Vec<u32>>>, v: u32) -> EventFn {
        let log = log.clone();
        Box::new(move |_w| log.borrow_mut().push(v))
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        q.push(SimTime::from_nanos(30), record(&log, 3));
        q.push(SimTime::from_nanos(10), record(&log, 1));
        q.push(SimTime::from_nanos(20), record(&log, 2));
        let mut times = Vec::new();
        while let Some((t, _f)) = q.pop() {
            times.push(t.as_nanos());
        }
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let t = SimTime::from_nanos(5);
        let ids: Vec<_> = (0..10).map(|i| q.push(t, record(&log, i))).collect();
        // Ids are strictly increasing.
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        let mut world = SimWorld::new(0);
        while let Some((_t, f)) = q.pop() {
            f(&mut world);
        }
        assert_eq!(*log.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation() {
        let mut q = EventQueue::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let a = q.push(SimTime::from_nanos(1), record(&log, 1));
        let b = q.push(SimTime::from_nanos(2), record(&log, 2));
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel is a no-op");
        assert!(!q.cancel(EventId(999)), "unknown id is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_time(), Some(SimTime::from_nanos(2)));
        let mut world = SimWorld::new(0);
        while let Some((_t, f)) = q.pop() {
            f(&mut world);
        }
        assert_eq!(*log.borrow(), vec![2]);
        let _ = b;
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.next_time(), None);
        assert!(q.pop().is_none());
    }
}
