//! Counters collected by the simulator.

/// Per-network traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Frames accepted for transmission.
    pub frames_sent: u64,
    /// Frames dropped by the loss model.
    pub frames_dropped: u64,
    /// Frames that arrived at a node with no handler registered for their
    /// protocol (delivered to the void).
    pub frames_unclaimed: u64,
    /// Payload bytes accepted for transmission (headers not included).
    pub payload_bytes_sent: u64,
    /// Total wire bytes (payload + protocol headers + link headers).
    pub wire_bytes_sent: u64,
}

impl NetworkStats {
    /// Fraction of frames dropped.
    pub fn drop_rate(&self) -> f64 {
        if self.frames_sent == 0 {
            0.0
        } else {
            self.frames_dropped as f64 / self.frames_sent as f64
        }
    }

    /// Frames actually delivered (sent minus dropped).
    pub fn frames_delivered(&self) -> u64 {
        self.frames_sent - self.frames_dropped
    }
}

/// Whole-world counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorldStats {
    /// Events executed so far.
    pub events_executed: u64,
    /// Events scheduled so far.
    pub events_scheduled: u64,
    /// Events cancelled before firing.
    pub events_cancelled: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_rate_handles_zero() {
        let s = NetworkStats::default();
        assert_eq!(s.drop_rate(), 0.0);
        let s = NetworkStats {
            frames_sent: 10,
            frames_dropped: 3,
            ..Default::default()
        };
        assert!((s.drop_rate() - 0.3).abs() < 1e-12);
        assert_eq!(s.frames_delivered(), 7);
    }
}
