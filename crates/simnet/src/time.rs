//! Virtual time for the discrete-event simulator.
//!
//! All experiments in PadicoTM-RS are measured in *virtual* time so that
//! results are deterministic and independent of the host machine. Time is
//! kept in integer nanoseconds; one nanosecond of resolution is enough to
//! observe the sub-0.1 µs overheads the paper reports for MadIO header
//! combining.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant of virtual time, in nanoseconds since the start of
/// the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Builds an instant from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Builds an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Builds an instant from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanosecond value.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in microseconds (floating point).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Value in milliseconds (floating point).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Value in seconds (floating point).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Duration elapsed since an earlier instant; saturates at zero if
    /// `earlier` is in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a duration from fractional microseconds, rounding to the
    /// nearest nanosecond.
    pub fn from_micros_f64(us: f64) -> Self {
        SimDuration((us * 1_000.0).round().max(0.0) as u64)
    }

    /// Builds a duration from fractional seconds, rounding to the nearest
    /// nanosecond.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s * 1_000_000_000.0).round().max(0.0) as u64)
    }

    /// Raw nanosecond value.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in microseconds (floating point).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Value in milliseconds (floating point).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Value in seconds (floating point).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies by a floating-point factor, rounding to the nearest
    /// nanosecond. Used for backoff and fairness computations.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration((self.0 as f64 * factor).round().max(0.0) as u64)
    }

    /// The time needed to move `bytes` bytes at `bytes_per_sec`.
    pub fn for_transfer(bytes: u64, bytes_per_sec: f64) -> SimDuration {
        if bytes_per_sec <= 0.0 {
            return SimDuration::MAX;
        }
        SimDuration::from_secs_f64(bytes as f64 / bytes_per_sec)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_nanos(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_nanos(self.0))
    }
}

fn format_nanos(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimDuration::from_micros(2), SimDuration::from_nanos(2_000));
        assert_eq!(SimDuration::from_secs(3), SimDuration::from_millis(3_000));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(10);
        let d = SimDuration::from_micros(5);
        assert_eq!(t + d, SimTime::from_micros(15));
        assert_eq!((t + d) - t, d);
        assert_eq!(t - d, SimTime::from_micros(5));
        assert_eq!(d * 3, SimDuration::from_micros(15));
        assert_eq!(d / 5, SimDuration::from_micros(1));
    }

    #[test]
    fn subtraction_saturates() {
        let early = SimTime::from_nanos(5);
        let late = SimTime::from_nanos(10);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(early.since(late), SimDuration::ZERO);
        assert_eq!(late.since(early), SimDuration::from_nanos(5));
    }

    #[test]
    fn float_conversions() {
        let d = SimDuration::from_micros_f64(12.5);
        assert_eq!(d.as_nanos(), 12_500);
        assert!((d.as_micros_f64() - 12.5).abs() < 1e-9);
        let d = SimDuration::from_secs_f64(0.001);
        assert_eq!(d.as_nanos(), 1_000_000);
        assert!((SimTime::from_secs(2).as_secs_f64() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn transfer_time() {
        // 1 MB at 250 MB/s = 4 ms.
        let d = SimDuration::for_transfer(1_000_000, 250e6);
        assert_eq!(d, SimDuration::from_millis(4));
        assert_eq!(SimDuration::for_transfer(1, 0.0), SimDuration::MAX);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(3)), "3.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(7)), "7.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total, SimDuration::from_micros(10));
    }
}
