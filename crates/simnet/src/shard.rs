//! Per-site sharding of the simulator.
//!
//! The paper's gateway-isolation invariant — all inter-site traffic
//! crosses a known trunk with a known latency — is exactly the
//! *lookahead* condition conservative parallel discrete-event simulation
//! needs. This module exploits it twice, at two different scales:
//!
//! 1. **Sharded-merge executor** (`ShardedQueue`, enabled on a normal
//!    [`SimWorld`] via
//!    [`enable_sharding`](crate::world::SimWorld::enable_sharding)):
//!    every site owns a private hierarchical
//!    [`TimerWheel`] lane plus a virtual clock
//!    cursor, and a lazy merge-heap of lane heads picks the global
//!    minimum `(time, seq)`. Sequence numbers stay *global*, so the pop
//!    order — and therefore every RNG draw, every metric, every byte of
//!    `MetricsSnapshot::to_json()` — is bit-for-bit identical to the
//!    single-queue executor. This is the mode the executor-equivalence
//!    suite runs every CI scenario under.
//!
//! 2. **Partitioned executor** ([`run_partitioned`]): each shard is a
//!    whole `SimWorld` owned by a worker thread (the world is built *on*
//!    its thread — protocol stacks are `Rc`-based and never migrate).
//!    Shards advance in conservative windows of width = the trunk
//!    lookahead; cross-shard frames are exchanged at window barriers and
//!    injected in a canonical `(deliver_at, from, seq)` order, so a run
//!    with N worker threads is byte-identical to the same run with one.
//!    This is what executes the measured 10⁵-node worlds.

use std::collections::{BTreeMap, BinaryHeap, HashSet};
use std::sync::mpsc;

use crate::event::{EventFn, EventId, EventQueue};
use crate::frame::Frame;
use crate::telemetry::MetricsSnapshot;
use crate::time::{SimDuration, SimTime};
use crate::wheel::TimerWheel;
use crate::world::SimWorld;
use crate::NodeId;

// --------------------------------------------------------------------- //
// Shard map: node → lane assignment plus the conservative lookahead.
// --------------------------------------------------------------------- //

/// Assignment of nodes to shard lanes, plus the lookahead window that
/// makes cross-lane synchronization conservative.
///
/// Lane 0 is the *control* lane: top-level test driving, nodes admitted
/// after the map was built, and anything unassigned. Sites occupy lanes
/// `1..=sites`.
#[derive(Clone, Debug)]
pub struct ShardMap {
    lane_of: Vec<u16>,
    lanes: u16,
    lookahead: SimDuration,
}

impl ShardMap {
    /// Creates a map with `lanes` lanes (lane 0 included) and the given
    /// lookahead — the minimum virtual-time distance of any cross-lane
    /// frame delivery (in a gateway-isolated grid: the minimum backbone
    /// latency).
    pub fn new(lanes: u16, lookahead: SimDuration) -> Self {
        assert!(lanes >= 1, "need at least the control lane");
        ShardMap {
            lane_of: Vec::new(),
            lanes,
            lookahead,
        }
    }

    /// Assigns `node` to `lane`.
    pub fn assign(&mut self, node: NodeId, lane: u16) {
        assert!(lane < self.lanes, "lane {lane} out of range");
        let idx = node.index();
        if idx >= self.lane_of.len() {
            self.lane_of.resize(idx + 1, 0);
        }
        self.lane_of[idx] = lane;
    }

    /// Lane of `node` (0 if never assigned).
    pub fn lane_of(&self, node: NodeId) -> u16 {
        self.lane_of.get(node.index()).copied().unwrap_or(0)
    }

    /// Number of lanes, including the control lane.
    pub fn lanes(&self) -> u16 {
        self.lanes
    }

    /// The conservative lookahead window.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }
}

/// Per-lane execution and cross-lane traffic counters for the
/// sharded-merge executor.
///
/// Deliberately *not* part of [`MetricsSnapshot`]: snapshots must stay
/// byte-identical between executors, so shard bookkeeping lives on a
/// side channel ([`SimWorld::shard_stats`](crate::world::SimWorld::shard_stats)).
#[derive(Clone, Debug, Default)]
pub struct ShardStats {
    /// Events executed per lane.
    pub lane_events: Vec<u64>,
    /// Frames whose delivery entered each lane from another lane.
    pub cross_in: Vec<u64>,
    /// Frames each lane sent to another lane.
    pub cross_out: Vec<u64>,
    /// Cross-lane deliveries scheduled *closer* than the lookahead
    /// window — each one is a grid that violates gateway isolation (or a
    /// lookahead that was derived too large). Always 0 on a conforming
    /// topology.
    pub lookahead_violations: u64,
}

impl ShardStats {
    pub(crate) fn with_lanes(lanes: u16) -> Self {
        ShardStats {
            lane_events: vec![0; lanes as usize],
            cross_in: vec![0; lanes as usize],
            cross_out: vec![0; lanes as usize],
            lookahead_violations: 0,
        }
    }

    /// Total frames that crossed a lane boundary.
    pub fn frames_crossed(&self) -> u64 {
        self.cross_out.iter().sum()
    }

    /// Runtime twin of the simlint C1 conservation rule: departures and
    /// arrivals are incremented pairwise, so summed over every lane they
    /// must balance exactly. Compiled out of release builds; called when
    /// the counters are scraped into a snapshot.
    pub fn debug_assert_balanced(&self) {
        debug_assert_eq!(
            self.cross_out.iter().sum::<u64>(),
            self.cross_in.iter().sum::<u64>(),
            "cross-lane event leak: departures and arrivals diverge",
        );
    }
}

// --------------------------------------------------------------------- //
// Sharded event queue: per-lane timer wheels + lazy head merge.
// --------------------------------------------------------------------- //

struct Lane {
    wheel: TimerWheel<EventFn>,
    cancelled: HashSet<u64>,
    live: usize,
    compactions: u64,
}

const COMPACT_FLOOR: usize = 64;

impl Lane {
    fn new() -> Self {
        Lane {
            wheel: TimerWheel::new(),
            cancelled: HashSet::new(),
            live: 0,
            compactions: 0,
        }
    }

    /// `(time, seq)` of this lane's earliest live entry, discarding any
    /// cancelled entries sitting at the head.
    fn head(&mut self) -> Option<(u64, u64)> {
        while let Some((t, seq)) = self.wheel.peek() {
            if self.cancelled.contains(&seq) {
                self.wheel.pop();
            } else {
                return Some((t, seq));
            }
        }
        None
    }

    /// Mirrors [`EventQueue`]'s compaction exactly, including the rule
    /// that purged ids stay in the tombstone set (exact double-cancel
    /// detection — see `EventQueue::maybe_compact`); the executors must
    /// agree on every cancel verdict to stay byte-equivalent.
    fn maybe_compact(&mut self) {
        let tombstones = self.wheel.len().saturating_sub(self.live);
        if tombstones < COMPACT_FLOOR || tombstones * 2 <= self.live {
            return;
        }
        let cancelled = &self.cancelled;
        self.wheel.retain(|seq| !cancelled.contains(&seq));
        self.compactions += 1;
    }
}

/// Merge-heap entry: the cached head of one lane. `BinaryHeap` is a
/// max-heap, so the ordering is inverted.
#[derive(Clone, Copy, PartialEq, Eq)]
struct Head {
    time: u64,
    seq: u64,
    lane: u16,
}

impl PartialOrd for Head {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Head {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Event queue sharded into per-lane timer wheels with a global
/// insertion sequence, popping the global minimum `(time, seq)` — the
/// exact order the single [`EventQueue`] would produce.
pub(crate) struct ShardedQueue {
    lanes: Vec<Lane>,
    /// Lazily-maintained heap of (possibly stale) lane heads.
    merge: BinaryHeap<Head>,
    cached_head: Vec<Option<(u64, u64)>>,
    next_seq: u64,
    live: usize,
}

impl ShardedQueue {
    /// Adopts an existing single queue as lane 0 and adds `lanes - 1`
    /// empty site lanes. Previously-issued [`EventId`]s (lane bits 0)
    /// stay valid.
    pub(crate) fn from_single(queue: EventQueue, lanes: u16) -> Self {
        let (wheel, next_seq, cancelled, live, compactions) = queue.into_parts();
        let mut lane0 = Lane::new();
        lane0.wheel = wheel;
        lane0.cancelled = cancelled;
        lane0.live = live;
        lane0.compactions = compactions;
        let mut q = ShardedQueue {
            lanes: std::iter::once(lane0)
                .chain((1..lanes).map(|_| Lane::new()))
                .collect(),
            merge: BinaryHeap::new(),
            cached_head: vec![None; lanes as usize],
            next_seq,
            live,
        };
        for lane in 0..lanes as usize {
            q.refresh_head(lane);
        }
        q
    }

    pub(crate) fn len(&self) -> usize {
        self.live
    }

    pub(crate) fn cancelled_pending(&self) -> usize {
        self.lanes
            .iter()
            .map(|l| l.wheel.len().saturating_sub(l.live))
            .sum()
    }

    pub(crate) fn compactions(&self) -> u64 {
        self.lanes.iter().map(|l| l.compactions).sum()
    }

    /// `(live, tombstoned)` entry counts of one lane.
    pub(crate) fn lane_pending(&self, lane: u16) -> Option<(usize, usize)> {
        self.lanes
            .get(lane as usize)
            .map(|l| (l.live, l.wheel.len().saturating_sub(l.live)))
    }

    /// Unconditionally compacts one lane's tombstones (no floor — this
    /// is the site-drain sweep, where the lane is about to go dormant).
    /// Returns the number of entries removed.
    pub(crate) fn compact_lane(&mut self, lane: u16) -> usize {
        let Some(l) = self.lanes.get_mut(lane as usize) else {
            return 0;
        };
        let before = l.wheel.len();
        let cancelled = &l.cancelled;
        l.wheel.retain(|seq| !cancelled.contains(&seq));
        let removed = before - l.wheel.len();
        if removed > 0 {
            l.compactions += 1;
        }
        removed
    }

    fn refresh_head(&mut self, lane: usize) {
        let h = self.lanes[lane].head();
        if self.cached_head[lane] != h {
            self.cached_head[lane] = h;
            if let Some((time, seq)) = h {
                self.merge.push(Head {
                    time,
                    seq,
                    lane: lane as u16,
                });
            }
        }
    }

    pub(crate) fn push(&mut self, time: SimTime, lane: u16, callback: EventFn) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let t = time.as_nanos();
        let l = &mut self.lanes[lane as usize];
        l.wheel.push(t, seq, callback);
        l.live += 1;
        self.live += 1;
        if self.cached_head[lane as usize].is_none_or(|h| (t, seq) < h) {
            self.cached_head[lane as usize] = Some((t, seq));
            self.merge.push(Head { time: t, seq, lane });
        }
        EventId::new(lane, seq)
    }

    pub(crate) fn cancel(&mut self, id: EventId) -> bool {
        let seq = id.seq();
        if seq >= self.next_seq {
            return false;
        }
        let lane = &mut self.lanes[id.lane() as usize];
        if lane.cancelled.insert(seq) {
            lane.live = lane.live.saturating_sub(1);
            self.live = self.live.saturating_sub(1);
            lane.maybe_compact();
            true
        } else {
            false
        }
    }

    /// The lane whose current head is the global minimum, validated
    /// against the merge heap's cached entries.
    fn min_lane(&mut self) -> Option<usize> {
        loop {
            let top = *self.merge.peek()?;
            let lane = top.lane as usize;
            let actual = self.lanes[lane].head();
            if actual == Some((top.time, top.seq)) {
                return Some(lane);
            }
            // Stale entry: the head fired, was cancelled, or was
            // superseded by an earlier push. Discard and re-cache.
            self.merge.pop();
            if self.cached_head[lane] != actual {
                self.cached_head[lane] = actual;
                if let Some((time, seq)) = actual {
                    self.merge.push(Head {
                        time,
                        seq,
                        lane: lane as u16,
                    });
                }
            }
        }
    }

    pub(crate) fn next_time(&mut self) -> Option<SimTime> {
        let lane = self.min_lane()?;
        self.cached_head[lane].map(|(t, _)| SimTime::from_nanos(t))
    }

    pub(crate) fn pop(&mut self) -> Option<(SimTime, u16, EventFn)> {
        let lane = self.min_lane()?;
        self.merge.pop();
        let (t, _seq, f) = self.lanes[lane].wheel.pop().expect("validated head");
        self.lanes[lane].live -= 1;
        self.live -= 1;
        self.cached_head[lane] = None;
        self.refresh_head(lane);
        Some((SimTime::from_nanos(t), lane as u16, f))
    }
}

// --------------------------------------------------------------------- //
// Partitioned executor: thread-per-shard worlds, conservative windows.
// --------------------------------------------------------------------- //

/// The sentinel network id handed to handlers for frames that arrived
/// from another shard (there is no local [`Network`](crate::network::Network)
/// behind it — handlers must not index the world's network table with it).
pub const REMOTE_NET: crate::NetworkId = crate::NetworkId(u32::MAX);

/// A frame in flight between two shard worlds.
#[derive(Clone, Debug)]
pub struct RemoteFrame {
    /// Destination shard.
    pub to: u16,
    /// Source shard.
    pub from: u16,
    /// Source-shard send sequence (canonical injection tie-break).
    pub seq: u64,
    /// Absolute virtual delivery time (≥ send time + lookahead).
    pub deliver_at: SimTime,
    /// Network the frame should appear to arrive on. [`REMOTE_NET`] for
    /// frames emitted through the raw
    /// [`send_remote`](crate::world::SimWorld::send_remote) channel;
    /// a real network id for frames intercepted at a mirrored trunk (the
    /// destination world then delivers through its normal per-network
    /// path, so unclaimed accounting and handler dispatch match the
    /// single-world run byte-for-byte).
    pub net: crate::NetworkId,
    /// The frame itself; delivered to the `(dst, proto)` handler in the
    /// destination world.
    pub frame: Frame,
}

/// Cross-shard traffic counters of one partitioned world
/// ([`SimWorld::partition_stats`](crate::world::SimWorld::partition_stats)).
#[derive(Clone, Debug, Default)]
pub struct PartitionStats {
    /// This world's shard index.
    pub shard: u16,
    /// Remote frames injected into this world.
    pub cross_in: u64,
    /// Remote frames this world emitted.
    pub cross_out: u64,
    /// Remote frames that arrived with no handler registered.
    pub remote_unclaimed: u64,
    /// Cross-shard frames whose computed delivery undercut the lookahead
    /// of their trunk — each one is a window-safety violation (a trunk
    /// map that promised more lookahead than the mirrored network
    /// provides). Always 0 on a conforming configuration; the frame is
    /// still shipped at its true delivery time, never floored, so
    /// equivalence runs surface the bug instead of masking it.
    pub lookahead_violations: u64,
}

/// Per-trunk conservative lookahead: a lower bound on the delivery
/// latency of every cross-shard frame per directed shard pair.
///
/// This is the per-edge refinement of the single global window: a shard
/// only needs to wait for its *in-edges*, so one low-latency trunk
/// elsewhere in the grid no longer throttles every window. Derived from
/// gateway trunk latencies by
/// `GridTopology::trunk_lookaheads` on the full stack.
#[derive(Clone, Debug, Default)]
pub struct TrunkLookahead {
    edges: BTreeMap<(u16, u16), SimDuration>,
}

impl TrunkLookahead {
    /// An empty map (no trunks declared).
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares the lookahead of the directed trunk `from → to`.
    /// Keeps the minimum if the pair is declared twice (parallel trunks).
    pub fn set(&mut self, from: u16, to: u16, lookahead: SimDuration) {
        assert!(
            lookahead > SimDuration::ZERO,
            "conservative sync needs a non-zero per-trunk lookahead"
        );
        self.edges
            .entry((from, to))
            .and_modify(|d| *d = (*d).min(lookahead))
            .or_insert(lookahead);
    }

    /// Lookahead of the directed trunk `from → to`, if declared.
    pub fn get(&self, from: u16, to: u16) -> Option<SimDuration> {
        self.edges.get(&(from, to)).copied()
    }

    /// Number of declared directed trunks.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no trunks are declared.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Iterates `(from, to, lookahead)` in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (u16, u16, SimDuration)> + '_ {
        self.edges.iter().map(|(&(f, t), &d)| (f, t, d))
    }

    /// In-edge adjacency per destination shard: `in_edges[s]` lists
    /// `(src, lookahead)` for every declared trunk into `s`.
    fn in_edges(&self, shards: u16) -> Vec<Vec<(u16, SimDuration)>> {
        let mut adj = vec![Vec::new(); shards as usize];
        for (&(from, to), &d) in &self.edges {
            if (to as usize) < adj.len() {
                adj[to as usize].push((from, d));
            }
        }
        adj
    }

    /// Per-source lookahead vectors for a shard world's mirror boundary:
    /// `out[to]` is the lookahead this shard promised on its trunk to
    /// `to` (used by the sender side to count violations).
    pub(crate) fn out_edges_of(&self, from: u16, shards: u16) -> Vec<Option<SimDuration>> {
        let mut out = vec![None; shards as usize];
        for (&(f, t), &d) in &self.edges {
            if f == from && (t as usize) < out.len() {
                out[t as usize] = Some(d);
            }
        }
        out
    }
}

/// Configuration for [`run_partitioned`].
#[derive(Clone, Debug)]
pub struct Partition {
    /// Number of shard worlds.
    pub shards: u16,
    /// Worker threads (shard `s` is owned by worker `s % threads`).
    pub threads: usize,
    /// Global conservative window width; must be a lower bound on every
    /// cross-shard delivery latency, and must be non-zero. Used whenever
    /// `trunks` is `None`, and as the floor raw
    /// [`send_remote`](crate::world::SimWorld::send_remote) deliveries
    /// are clamped to.
    pub lookahead: SimDuration,
    /// Per-trunk lookahead map. When set, each shard's window horizon is
    /// computed from its in-edges only — `horizon(s) = min over declared
    /// trunks (p → s) of (earliest(p) + lookahead(p → s))`, where
    /// `earliest(p)` covers both `p`'s pending events and frames still
    /// in transit towards `p`. A shard with no in-edges runs to local
    /// quiescence in one window.
    pub trunks: Option<TrunkLookahead>,
    /// Base RNG seed; shard `s` runs on `seed + s`.
    pub seed: u64,
}

/// What one shard world looked like at quiescence.
pub struct ShardOutcome {
    /// Shard index.
    pub shard: u16,
    /// Final virtual clock.
    pub final_now: SimTime,
    /// Events executed by this world.
    pub events_executed: u64,
    /// Cross-shard counters.
    pub stats: PartitionStats,
    /// Full telemetry snapshot of this world.
    pub snapshot: MetricsSnapshot,
}

/// Result of a partitioned run.
pub struct PartitionReport {
    /// Per-shard outcomes, ordered by shard index.
    pub outcomes: Vec<ShardOutcome>,
    /// Barrier rounds executed.
    pub rounds: u64,
    /// Total events executed across all shards.
    pub events_total: u64,
    /// Total frames exchanged between shards.
    pub frames_crossed: u64,
    /// Wall-clock seconds spent in the window loop.
    pub wall_seconds: f64,
    /// Worker threads used.
    pub threads: usize,
}

impl PartitionReport {
    /// Virtual events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.events_total as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Deterministic digest of the entire run — per-shard clocks,
    /// counters and full snapshots, excluding wall-clock fields. Two
    /// runs of the same partition spec must produce equal digests
    /// regardless of thread count.
    pub fn digest(&self) -> String {
        crate::telemetry::merged_digest(self.outcomes.iter().map(|o| {
            let header = format!(
                "shard={} now={} events={} cross_in={} cross_out={} unclaimed={} violations={}",
                o.shard,
                o.final_now.as_nanos(),
                o.events_executed,
                o.stats.cross_in,
                o.stats.cross_out,
                o.stats.remote_unclaimed,
                o.stats.lookahead_violations,
            );
            (header, &o.snapshot)
        }))
    }

    /// Total cross-shard lookahead violations (0 on a conforming run).
    pub fn lookahead_violations(&self) -> u64 {
        self.outcomes
            .iter()
            .map(|o| o.stats.lookahead_violations)
            .sum()
    }
}

enum Go {
    Round {
        /// Window horizon per shard index (uniform mode broadcasts one
        /// value; per-trunk mode computes each from the shard's in-edges).
        horizons: Vec<SimTime>,
        frames: Vec<RemoteFrame>,
    },
    Finish,
}

struct Done {
    worker: usize,
    outbox: Vec<RemoteFrame>,
    /// Earliest pending local event per owned shard.
    next_times: Vec<(u16, Option<SimTime>)>,
    executed_delta: u64,
}

/// Runs `cfg.shards` independent shard worlds to quiescence under
/// conservative window synchronization.
///
/// `build` is called once per shard *on the worker thread that owns it*
/// (worlds are `Rc`-ridden and never cross threads) to populate nodes,
/// handlers and initial events; it may immediately use
/// [`SimWorld::send_remote`](crate::world::SimWorld::send_remote).
///
/// The run is deterministic: for a fixed `cfg` (threads excluded) and
/// `build`, the merged [`PartitionReport::digest`] is byte-identical
/// whatever `cfg.threads` is.
pub fn run_partitioned<B>(cfg: &Partition, build: B) -> PartitionReport
where
    B: Fn(u16, &mut SimWorld) + Send + Sync,
{
    assert!(cfg.shards >= 1, "need at least one shard");
    assert!(
        cfg.lookahead > SimDuration::ZERO,
        "conservative sync needs a non-zero lookahead"
    );
    let threads = cfg.threads.clamp(1, cfg.shards as usize);
    let in_edges = cfg.trunks.as_ref().map(|t| t.in_edges(cfg.shards));
    let build = &build;

    let mut to_workers: Vec<mpsc::Sender<Go>> = Vec::with_capacity(threads);
    let (done_tx, done_rx) = mpsc::channel::<Done>();
    let (final_tx, final_rx) = mpsc::channel::<Vec<ShardOutcome>>();

    let mut rounds = 0u64;
    let mut events_total = 0u64;
    let mut frames_crossed = 0u64;
    // simlint: allow(D2, reason = "wall-clock events/s reporting only; never feeds event ordering, digests, or snapshots")
    let started = std::time::Instant::now();

    let mut outcomes: Vec<ShardOutcome> = Vec::with_capacity(cfg.shards as usize);
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let (tx, rx) = mpsc::channel::<Go>();
            to_workers.push(tx);
            let done_tx = done_tx.clone();
            let final_tx = final_tx.clone();
            let owned: Vec<u16> = (0..cfg.shards)
                .filter(|s| *s as usize % threads == worker)
                .collect();
            let (seed, lookahead) = (cfg.seed, cfg.lookahead);
            let trunks = cfg.trunks.clone();
            let shards = cfg.shards;
            scope.spawn(move || {
                let mut worlds: Vec<(u16, SimWorld, u64)> = owned
                    .iter()
                    .map(|&s| {
                        let mut w = SimWorld::new(seed.wrapping_add(s as u64));
                        w.enable_partition(s, lookahead);
                        if let Some(t) = &trunks {
                            w.set_trunk_lookaheads(t.out_edges_of(s, shards));
                        }
                        build(s, &mut w);
                        (s, w, 0u64)
                    })
                    .collect();
                while let Ok(go) = rx.recv() {
                    match go {
                        Go::Round { horizons, frames } => {
                            let mut outbox = Vec::new();
                            let mut next_times = Vec::with_capacity(worlds.len());
                            let mut executed_delta = 0u64;
                            for (sid, world, seen) in worlds.iter_mut() {
                                for rf in frames.iter().filter(|rf| rf.to == *sid) {
                                    world.inject_remote(rf.clone());
                                }
                                world.run_before(horizons[*sid as usize]);
                                let executed = world.stats.events_executed;
                                executed_delta += executed - *seen;
                                *seen = executed;
                                outbox.append(&mut world.take_remote_outbox());
                                next_times.push((*sid, world.next_event_time()));
                            }
                            done_tx
                                .send(Done {
                                    worker,
                                    outbox,
                                    next_times,
                                    executed_delta,
                                })
                                .expect("coordinator alive");
                        }
                        Go::Finish => {
                            let outcomes: Vec<ShardOutcome> = worlds
                                .iter()
                                .map(|(s, w, _)| ShardOutcome {
                                    shard: *s,
                                    final_now: w.now(),
                                    events_executed: w.stats.events_executed,
                                    stats: w.partition_stats().cloned().unwrap_or_default(),
                                    snapshot: w.metrics_snapshot(),
                                })
                                .collect();
                            final_tx.send(outcomes).expect("coordinator alive");
                            break;
                        }
                    }
                }
            });
        }

        // Coordinator: barrier rounds until every shard is quiescent and
        // no frames are in transit.
        let mut transit: Vec<RemoteFrame> = Vec::new();
        // First round executes nothing, just reports.
        let mut horizons = vec![SimTime::ZERO; cfg.shards as usize];
        loop {
            // Route in-transit frames to their owning workers in the
            // canonical order (sorted below before being moved here).
            for (worker, tx) in to_workers.iter().enumerate() {
                let frames: Vec<RemoteFrame> = transit
                    .iter()
                    .filter(|rf| rf.to as usize % threads == worker)
                    .cloned()
                    .collect();
                tx.send(Go::Round {
                    horizons: horizons.clone(),
                    frames,
                })
                .expect("worker alive");
            }
            transit.clear();
            rounds += 1;

            // Earliest thing that can still happen in each shard: a
            // pending local event, or an in-transit frame (which becomes
            // an event at its delivery time).
            let mut bases: Vec<Option<SimTime>> = vec![None; cfg.shards as usize];
            let min_into = |slot: &mut Option<SimTime>, t: Option<SimTime>| {
                *slot = match (*slot, t) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
            };
            for _ in 0..threads {
                let done = done_rx.recv().expect("worker alive");
                let _ = done.worker;
                events_total += done.executed_delta;
                frames_crossed += done.outbox.len() as u64;
                for &(sid, t) in &done.next_times {
                    min_into(&mut bases[sid as usize], t);
                }
                transit.extend(done.outbox);
            }
            for rf in &transit {
                min_into(&mut bases[rf.to as usize], Some(rf.deliver_at));
            }
            let Some(earliest) = bases.iter().flatten().min().copied() else {
                break; // fully quiescent
            };
            // Canonical injection order — this is what makes the run
            // independent of thread count and scheduling.
            transit.sort_by_key(|rf| (rf.deliver_at, rf.from, rf.seq));
            match &in_edges {
                // Global window: any event below earliest + lookahead
                // cannot be affected by a cross-shard frame generated at
                // or after `earliest`.
                None => horizons.fill(earliest + cfg.lookahead),
                // Per-trunk windows: shard `s` only has to respect its
                // in-edges. A frame emitted by `p` at or after `base(p)`
                // reaches `s` no earlier than `base(p) + lookahead(p→s)`,
                // so `s` may run strictly below the minimum of those
                // bounds. Shards whose upstreams are all quiescent (or
                // that have no declared in-edges) run to local
                // quiescence in this window.
                Some(adj) => {
                    for (s, horizon) in horizons.iter_mut().enumerate() {
                        *horizon = adj[s]
                            .iter()
                            .filter_map(|&(p, d)| bases[p as usize].map(|b| b.saturating_add(d)))
                            .min()
                            .unwrap_or(SimTime::MAX);
                    }
                }
            }
        }
        for tx in &to_workers {
            tx.send(Go::Finish).expect("worker alive");
        }
        for _ in 0..threads {
            outcomes.extend(final_rx.recv().expect("worker alive"));
        }
    });
    outcomes.sort_by_key(|o| o.shard);

    PartitionReport {
        outcomes,
        rounds,
        events_total,
        frames_crossed,
        wall_seconds: started.elapsed().as_secs_f64(),
        threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::ProtoId;
    use crate::spec::NetworkSpec;
    use std::cell::Cell;
    use std::rc::Rc;

    /// A two-shard ping-pong over the remote channel: shard 0 sends N
    /// pings, shard 1 pongs each back.
    fn ping_pong(threads: usize) -> PartitionReport {
        let cfg = Partition {
            shards: 2,
            threads,
            lookahead: SimDuration::from_micros(50),
            trunks: None,
            seed: 7,
        };
        run_partitioned(&cfg, |shard, world| {
            let node = world.add_node(&format!("gw{shard}"));
            let peer = 1 - shard;
            let count = Rc::new(Cell::new(0u32));
            world.register_handler(node, ProtoId::user(0), move |w, net, f| {
                assert_eq!(net, REMOTE_NET);
                count.set(count.get() + 1);
                if count.get() < 10 {
                    let reply = Frame::new(f.dst, f.src, ProtoId::user(0), vec![0u8; 64]);
                    w.send_remote(peer, reply, SimDuration::ZERO);
                }
            });
            if shard == 0 {
                world.schedule_at(SimTime::from_nanos(10), move |w| {
                    let f = Frame::new(node, NodeId(0), ProtoId::user(0), vec![0u8; 64]);
                    w.send_remote(peer, f, SimDuration::ZERO);
                });
            }
        })
    }

    #[test]
    fn partitioned_ping_pong_converges_and_conserves() {
        let r = ping_pong(2);
        assert_eq!(r.outcomes.len(), 2);
        let total_out: u64 = r.outcomes.iter().map(|o| o.stats.cross_out).sum();
        let total_in: u64 = r.outcomes.iter().map(|o| o.stats.cross_in).sum();
        assert_eq!(total_out, total_in, "no frame lost in transit");
        assert_eq!(r.frames_crossed, total_out);
        assert!(r.frames_crossed >= 19, "10 pings + 9 pongs crossed");
    }

    #[test]
    fn thread_count_does_not_change_the_run() {
        let a = ping_pong(1).digest();
        let b = ping_pong(2).digest();
        assert_eq!(a, b);
    }

    /// A ring of shards relaying one token each: shard `s` forwards to
    /// `s + 1` over its declared trunk. Per-trunk windows must produce
    /// the same run as the global-minimum window, in (weakly) fewer
    /// barrier rounds, with zero violations.
    fn token_ring(trunks: Option<TrunkLookahead>) -> PartitionReport {
        const SHARDS: u16 = 4;
        let cfg = Partition {
            shards: SHARDS,
            threads: 2,
            lookahead: SimDuration::from_micros(20),
            trunks,
            seed: 11,
        };
        run_partitioned(&cfg, |shard, world| {
            let node = world.add_node(&format!("gw{shard}"));
            let next = (shard + 1) % SHARDS;
            let hops = Rc::new(Cell::new(0u32));
            // Each hop waits out a latency matching its trunk: slow out
            // of even shards, fast out of odd ones.
            let delay = if shard % 2 == 0 {
                SimDuration::from_micros(200)
            } else {
                SimDuration::from_micros(20)
            };
            world.register_handler(node, ProtoId::user(0), move |w, _net, f| {
                hops.set(hops.get() + 1);
                if hops.get() < 8 {
                    let fwd = Frame::new(f.dst, f.src, ProtoId::user(0), vec![0u8; 32]);
                    w.send_remote(next, fwd, delay);
                }
            });
            if shard == 0 {
                world.schedule_at(SimTime::from_nanos(100), move |w| {
                    let f = Frame::new(node, NodeId(0), ProtoId::user(0), vec![0u8; 32]);
                    w.send_remote(next, f, delay);
                });
            }
        })
    }

    #[test]
    fn per_trunk_windows_match_global_and_save_rounds() {
        let mut trunks = TrunkLookahead::new();
        for s in 0..4u16 {
            let d = if s % 2 == 0 {
                SimDuration::from_micros(200)
            } else {
                SimDuration::from_micros(20)
            };
            trunks.set(s, (s + 1) % 4, d);
        }
        let global = token_ring(None);
        let per_trunk = token_ring(Some(trunks));
        assert_eq!(global.digest(), per_trunk.digest());
        assert_eq!(per_trunk.lookahead_violations(), 0);
        assert!(
            per_trunk.rounds <= global.rounds,
            "per-trunk windows must not add rounds: {} vs {}",
            per_trunk.rounds,
            global.rounds
        );
    }

    #[test]
    fn local_traffic_runs_inside_a_shard() {
        let cfg = Partition {
            shards: 3,
            threads: 2,
            lookahead: SimDuration::from_micros(10),
            trunks: None,
            seed: 1,
        };
        let r = run_partitioned(&cfg, |_shard, world| {
            let a = world.add_node("a");
            let b = world.add_node("b");
            let net = world.add_network(NetworkSpec::myrinet_2000());
            world.attach(a, net);
            world.attach(b, net);
            let got = Rc::new(Cell::new(0u32));
            let g = got.clone();
            world.register_handler(b, ProtoId::user(1), move |_w, _n, _f| {
                g.set(g.get() + 1);
            });
            for _ in 0..5 {
                world
                    .send_frame(net, Frame::new(a, b, ProtoId::user(1), vec![0u8; 128]))
                    .unwrap();
            }
        });
        assert_eq!(r.outcomes.len(), 3);
        assert_eq!(r.frames_crossed, 0);
        assert!(r.events_total >= 15, "5 deliveries per shard");
    }
}
