//! Offline stand-in for the `bytes` crate.
//!
//! The build container has no access to crates.io, so this workspace crate
//! provides the (small) subset of the `bytes` 1.x API that PadicoTM-RS
//! uses: cheaply-cloneable immutable [`Bytes`], growable [`BytesMut`], and
//! the big-endian [`Buf`]/[`BufMut`] cursor traits. Semantics match the
//! upstream crate for the implemented surface; swapping the real crate back
//! in requires only a manifest change.

#![deny(unsafe_code)]
#![warn(rust_2018_idioms)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    // `Arc<Vec<u8>>` rather than upstream's `Arc<[u8]>`: freezing a
    // `Vec` is then allocation-free even when capacity exceeds length,
    // and a uniquely-owned buffer can be recovered intact via
    // [`Bytes::try_into_vec`] for freelist reuse (`simnet::arena`).
    buf: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes::from_vec(Vec::new())
    }

    /// Creates `Bytes` from a static slice.
    ///
    /// The upstream crate borrows the static data; this stand-in copies it
    /// once, which is equivalent for the small headers it is used with.
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Copies `data` into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from_vec(data.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            buf: Arc::new(v),
            start: 0,
            end,
        }
    }

    /// Recovers the backing `Vec<u8>` if this handle is the sole owner
    /// of the full buffer (no other clones or live sub-slices); the
    /// vector keeps its capacity, so hot paths can recycle payload
    /// allocations through a freelist. Otherwise returns `self` back.
    pub fn try_into_vec(self) -> Result<Vec<u8>, Bytes> {
        if self.start != 0 || self.end != self.buf.len() {
            return Err(self);
        }
        let (start, end) = (self.start, self.end);
        Arc::try_unwrap(self.buf).map_err(|buf| Bytes { buf, start, end })
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    fn as_slice(&self) -> &[u8] {
        &self.buf[self.start..self.end]
    }

    /// Returns a slice of self for the provided range, sharing the
    /// underlying storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds");
        Bytes {
            buf: self.buf.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Splits the bytes into two at the given index: `self` keeps
    /// `[at, len)` and the returned value holds `[0, at)`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            buf: self.buf.clone(),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Splits the bytes into two at the given index: `self` keeps
    /// `[0, at)` and the returned value holds `[at, len)`.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_off out of bounds");
        let tail = Bytes {
            buf: self.buf.clone(),
            start: self.start + at,
            end: self.end,
        };
        self.end = self.start + at;
        tail
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_vec(v)
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Bytes {
        Bytes::from_vec(v.into_vec())
    }
}

impl From<BytesMut> for Bytes {
    fn from(v: BytesMut) -> Bytes {
        v.freeze()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from_vec(iter.into_iter().collect())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}
impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte buffer, frozen into [`Bytes`] once filled.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { inner: Vec::new() }
    }

    /// Creates an empty buffer with the given capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.inner.extend_from_slice(data);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.inner)
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    /// Splits off and returns the first `at` bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let tail = self.inner.split_off(at);
        let head = std::mem::replace(&mut self.inner, tail);
        BytesMut { inner: head }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Bytes::copy_from_slice(&self.inner).fmt(f)
    }
}

/// Read access to a buffer of bytes, cursor style (big-endian getters).
pub trait Buf {
    /// Bytes remaining between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;

    /// The current contiguous chunk starting at the cursor.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// True when at least one byte remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies bytes from the cursor into `dst`, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads one signed byte.
    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    /// Reads a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian i16.
    fn get_i16(&mut self) -> i16 {
        self.get_u16() as i16
    }

    /// Reads a big-endian i32.
    fn get_i32(&mut self) -> i32 {
        self.get_u32() as i32
    }

    /// Reads a big-endian i64.
    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }

    /// Reads a big-endian f64.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }

    /// Reads a big-endian f32.
    fn get_f32(&mut self) -> f32 {
        f32::from_bits(self.get_u32())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write access to a growable buffer (big-endian putters).
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Writes one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Writes one signed byte.
    fn put_i8(&mut self, v: i8) {
        self.put_u8(v as u8);
    }

    /// Writes a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian i16.
    fn put_i16(&mut self, v: i16) {
        self.put_u16(v as u16);
    }

    /// Writes a big-endian i32.
    fn put_i32(&mut self, v: i32) {
        self.put_u32(v as u32);
    }

    /// Writes a big-endian i64.
    fn put_i64(&mut self, v: i64) {
        self.put_u64(v as u64);
    }

    /// Writes a big-endian f64.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a big-endian f32.
    fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip_and_slicing() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let mut m = b.clone();
        let head = m.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&m[..], &[3, 4, 5]);
    }

    #[test]
    fn try_into_vec_recovers_unique_full_buffers() {
        let mut v = Vec::with_capacity(4096);
        v.extend_from_slice(&[9u8; 100]);
        let b = Bytes::from(v);
        let back = b.try_into_vec().expect("sole owner");
        assert_eq!(back.len(), 100);
        assert!(back.capacity() >= 4096, "capacity survives the round trip");

        // A live clone blocks recovery…
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        let b = b.try_into_vec().unwrap_err();
        drop(c);
        // …until it is dropped.
        assert_eq!(b.try_into_vec().unwrap(), vec![1, 2, 3]);

        // A sub-slice is never recoverable, even when uniquely owned.
        let s = Bytes::from(vec![1u8, 2, 3, 4]).slice(1..3);
        assert!(s.try_into_vec().is_err());
    }

    #[test]
    fn buf_getters_match_be_layout() {
        let mut bm = BytesMut::new();
        bm.put_u8(7);
        bm.put_u16(0x0102);
        bm.put_u32(0x01020304);
        bm.put_u64(0x0102030405060708);
        bm.put_i32(-5);
        bm.put_f64(1.5);
        let mut b = bm.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16(), 0x0102);
        assert_eq!(b.get_u32(), 0x01020304);
        assert_eq!(b.get_u64(), 0x0102030405060708);
        assert_eq!(b.get_i32(), -5);
        assert_eq!(b.get_f64(), 1.5);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn equality_with_arrays_and_vecs() {
        let b = Bytes::copy_from_slice(b"abc");
        assert_eq!(b, b"abc");
        assert_eq!(b, *b"abc");
        assert_eq!(b, vec![b'a', b'b', b'c']);
        assert_eq!(b, Bytes::from_static(b"abc"));
    }

    #[test]
    fn concat_works_via_borrow() {
        let v = [Bytes::from_static(b"ab"), Bytes::from_static(b"cd")];
        assert_eq!(v.concat(), b"abcd");
    }
}
