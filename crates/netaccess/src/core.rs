//! The NetAccess core: a single, fair, reentrant dispatch loop per node.
//!
//! The paper's position is that arbitration must sit at the lowest level:
//! the arbitration layer is *the only client* of the raw networking
//! resources, everything above it is callback-based, and one cooperative
//! loop interleaves the polling of parallel-oriented hardware (`MadIO`) and
//! of system sockets (`SysIO`) with a user-tunable fairness policy — no
//! signal-driven I/O, no competing busy-pollers starving each other.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use simnet::{NodeId, SimDuration, SimWorld};

/// Which subsystem an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Subsystem {
    /// Parallel-oriented hardware access (Madeleine-based).
    MadIO,
    /// Distributed-oriented system-socket access.
    SysIO,
}

/// Interleaving policy between MadIO and SysIO dispatching.
///
/// Weights express how many consecutive events of each subsystem the loop
/// is willing to dispatch before yielding to the other when both have work
/// pending. The paper calls this the "dynamically user-tunable" priority
/// between system sockets and the high-performance network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PollPolicy {
    /// Consecutive MadIO events dispatched per round.
    pub madio_weight: u32,
    /// Consecutive SysIO events dispatched per round.
    pub sysio_weight: u32,
}

impl PollPolicy {
    /// Equal priority.
    pub fn balanced() -> PollPolicy {
        PollPolicy {
            madio_weight: 1,
            sysio_weight: 1,
        }
    }

    /// Favour the high-performance network (typical for an MPI-dominated
    /// application with occasional control traffic).
    pub fn favour_madio(ratio: u32) -> PollPolicy {
        PollPolicy {
            madio_weight: ratio.max(1),
            sysio_weight: 1,
        }
    }

    /// Favour system sockets (typical when interactive monitoring must stay
    /// responsive under heavy parallel traffic).
    pub fn favour_sysio(ratio: u32) -> PollPolicy {
        PollPolicy {
            madio_weight: 1,
            sysio_weight: ratio.max(1),
        }
    }
}

impl Default for PollPolicy {
    fn default() -> Self {
        PollPolicy::balanced()
    }
}

/// Cost model of the arbitration layer itself.
#[derive(Debug, Clone)]
pub struct NetAccessConfig {
    /// Cost of dispatching one MadIO event (demultiplexing a combined
    /// header and calling the registered callback). The paper measures this
    /// overhead at under 0.1 µs.
    pub madio_dispatch_overhead: SimDuration,
    /// Cost of dispatching one SysIO event (scanning the ready set and
    /// calling the callback).
    pub sysio_dispatch_overhead: SimDuration,
    /// Initial interleaving policy.
    pub policy: PollPolicy,
    /// Whether MadIO combines its multiplexing header with the payload
    /// message (the paper's "header combining" optimization). Disabling it
    /// sends the header as a separate Madeleine message, which is the
    /// ablation measured in the MadIO-overhead experiment.
    pub header_combining: bool,
}

impl Default for NetAccessConfig {
    fn default() -> Self {
        NetAccessConfig {
            madio_dispatch_overhead: SimDuration::from_nanos(40),
            sysio_dispatch_overhead: SimDuration::from_nanos(400),
            policy: PollPolicy::default(),
            header_combining: true,
        }
    }
}

/// Counters of the dispatch loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetAccessStats {
    /// MadIO events dispatched.
    pub madio_events: u64,
    /// SysIO events dispatched.
    pub sysio_events: u64,
    /// Times the loop went idle (both queues empty).
    pub idle_transitions: u64,
}

type PendingEvent = Box<dyn FnOnce(&mut SimWorld)>;

pub(crate) struct CoreInner {
    pub(crate) node: NodeId,
    pub(crate) config: NetAccessConfig,
    madio_queue: VecDeque<PendingEvent>,
    sysio_queue: VecDeque<PendingEvent>,
    /// Remaining budget of the subsystem currently being favoured within a
    /// round (deficit round robin with two classes).
    round_budget: (u32, u32),
    loop_running: bool,
    stats: NetAccessStats,
}

/// The per-node arbitration core shared by [`crate::MadIO`] and
/// [`crate::SysIO`].
#[derive(Clone)]
pub struct NetAccessCore {
    pub(crate) inner: Rc<RefCell<CoreInner>>,
}

impl NetAccessCore {
    /// Creates the core for `node`.
    pub fn new(node: NodeId, config: NetAccessConfig) -> NetAccessCore {
        let budget = (config.policy.madio_weight, config.policy.sysio_weight);
        NetAccessCore {
            inner: Rc::new(RefCell::new(CoreInner {
                node,
                config,
                madio_queue: VecDeque::new(),
                sysio_queue: VecDeque::new(),
                round_budget: budget,
                loop_running: false,
                stats: NetAccessStats::default(),
            })),
        }
    }

    /// The node this core arbitrates for.
    pub fn node(&self) -> NodeId {
        self.inner.borrow().node
    }

    /// Current dispatch statistics.
    pub fn stats(&self) -> NetAccessStats {
        self.inner.borrow().stats
    }

    /// Changes the interleaving policy at runtime (the paper's
    /// configuration API).
    pub fn set_policy(&self, policy: PollPolicy) {
        let mut inner = self.inner.borrow_mut();
        inner.config.policy = policy;
        inner.round_budget = (policy.madio_weight, policy.sysio_weight);
    }

    /// Current policy.
    pub fn policy(&self) -> PollPolicy {
        self.inner.borrow().config.policy
    }

    /// Whether MadIO header combining is enabled.
    pub fn header_combining(&self) -> bool {
        self.inner.borrow().config.header_combining
    }

    /// Enables or disables MadIO header combining (ablation knob).
    pub fn set_header_combining(&self, enabled: bool) {
        self.inner.borrow_mut().config.header_combining = enabled;
    }

    /// Number of events waiting in both queues.
    pub fn pending(&self) -> (usize, usize) {
        let inner = self.inner.borrow();
        (inner.madio_queue.len(), inner.sysio_queue.len())
    }

    /// Enqueues a dispatch for `subsystem` and makes sure the loop runs.
    pub(crate) fn enqueue(&self, world: &mut SimWorld, subsystem: Subsystem, event: PendingEvent) {
        {
            let mut inner = self.inner.borrow_mut();
            match subsystem {
                Subsystem::MadIO => inner.madio_queue.push_back(event),
                Subsystem::SysIO => inner.sysio_queue.push_back(event),
            }
        }
        self.kick(world);
    }

    fn kick(&self, world: &mut SimWorld) {
        let should_start = {
            let mut inner = self.inner.borrow_mut();
            if inner.loop_running {
                false
            } else {
                inner.loop_running = true;
                true
            }
        };
        if should_start {
            let core = self.clone();
            world.schedule_after(SimDuration::ZERO, move |world| core.iterate(world));
        }
    }

    /// One iteration of the dispatch loop: pick the next event according to
    /// the fairness policy, charge its dispatch overhead, run it, schedule
    /// the next iteration.
    fn iterate(&self, world: &mut SimWorld) {
        let (event, overhead) = {
            let mut inner = self.inner.borrow_mut();
            let policy = inner.config.policy;
            let madio_empty = inner.madio_queue.is_empty();
            let sysio_empty = inner.sysio_queue.is_empty();
            if madio_empty && sysio_empty {
                inner.loop_running = false;
                inner.stats.idle_transitions += 1;
                return;
            }
            // Weighted round robin: consume budget of the class we pick;
            // when both budgets are exhausted, start a new round.
            if inner.round_budget.0 == 0 && inner.round_budget.1 == 0 {
                inner.round_budget = (policy.madio_weight, policy.sysio_weight);
            }
            let pick_madio = if madio_empty {
                false
            } else if sysio_empty {
                true
            } else {
                inner.round_budget.0 > 0
            };
            if pick_madio {
                inner.round_budget.0 = inner.round_budget.0.saturating_sub(1);
                inner.stats.madio_events += 1;
                (
                    inner.madio_queue.pop_front().expect("checked non-empty"),
                    inner.config.madio_dispatch_overhead,
                )
            } else {
                inner.round_budget.1 = inner.round_budget.1.saturating_sub(1);
                inner.stats.sysio_events += 1;
                (
                    inner.sysio_queue.pop_front().expect("checked non-empty"),
                    inner.config.sysio_dispatch_overhead,
                )
            }
        };
        // Charge the dispatch overhead, run the callback, then continue.
        let core = self.clone();
        world.schedule_after(overhead, move |world| {
            event(world);
            core.iterate(world);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell as StdRefCell;

    fn make_core() -> (SimWorld, NetAccessCore) {
        let mut world = SimWorld::new(0);
        let node = world.add_node("n");
        let core = NetAccessCore::new(node, NetAccessConfig::default());
        (world, core)
    }

    #[test]
    fn events_are_dispatched_in_order_within_a_subsystem() {
        let (mut world, core) = make_core();
        let log = Rc::new(StdRefCell::new(Vec::new()));
        for i in 0..5 {
            let l = log.clone();
            core.enqueue(
                &mut world,
                Subsystem::MadIO,
                Box::new(move |_w| l.borrow_mut().push(i)),
            );
        }
        world.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
        assert_eq!(core.stats().madio_events, 5);
    }

    #[test]
    fn balanced_policy_interleaves_fairly() {
        let (mut world, core) = make_core();
        let log = Rc::new(StdRefCell::new(Vec::new()));
        for _ in 0..10 {
            let l = log.clone();
            core.enqueue(
                &mut world,
                Subsystem::MadIO,
                Box::new(move |_w| l.borrow_mut().push('m')),
            );
            let l = log.clone();
            core.enqueue(
                &mut world,
                Subsystem::SysIO,
                Box::new(move |_w| l.borrow_mut().push('s')),
            );
        }
        world.run();
        let log = log.borrow();
        assert_eq!(log.len(), 20);
        // With balanced weights, no subsystem runs more than twice in a row.
        let mut max_run = 1;
        let mut run = 1;
        for w in log.windows(2) {
            if w[0] == w[1] {
                run += 1;
                max_run = max_run.max(run);
            } else {
                run = 1;
            }
        }
        assert!(max_run <= 2, "interleaving too bursty: {log:?}");
    }

    #[test]
    fn weighted_policy_biases_dispatch_order() {
        let (mut world, core) = make_core();
        core.set_policy(PollPolicy::favour_madio(4));
        let log = Rc::new(StdRefCell::new(Vec::new()));
        for _ in 0..8 {
            let l = log.clone();
            core.enqueue(
                &mut world,
                Subsystem::MadIO,
                Box::new(move |_w| l.borrow_mut().push('m')),
            );
            let l = log.clone();
            core.enqueue(
                &mut world,
                Subsystem::SysIO,
                Box::new(move |_w| l.borrow_mut().push('s')),
            );
        }
        world.run();
        let log = log.borrow();
        // The first 5 dispatches should be dominated by MadIO (4 m's then an s).
        let first: String = log.iter().take(5).collect();
        assert_eq!(first, "mmmms");
        assert_eq!(core.stats().madio_events, 8);
        assert_eq!(core.stats().sysio_events, 8);
    }

    #[test]
    fn dispatch_overhead_is_charged() {
        let (mut world, core) = make_core();
        for _ in 0..100 {
            core.enqueue(&mut world, Subsystem::MadIO, Box::new(|_w| {}));
        }
        world.run();
        // 100 events at 40 ns each: at least 4 µs of virtual time.
        assert!(world.now().as_micros_f64() >= 4.0);
    }

    #[test]
    fn policy_can_change_at_runtime() {
        let (_world, core) = make_core();
        assert_eq!(core.policy(), PollPolicy::balanced());
        core.set_policy(PollPolicy::favour_sysio(7));
        assert_eq!(core.policy().sysio_weight, 7);
        assert!(core.header_combining());
        core.set_header_combining(false);
        assert!(!core.header_combining());
    }

    #[test]
    fn loop_goes_idle_and_wakes_up_again() {
        let (mut world, core) = make_core();
        let hits = Rc::new(StdRefCell::new(0));
        let h = hits.clone();
        core.enqueue(
            &mut world,
            Subsystem::SysIO,
            Box::new(move |_w| *h.borrow_mut() += 1),
        );
        world.run();
        assert_eq!(*hits.borrow(), 1);
        assert!(core.stats().idle_transitions >= 1);
        let h = hits.clone();
        core.enqueue(
            &mut world,
            Subsystem::SysIO,
            Box::new(move |_w| *h.borrow_mut() += 1),
        );
        world.run();
        assert_eq!(*hits.borrow(), 2);
    }
}
