//! The per-node NetAccess facade tying the core, MadIO and SysIO together.

use madeleine::{MadConfig, Madeleine};
use simnet::{NetworkId, NodeId, SimWorld};

use crate::core::{NetAccessConfig, NetAccessCore, NetAccessStats, PollPolicy};
use crate::madio::MadIO;
use crate::sysio::SysIO;

/// A node's NetAccess instance: the single arbitrated entry point to every
/// networking resource of that node.
#[derive(Clone)]
pub struct NetAccess {
    core: NetAccessCore,
    madio: MadIO,
    sysio: SysIO,
    node: NodeId,
}

impl NetAccess {
    /// Brings up NetAccess on `node` with default configuration. If
    /// `san` is given, a Madeleine instance is created on it and MadIO is
    /// attached to a channel spanning `san_group`.
    pub fn new(
        world: &mut SimWorld,
        node: NodeId,
        san: Option<(NetworkId, Vec<NodeId>)>,
    ) -> NetAccess {
        Self::with_config(world, node, san, NetAccessConfig::default())
    }

    /// Brings up NetAccess with an explicit configuration.
    pub fn with_config(
        world: &mut SimWorld,
        node: NodeId,
        san: Option<(NetworkId, Vec<NodeId>)>,
        config: NetAccessConfig,
    ) -> NetAccess {
        let core = NetAccessCore::new(node, config);
        let madio = MadIO::new(core.clone());
        let sysio = SysIO::new(world, core.clone(), node);
        if let Some((network, group)) = san {
            let mad = Madeleine::with_config(world, node, network, MadConfig::default());
            let channel = mad
                .open_channel(group)
                .expect("at least one hardware channel must be available for MadIO");
            madio.attach_channel(world, channel);
        }
        NetAccess {
            core,
            madio,
            sysio,
            node,
        }
    }

    /// The node this instance arbitrates for.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The MadIO subsystem (parallel-oriented hardware).
    pub fn madio(&self) -> MadIO {
        self.madio.clone()
    }

    /// The SysIO subsystem (system sockets).
    pub fn sysio(&self) -> SysIO {
        self.sysio.clone()
    }

    /// Dispatch-loop statistics.
    pub fn stats(&self) -> NetAccessStats {
        self.core.stats()
    }

    /// Changes the MadIO/SysIO interleaving policy at runtime.
    pub fn set_policy(&self, policy: PollPolicy) {
        self.core.set_policy(policy);
    }

    /// Current interleaving policy.
    pub fn policy(&self) -> PollPolicy {
        self.core.policy()
    }

    /// Enables or disables MadIO header combining.
    pub fn set_header_combining(&self, enabled: bool) {
        self.core.set_header_combining(enabled);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::madio::MadIOTag;
    use simnet::{topology, NetworkSpec};
    use std::cell::Cell;
    use std::rc::Rc;
    use transport::{ByteStream, ByteStreamExt};

    /// Builds the paper's test platform (2 nodes, Myrinet + Ethernet) with
    /// NetAccess up on both nodes.
    fn platform() -> (
        SimWorld,
        Vec<NetAccess>,
        simnet::NetworkId,
        simnet::NetworkId,
        Vec<NodeId>,
    ) {
        let p = topology::san_pair(77);
        let mut world = p.world;
        let nodes = vec![p.a, p.b];
        let na: Vec<NetAccess> = nodes
            .iter()
            .map(|&n| NetAccess::new(&mut world, n, Some((p.san, nodes.clone()))))
            .collect();
        (world, na, p.san, p.lan, nodes)
    }

    #[test]
    fn madio_and_sysio_coexist_on_one_node() {
        let (mut world, na, _san, lan, nodes) = platform();
        // Middleware 1: message over MadIO (the SAN).
        let got_mad = Rc::new(Cell::new(false));
        let g = got_mad.clone();
        na[1]
            .madio()
            .register(&mut world, MadIOTag::user(1), move |_w, m| {
                assert_eq!(m.concat(), b"mpi-like traffic");
                g.set(true);
            });
        na[0]
            .madio()
            .send_bytes(&mut world, 1, MadIOTag::user(1), &b"mpi-like traffic"[..]);

        // Middleware 2: stream over SysIO (the LAN), concurrently.
        let got_sys = Rc::new(Cell::new(false));
        let g = got_sys.clone();
        let sysio_b = na[1].sysio();
        let sysio_b2 = sysio_b.clone();
        sysio_b.listen(5555, move |_w, conn| {
            let g = g.clone();
            let conn_rc: Rc<dyn ByteStream> = Rc::new(conn);
            sysio_b2.watch(conn_rc, move |world, stream| {
                if stream.recv(world, usize::MAX) == b"corba-like traffic" {
                    g.set(true);
                }
            });
        });
        let conn = na[0].sysio().connect(&mut world, lan, nodes[1], 5555);
        conn.send_all(&mut world, b"corba-like traffic");

        world.run();
        assert!(got_mad.get(), "MadIO traffic must arrive");
        assert!(got_sys.get(), "SysIO traffic must arrive");
        let stats = na[1].stats();
        assert!(stats.madio_events >= 1);
        assert!(stats.sysio_events >= 1);
    }

    #[test]
    fn policy_is_tunable_per_node() {
        let (_world, na, _san, _lan, _nodes) = platform();
        na[0].set_policy(PollPolicy::favour_sysio(3));
        assert_eq!(na[0].policy().sysio_weight, 3);
        assert_eq!(na[1].policy().sysio_weight, 1, "other nodes unaffected");
    }

    #[test]
    fn netaccess_without_san_still_provides_sysio() {
        let mut p = topology::pair_over(5, NetworkSpec::ethernet_100());
        let na_a = NetAccess::new(&mut p.world, p.a, None);
        let na_b = NetAccess::new(&mut p.world, p.b, None);
        let got = Rc::new(Cell::new(false));
        let g = got.clone();
        let sys_b = na_b.sysio();
        let sys_b2 = sys_b.clone();
        sys_b.listen(1234, move |_w, conn| {
            let g = g.clone();
            let conn_rc: Rc<dyn ByteStream> = Rc::new(conn);
            sys_b2.watch(conn_rc, move |world, stream| {
                stream.recv(world, usize::MAX);
                g.set(true);
            });
        });
        let conn = na_a.sysio().connect(&mut p.world, p.network, p.b, 1234);
        conn.send_all(&mut p.world, b"lan only");
        p.world.run();
        assert!(got.get());
    }
}
