//! # netaccess — the PadicoTM arbitration layer
//!
//! `NetAccess` is the lowest layer of the PadicoTM model: the *only* client
//! of the raw networking resources of a node. It provides consistent,
//! reentrant, multiplexed, callback-based access to:
//!
//! * **MadIO** — parallel-oriented hardware reached through the Madeleine
//!   library, with logical multiplexing and *header combining* so that
//!   sharing the SAN between several middleware systems costs < 0.1 µs;
//! * **SysIO** — system sockets, watched by a single cooperative receipt
//!   loop (no signal-driven I/O, no competing busy-pollers);
//! * a **core dispatch loop** that interleaves the two with a
//!   user-tunable fairness policy.
//!
//! Everything above (the Circuit and VLink abstract interfaces, the
//! personalities, the middleware systems) only ever touches the network
//! through this crate.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod core;
pub mod madio;
#[allow(clippy::module_inception)]
mod netaccess;
pub mod sysio;

pub use crate::core::{NetAccessConfig, NetAccessCore, NetAccessStats, PollPolicy, Subsystem};
pub use crate::madio::{MadIO, MadIOMessage, MadIOTag, MadIoStats, MADIO_HEADER_BYTES};
pub use crate::netaccess::NetAccess;
pub use crate::sysio::{AcceptCallback, StreamCallback, SysIO, WatchId};
