//! MadIO: multiplexed access to parallel-oriented hardware.
//!
//! Madeleine exposes only as many channels as the hardware allows (two on
//! Myrinet-2000, one on SCI), which is not enough when several middleware
//! systems must share the SAN. MadIO adds logical multiplexing on top of a
//! single Madeleine channel: every module registers a *tag*, outgoing
//! messages carry the tag in a small header, and — thanks to *header
//! combining* — that header rides inside the same Madeleine message as the
//! payload, so multiplexing costs well under 0.1 µs.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use bytes::{Bytes, BytesMut};
use madeleine::{MadChannel, MadMessage, SendMode};
use simnet::{SimDuration, SimWorld};

use crate::core::{NetAccessCore, Subsystem};

/// Size of the MadIO multiplexing header, in bytes.
pub const MADIO_HEADER_BYTES: usize = 4;

/// A logical-channel tag identifying the module a message belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MadIOTag(pub u16);

impl MadIOTag {
    /// Tag used by the Circuit abstract interface.
    pub const CIRCUIT: MadIOTag = MadIOTag(1);
    /// Tag used by the VLink abstract interface.
    pub const VLINK: MadIOTag = MadIOTag(2);
    /// First tag available to user modules.
    pub const USER_BASE: MadIOTag = MadIOTag(100);

    /// The `n`-th user tag.
    pub fn user(n: u16) -> MadIOTag {
        MadIOTag(Self::USER_BASE.0 + n)
    }
}

/// A message delivered to a MadIO module.
#[derive(Debug, Clone)]
pub struct MadIOMessage {
    /// Rank of the sender in the underlying channel's group.
    pub src_rank: usize,
    /// Logical channel tag.
    pub tag: MadIOTag,
    /// Payload segments (the tag header has already been stripped).
    pub segments: Vec<Bytes>,
}

impl MadIOMessage {
    /// Total payload length.
    pub fn payload_len(&self) -> usize {
        self.segments.iter().map(|s| s.len()).sum()
    }

    /// Concatenated payload.
    pub fn concat(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(self.payload_len());
        for s in &self.segments {
            v.extend_from_slice(s);
        }
        v
    }
}

type MadIOCallback = Box<dyn FnMut(&mut SimWorld, MadIOMessage)>;

struct MadIOInner {
    core: NetAccessCore,
    channel: Option<MadChannel>,
    handlers: HashMap<MadIOTag, Rc<RefCell<MadIOCallback>>>,
    /// Messages whose tag had no handler yet, kept so late registrants do
    /// not lose traffic (bounded).
    stray: Vec<MadIOMessage>,
    /// Per-source pending tag header, used only when header combining is
    /// disabled (header and payload travel as two separate messages).
    pending_headers: HashMap<usize, MadIOTag>,
    messages_sent: u64,
    messages_received: u64,
}

/// Accounting of one MadIO instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MadIoStats {
    /// Tagged messages sent through this instance.
    pub messages_sent: u64,
    /// Tagged messages received and dispatched.
    pub messages_received: u64,
}

/// Multiplexed access to the parallel-oriented network of one node.
#[derive(Clone)]
pub struct MadIO {
    inner: Rc<RefCell<MadIOInner>>,
}

impl MadIO {
    pub(crate) fn new(core: NetAccessCore) -> MadIO {
        MadIO {
            inner: Rc::new(RefCell::new(MadIOInner {
                core,
                channel: None,
                handlers: HashMap::new(),
                stray: Vec::new(),
                pending_headers: HashMap::new(),
                messages_sent: 0,
                messages_received: 0,
            })),
        }
    }

    /// Binds MadIO to its Madeleine channel (the single hardware channel it
    /// multiplexes). All incoming messages of that channel are routed
    /// through the NetAccess dispatch loop.
    pub fn attach_channel(&self, world: &mut SimWorld, channel: MadChannel) {
        let node = {
            let mut inner = self.inner.borrow_mut();
            inner.channel = Some(channel.clone());
            inner.core.node()
        };
        let weak = Rc::downgrade(&self.inner);
        let node_label = node.0.to_string();
        world.metrics.register_collector(move |b| {
            let Some(inner) = weak.upgrade() else { return };
            let inner = inner.borrow();
            let labels: &[(&str, &str)] = &[("node", node_label.as_str())];
            b.counter("netaccess.madio.messages_sent", labels, inner.messages_sent);
            b.counter(
                "netaccess.madio.messages_received",
                labels,
                inner.messages_received,
            );
        });
        let this = self.clone();
        channel.set_message_callback(move |world, msg| {
            this.on_message(world, msg);
        });
    }

    /// The group of the attached channel (rank order).
    pub fn group(&self) -> Vec<simnet::NodeId> {
        self.inner
            .borrow()
            .channel
            .as_ref()
            .map(|c| c.group())
            .unwrap_or_default()
    }

    /// This node's rank in the attached channel.
    pub fn my_rank(&self) -> usize {
        self.inner
            .borrow()
            .channel
            .as_ref()
            .map(|c| c.my_rank())
            .unwrap_or(0)
    }

    /// Registers the handler for a logical tag. Any messages for this tag
    /// that arrived before registration are re-delivered immediately.
    pub fn register(
        &self,
        world: &mut SimWorld,
        tag: MadIOTag,
        cb: impl FnMut(&mut SimWorld, MadIOMessage) + 'static,
    ) {
        let strays = {
            let mut inner = self.inner.borrow_mut();
            inner
                .handlers
                .insert(tag, Rc::new(RefCell::new(Box::new(cb) as MadIOCallback)));
            let mut strays = Vec::new();
            let mut kept = Vec::new();
            for m in inner.stray.drain(..) {
                if m.tag == tag {
                    strays.push(m);
                } else {
                    kept.push(m);
                }
            }
            inner.stray = kept;
            strays
        };
        for m in strays {
            self.dispatch(world, m);
        }
    }

    /// Removes the handler for `tag`.
    pub fn unregister(&self, tag: MadIOTag) {
        self.inner.borrow_mut().handlers.remove(&tag);
    }

    /// Accounting snapshot of this MadIO instance.
    pub fn stats(&self) -> MadIoStats {
        let inner = self.inner.borrow();
        MadIoStats {
            messages_sent: inner.messages_sent,
            messages_received: inner.messages_received,
        }
    }

    /// Sends `segments` to `dst_rank` on logical channel `tag`.
    ///
    /// With header combining (the default), the 4-byte MadIO header is
    /// packed as the leading segment of the same Madeleine message. Without
    /// it, the header travels as its own Madeleine message, paying the full
    /// per-message overhead twice — the ablation the paper measures.
    pub fn send(
        &self,
        world: &mut SimWorld,
        dst_rank: usize,
        tag: MadIOTag,
        segments: Vec<(Bytes, SendMode)>,
    ) {
        let (channel, combining) = {
            let mut inner = self.inner.borrow_mut();
            inner.messages_sent += 1;
            (
                inner
                    .channel
                    .as_ref()
                    .cloned()
                    .expect("MadIO used before attach_channel"),
                inner.core.header_combining(),
            )
        };
        let mut header = BytesMut::with_capacity(MADIO_HEADER_BYTES);
        header.extend_from_slice(&tag.0.to_be_bytes());
        header.extend_from_slice(&(segments.len() as u16).to_be_bytes());

        if combining {
            let mut pk = channel
                .begin_packing(dst_rank)
                .expect("destination rank outside the channel group");
            // The 4-byte header is combined into the payload message and
            // sent straight from the MadIO-owned buffer (no copy).
            pk.pack(header.freeze(), SendMode::Cheaper);
            for (data, mode) in segments {
                pk.pack(data, mode);
            }
            pk.end_packing(world);
        } else {
            // Header as a separate message: costs a full extra message. The
            // header is packed as CHEAPER so the two messages keep their
            // send order (a SAFER copy would delay the header behind the
            // payload message).
            let mut pk = channel
                .begin_packing(dst_rank)
                .expect("destination rank outside the channel group");
            pk.pack(header.freeze(), SendMode::Cheaper);
            pk.end_packing(world);
            let mut pk = channel
                .begin_packing(dst_rank)
                .expect("destination rank outside the channel group");
            for (data, mode) in segments {
                pk.pack(data, mode);
            }
            pk.end_packing(world);
        }
    }

    /// Convenience for sending a single contiguous buffer.
    pub fn send_bytes(
        &self,
        world: &mut SimWorld,
        dst_rank: usize,
        tag: MadIOTag,
        data: impl Into<Bytes>,
    ) {
        self.send(world, dst_rank, tag, vec![(data.into(), SendMode::Cheaper)]);
    }

    fn on_message(&self, world: &mut SimWorld, msg: MadMessage) {
        let combining = self.inner.borrow().core.header_combining();
        if combining {
            // First segment is the MadIO header; the rest is payload.
            if msg.segments.is_empty() || msg.segments[0].data.len() < MADIO_HEADER_BYTES {
                return;
            }
            let tag = MadIOTag(u16::from_be_bytes(
                msg.segments[0].data[0..2].try_into().unwrap(),
            ));
            let payload = msg.segments[1..].iter().map(|s| s.data.clone()).collect();
            let m = MadIOMessage {
                src_rank: msg.src_rank,
                tag,
                segments: payload,
            };
            self.queue_dispatch(world, m);
        } else {
            // Without combining, headers and payloads alternate; keep the
            // pending header per source rank.
            let src = msg.src_rank;
            let is_header = {
                let inner = self.inner.borrow();
                msg.segments.len() == 1
                    && msg.segments[0].data.len() == MADIO_HEADER_BYTES
                    && !inner.pending_headers.contains_key(&src)
            };
            if is_header {
                let tag = MadIOTag(u16::from_be_bytes(
                    msg.segments[0].data[0..2].try_into().unwrap(),
                ));
                self.inner.borrow_mut().pending_headers.insert(src, tag);
                return;
            }
            let tag = self
                .inner
                .borrow_mut()
                .pending_headers
                .remove(&src)
                .unwrap_or(MadIOTag(0));
            let m = MadIOMessage {
                src_rank: src,
                tag,
                segments: msg.segments.iter().map(|s| s.data.clone()).collect(),
            };
            self.queue_dispatch(world, m);
        }
    }

    fn queue_dispatch(&self, world: &mut SimWorld, m: MadIOMessage) {
        {
            let mut inner = self.inner.borrow_mut();
            inner.messages_received += 1;
        }
        let core = self.inner.borrow().core.clone();
        let this = self.clone();
        core.enqueue(
            world,
            Subsystem::MadIO,
            Box::new(move |world| this.dispatch(world, m)),
        );
    }

    fn dispatch(&self, world: &mut SimWorld, m: MadIOMessage) {
        let handler = self.inner.borrow().handlers.get(&m.tag).cloned();
        match handler {
            Some(h) => (h.borrow_mut())(world, m),
            None => {
                let mut inner = self.inner.borrow_mut();
                if inner.stray.len() < 10_000 {
                    inner.stray.push(m);
                }
            }
        }
    }
}

/// Extra latency budgeted per message when header combining is disabled,
/// exposed for the overhead experiment's analytical comparison.
pub fn uncombined_header_penalty() -> SimDuration {
    // One extra Madeleine message: its send + receive software overheads.
    SimDuration::from_nanos(1_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::NetAccessConfig;
    use madeleine::Madeleine;
    use simnet::{topology, NetworkSpec};
    use std::cell::Cell;

    struct Setup {
        world: SimWorld,
        madio: Vec<MadIO>,
    }

    fn setup(n: usize) -> Setup {
        let mut world = SimWorld::new(9);
        let cluster = topology::build_san_cluster(&mut world, "n", n, NetworkSpec::myrinet_2000());
        let san = cluster.san.unwrap();
        let mut madio = Vec::new();
        for &node in &cluster.nodes {
            let mad = Madeleine::new(&mut world, node, san);
            let chan = mad.open_channel(cluster.nodes.clone()).unwrap();
            let core = NetAccessCore::new(node, NetAccessConfig::default());
            let io = MadIO::new(core);
            io.attach_channel(&mut world, chan);
            madio.push(io);
        }
        Setup { world, madio }
    }

    #[test]
    fn tagged_messages_reach_the_right_module() {
        let mut s = setup(2);
        let circuit_hits = Rc::new(Cell::new(0));
        let vlink_hits = Rc::new(Cell::new(0));
        let (c, v) = (circuit_hits.clone(), vlink_hits.clone());
        s.madio[1].register(&mut s.world, MadIOTag::CIRCUIT, move |_w, m| {
            assert_eq!(m.concat(), b"for circuit");
            c.set(c.get() + 1);
        });
        s.madio[1].register(&mut s.world, MadIOTag::VLINK, move |_w, m| {
            assert_eq!(m.concat(), b"for vlink");
            v.set(v.get() + 1);
        });
        s.madio[0].send_bytes(&mut s.world, 1, MadIOTag::CIRCUIT, &b"for circuit"[..]);
        s.madio[0].send_bytes(&mut s.world, 1, MadIOTag::VLINK, &b"for vlink"[..]);
        s.world.run();
        assert_eq!(circuit_hits.get(), 1);
        assert_eq!(vlink_hits.get(), 1);
    }

    #[test]
    fn messages_before_registration_are_not_lost() {
        let mut s = setup(2);
        s.madio[0].send_bytes(&mut s.world, 1, MadIOTag::user(3), &b"early"[..]);
        s.world.run();
        let got = Rc::new(Cell::new(false));
        let g = got.clone();
        s.madio[1].register(&mut s.world, MadIOTag::user(3), move |_w, m| {
            assert_eq!(m.concat(), b"early");
            g.set(true);
        });
        s.world.run();
        assert!(got.get());
    }

    #[test]
    fn multi_segment_send_preserves_boundaries() {
        let mut s = setup(2);
        let got = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        s.madio[1].register(&mut s.world, MadIOTag::user(0), move |_w, m| {
            *g.borrow_mut() = m.segments.iter().map(|b| b.len()).collect();
        });
        s.madio[0].send(
            &mut s.world,
            1,
            MadIOTag::user(0),
            vec![
                (Bytes::from_static(b"abc"), SendMode::Safer),
                (Bytes::from_static(b"defgh"), SendMode::Cheaper),
            ],
        );
        s.world.run();
        assert_eq!(*got.borrow(), vec![3, 5]);
    }

    #[test]
    fn header_combining_overhead_is_under_100ns() {
        // Compare MadIO latency against raw Madeleine latency on the same
        // topology: the difference must stay below 0.1 µs plus the dispatch
        // overhead budget, as the paper claims.
        let raw_latency = {
            let mut world = SimWorld::new(9);
            let cluster =
                topology::build_san_cluster(&mut world, "n", 2, NetworkSpec::myrinet_2000());
            let san = cluster.san.unwrap();
            let m0 = Madeleine::new(&mut world, cluster.nodes[0], san);
            let m1 = Madeleine::new(&mut world, cluster.nodes[1], san);
            let c0 = m0.open_channel(cluster.nodes.clone()).unwrap();
            let c1 = m1.open_channel(cluster.nodes.clone()).unwrap();
            let at = Rc::new(Cell::new(0.0));
            let a = at.clone();
            c1.set_message_callback(move |w, _| a.set(w.now().as_micros_f64()));
            let mut pk = c0.begin_packing(1).unwrap();
            pk.pack(vec![0u8; 16], SendMode::Cheaper);
            pk.end_packing(&mut world);
            world.run();
            at.get()
        };
        let madio_latency = {
            let mut s = setup(2);
            let at = Rc::new(Cell::new(0.0));
            let a = at.clone();
            s.madio[1].register(&mut s.world, MadIOTag::user(0), move |w, _| {
                a.set(w.now().as_micros_f64())
            });
            s.madio[0].send_bytes(&mut s.world, 1, MadIOTag::user(0), vec![0u8; 16]);
            s.world.run();
            at.get()
        };
        let overhead = madio_latency - raw_latency;
        assert!(
            overhead < 0.25,
            "MadIO adds {overhead:.3} µs over raw Madeleine (want < 0.25 µs incl. header bytes)"
        );
        assert!(overhead >= 0.0);
    }

    #[test]
    fn disabling_header_combining_costs_more() {
        let latency = |combining: bool| {
            let mut s = setup(2);
            for io in &s.madio {
                io.inner.borrow().core.set_header_combining(combining);
            }
            let at = Rc::new(Cell::new(0.0));
            let a = at.clone();
            s.madio[1].register(&mut s.world, MadIOTag::user(0), move |w, _| {
                a.set(w.now().as_micros_f64())
            });
            s.madio[0].send_bytes(&mut s.world, 1, MadIOTag::user(0), vec![0u8; 16]);
            s.world.run();
            at.get()
        };
        let with = latency(true);
        let without = latency(false);
        assert!(
            without > with + 0.3,
            "separate headers ({without:.2} µs) must cost clearly more than combining ({with:.2} µs)"
        );
    }
}
