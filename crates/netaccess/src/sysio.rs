//! SysIO: cooperative, callback-based access to system sockets.
//!
//! The paper's observation is that using the raw socket API from several
//! middleware systems at once breaks: signal-driven I/O is not reentrant,
//! and one active poller starves everyone else. SysIO therefore owns a
//! single receipt loop that watches every registered stream and invokes
//! user callbacks when data is ready — all socket readiness flows through
//! the NetAccess dispatch loop, so fairness with MadIO is enforced in one
//! place.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use simnet::{NetworkId, NodeId, SimWorld};
use transport::{ByteStream, TcpConn, TcpStack};

use crate::core::{NetAccessCore, Subsystem};

/// Identifier of a watched stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WatchId(pub u64);

/// Callback invoked when a watched stream becomes readable. The stream is
/// passed back so the callback can read from it without capturing it.
pub type StreamCallback = Box<dyn FnMut(&mut SimWorld, &Rc<dyn ByteStream>)>;

/// Callback invoked when a watched listener accepts a connection.
pub type AcceptCallback = Box<dyn FnMut(&mut SimWorld, TcpConn)>;

struct WatchEntry {
    stream: Rc<dyn ByteStream>,
    callback: Rc<RefCell<StreamCallback>>,
}

struct SysIOInner {
    core: NetAccessCore,
    node: NodeId,
    tcp: TcpStack,
    watches: HashMap<WatchId, WatchEntry>,
    next_watch: u64,
    events_dispatched: u64,
}

/// Cooperative socket access for one node.
#[derive(Clone)]
pub struct SysIO {
    inner: Rc<RefCell<SysIOInner>>,
}

impl SysIO {
    pub(crate) fn new(world: &mut SimWorld, core: NetAccessCore, node: NodeId) -> SysIO {
        let tcp = TcpStack::new(world, node);
        SysIO {
            inner: Rc::new(RefCell::new(SysIOInner {
                core,
                node,
                tcp,
                watches: HashMap::new(),
                next_watch: 0,
                events_dispatched: 0,
            })),
        }
    }

    /// The node this SysIO instance serves.
    pub fn node(&self) -> NodeId {
        self.inner.borrow().node
    }

    /// The TCP stack owned by this SysIO (the arbitration layer is the only
    /// client of the system-level resources, so every TCP connection of the
    /// node goes through here).
    pub fn tcp(&self) -> TcpStack {
        self.inner.borrow().tcp.clone()
    }

    /// Number of readiness events dispatched so far.
    pub fn events_dispatched(&self) -> u64 {
        self.inner.borrow().events_dispatched
    }

    /// Opens a TCP connection through the arbitrated stack.
    pub fn connect(
        &self,
        world: &mut SimWorld,
        network: NetworkId,
        remote_node: NodeId,
        remote_port: u16,
    ) -> TcpConn {
        let tcp = self.tcp();
        tcp.connect(world, network, remote_node, remote_port)
    }

    /// Starts listening on `port`; accepted connections are delivered
    /// through the NetAccess dispatch loop.
    pub fn listen(
        &self,
        port: u16,
        on_accept: impl FnMut(&mut SimWorld, TcpConn) + 'static,
    ) -> bool {
        let core = self.inner.borrow().core.clone();
        let on_accept: Rc<RefCell<AcceptCallback>> = Rc::new(RefCell::new(Box::new(on_accept)));
        self.tcp().listen(port, move |world, conn| {
            let on_accept = on_accept.clone();
            // Route the accept through the fair dispatch loop.
            core.enqueue(
                world,
                Subsystem::SysIO,
                Box::new(move |world| {
                    (on_accept.borrow_mut())(world, conn.clone());
                    // Data that arrived between the TCP-level accept and
                    // this deferred dispatch predates the readable callback
                    // the application just installed; re-announce it.
                    conn.announce_readable(world);
                }),
            );
        })
    }

    /// Watches a stream: `callback` runs (through the fair dispatch loop)
    /// every time the stream has new readable data.
    pub fn watch(
        &self,
        stream: Rc<dyn ByteStream>,
        callback: impl FnMut(&mut SimWorld, &Rc<dyn ByteStream>) + 'static,
    ) -> WatchId {
        let id = {
            let mut inner = self.inner.borrow_mut();
            let id = WatchId(inner.next_watch);
            inner.next_watch += 1;
            inner.watches.insert(
                id,
                WatchEntry {
                    stream: stream.clone(),
                    callback: Rc::new(RefCell::new(Box::new(callback))),
                },
            );
            id
        };
        // Hook the stream's readability into the dispatch loop.
        let sysio = self.clone();
        stream.set_readable_callback(Box::new(move |world| {
            sysio.on_readable(world, id);
        }));
        id
    }

    /// Stops watching a stream.
    pub fn unwatch(&self, id: WatchId) {
        self.inner.borrow_mut().watches.remove(&id);
    }

    fn on_readable(&self, world: &mut SimWorld, id: WatchId) {
        let core = self.inner.borrow().core.clone();
        let sysio = self.clone();
        core.enqueue(
            world,
            Subsystem::SysIO,
            Box::new(move |world| {
                let entry = {
                    let mut inner = sysio.inner.borrow_mut();
                    inner.events_dispatched += 1;
                    inner
                        .watches
                        .get(&id)
                        .map(|e| (e.stream.clone(), e.callback.clone()))
                };
                if let Some((stream, callback)) = entry {
                    (callback.borrow_mut())(world, &stream);
                }
            }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::NetAccessConfig;
    use simnet::{topology, NetworkSpec};
    use std::cell::Cell;
    use transport::ByteStreamExt;

    fn setup() -> (SimWorld, SysIO, SysIO, simnet::NetworkId, NodeId, NodeId) {
        let mut p = topology::pair_over(31, NetworkSpec::ethernet_100());
        let core_a = NetAccessCore::new(p.a, NetAccessConfig::default());
        let core_b = NetAccessCore::new(p.b, NetAccessConfig::default());
        let sys_a = SysIO::new(&mut p.world, core_a, p.a);
        let sys_b = SysIO::new(&mut p.world, core_b, p.b);
        (p.world, sys_a, sys_b, p.network, p.a, p.b)
    }

    #[test]
    fn connect_listen_and_watch_roundtrip() {
        let (mut world, sys_a, sys_b, net, _a, b) = setup();
        let received = Rc::new(RefCell::new(Vec::new()));
        let r = received.clone();
        sys_b_clone_listen(&sys_b, r);
        fn sys_b_clone_listen(sys_b: &SysIO, r: Rc<RefCell<Vec<u8>>>) {
            let sysio = sys_b.clone();
            sys_b.listen(80, move |_world, conn| {
                let conn_rc: Rc<dyn ByteStream> = Rc::new(conn);
                let r = r.clone();
                sysio.watch(conn_rc, move |world, stream| {
                    r.borrow_mut().extend(stream.recv(world, usize::MAX));
                });
            });
        }
        let client = sys_a.connect(&mut world, net, b, 80);
        client.send_all(&mut world, b"through the arbitration layer");
        world.run();
        assert_eq!(*received.borrow(), b"through the arbitration layer");
        assert!(sys_b.events_dispatched() >= 1);
    }

    #[test]
    fn unwatch_stops_callbacks() {
        let (mut world, sys_a, sys_b, net, _a, b) = setup();
        let hits = Rc::new(Cell::new(0u32));
        let h = hits.clone();
        let watch_id: Rc<RefCell<Option<WatchId>>> = Rc::new(RefCell::new(None));
        let wid = watch_id.clone();
        let sysio = sys_b.clone();
        sys_b.listen(81, move |_world, conn| {
            let conn_rc: Rc<dyn ByteStream> = Rc::new(conn);
            let h = h.clone();
            let id = sysio.watch(conn_rc, move |world, stream| {
                stream.recv(world, usize::MAX);
                h.set(h.get() + 1);
            });
            *wid.borrow_mut() = Some(id);
        });
        let client = sys_a.connect(&mut world, net, b, 81);
        client.send_all(&mut world, b"first");
        world.run();
        let first_hits = hits.get();
        assert!(first_hits >= 1);
        sys_b.unwatch(watch_id.borrow().unwrap());
        client.send_all(&mut world, b"second");
        world.run();
        assert_eq!(hits.get(), first_hits, "no callbacks after unwatch");
    }

    #[test]
    fn two_middleware_systems_share_one_node_without_interfering() {
        // Two independent listeners ("two middleware systems") on the same
        // SysIO: each only sees its own traffic.
        let (mut world, sys_a, sys_b, net, _a, b) = setup();
        let mw1 = Rc::new(RefCell::new(Vec::new()));
        let mw2 = Rc::new(RefCell::new(Vec::new()));
        for (port, sink) in [(9001u16, mw1.clone()), (9002u16, mw2.clone())] {
            let sysio = sys_b.clone();
            sys_b.listen(port, move |_world, conn| {
                let conn_rc: Rc<dyn ByteStream> = Rc::new(conn);
                let sink = sink.clone();
                sysio.watch(conn_rc, move |world, stream| {
                    sink.borrow_mut().extend(stream.recv(world, usize::MAX));
                });
            });
        }
        let c1 = sys_a.connect(&mut world, net, b, 9001);
        let c2 = sys_a.connect(&mut world, net, b, 9002);
        c1.send_all(&mut world, b"corba traffic");
        c2.send_all(&mut world, b"soap traffic");
        world.run();
        assert_eq!(*mw1.borrow(), b"corba traffic");
        assert_eq!(*mw2.borrow(), b"soap traffic");
    }
}
