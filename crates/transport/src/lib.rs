//! # transport — distributed-oriented protocols over the simulated network
//!
//! This crate provides the "system level" of the distributed world in
//! PadicoTM-RS terms: the protocols a grid node reaches through its IP
//! stack, plus the alternate communication methods the paper layers on top
//! of them.
//!
//! * [`tcp`] — simulated TCP (reliable stream, Reno-style congestion
//!   control). The baseline for every distributed middleware system.
//! * [`datagram`] — unreliable datagrams (UDP-like).
//! * [`vrp`] — the Variable Reliability Protocol: a tunable loss-tolerant
//!   transport for lossy WANs.
//! * [`parallel`] — Parallel Streams: stripes one logical stream over
//!   several TCP connections to ride out isolated WAN losses (à la
//!   GridFTP).
//! * [`adoc`] — AdOC-style adaptive online compression over a stream.
//! * [`secure`] — an authentication/encryption wrapper modelling a
//!   GSI/IPsec-like adapter (cost model only, not real cryptography).
//! * [`compress`] — the LZSS codec used by AdOC.
//! * [`framed`] — the generic block-transform engine behind AdOC/secure.
//! * [`loopback`] — an in-memory stream pair for intra-node links.
//! * [`stream`] — the [`stream::ByteStream`] trait all of these implement.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adoc;
pub mod compress;
pub mod datagram;
pub mod framed;
pub mod loopback;
pub mod parallel;
pub mod secure;
pub mod segbuf;
pub mod stream;
pub mod tcp;
pub mod vrp;
pub mod wire;

pub use adoc::{adoc_over, AdocConfig, AdocStream};
pub use datagram::{Datagram, UdpError, UdpHost};
pub use framed::{BlockTransform, TransformStats, TransformStream};
pub use loopback::{loopback_pair, LoopbackStream};
pub use parallel::{ParallelStream, ParallelStreamConfig};
pub use secure::{secure_over, SecureConfig, SecureStream};
pub use segbuf::SegBuf;
pub use stream::{ByteStream, ByteStreamExt, ReadableCallback};
pub use tcp::{TcpConfig, TcpConn, TcpConnStats, TcpStack};
pub use vrp::{VrpConfig, VrpMessage, VrpReceiver, VrpSender, VrpTransferStats};
