//! Security adapter: authentication + encryption over a stream.
//!
//! The paper notes that cross-site links usually need authentication and
//! encryption (GSI or IPsec) while intra-site links do not ("if the network
//! is secure, it is useless to cipher data"). This module models that
//! adapter: data is "ciphered" with a toy stream cipher and protected by a
//! toy MAC so that tampering is detectable in tests, and the CPU cost of a
//! 2003-era cipher is charged in virtual time.
//!
//! **This is NOT real cryptography** — it exists to reproduce the cost and
//! layering structure of a security adapter, not to protect data.

use simnet::{SimDuration, SimWorld};

use crate::framed::{BlockTransform, EncodedBlock, TransformCtx, TransformError, TransformStream};
use crate::stream::ByteStream;

/// Size of the MAC appended to every block.
const MAC_BYTES: usize = 8;

const FLAG_CIPHERED: u8 = 1;

/// Configuration of the security adapter.
#[derive(Debug, Clone)]
pub struct SecureConfig {
    /// Pre-shared key (both ends must agree).
    pub key: u64,
    /// Application bytes per block.
    pub block_size: usize,
    /// Cipher throughput used for the virtual CPU cost (bytes/s). The
    /// default corresponds to a software cipher on a Pentium III.
    pub cipher_bytes_per_sec: f64,
}

impl Default for SecureConfig {
    fn default() -> Self {
        SecureConfig {
            key: 0x5AD1_C07A_DEAD_BEEF,
            block_size: 16 * 1024,
            cipher_bytes_per_sec: 45.0e6,
        }
    }
}

/// The block transform implementing the toy cipher + MAC.
pub struct SecureTransform {
    config: SecureConfig,
    send_counter: u64,
    recv_counter: u64,
}

fn keystream_byte(key: u64, counter: u64, index: usize) -> u8 {
    // A splitmix-style mixer: deterministic, fast, obviously not secure.
    let mut z = key
        ^ counter.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (index as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) as u8
}

fn mac(key: u64, counter: u64, data: &[u8]) -> [u8; MAC_BYTES] {
    // FNV-1a over key || counter || data.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key
        .to_be_bytes()
        .iter()
        .chain(counter.to_be_bytes().iter())
        .chain(data.iter())
    {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h.to_be_bytes()
}

impl BlockTransform for SecureTransform {
    fn name(&self) -> &'static str {
        "secure"
    }

    fn encode(&mut self, input: &[u8], _ctx: &TransformCtx) -> EncodedBlock {
        let counter = self.send_counter;
        self.send_counter += 1;
        let mut data: Vec<u8> = input
            .iter()
            .enumerate()
            .map(|(i, b)| b ^ keystream_byte(self.config.key, counter, i))
            .collect();
        let tag = mac(self.config.key, counter, &data);
        data.extend_from_slice(&tag);
        EncodedBlock {
            flag: FLAG_CIPHERED,
            data,
        }
    }

    fn decode(&mut self, flag: u8, data: &[u8]) -> Result<Vec<u8>, TransformError> {
        if flag != FLAG_CIPHERED {
            return Err(TransformError("unexpected security flag"));
        }
        if data.len() < MAC_BYTES {
            return Err(TransformError("block too short for MAC"));
        }
        let counter = self.recv_counter;
        self.recv_counter += 1;
        let (body, tag) = data.split_at(data.len() - MAC_BYTES);
        if mac(self.config.key, counter, body) != tag {
            return Err(TransformError("MAC verification failed"));
        }
        Ok(body
            .iter()
            .enumerate()
            .map(|(i, b)| b ^ keystream_byte(self.config.key, counter, i))
            .collect())
    }

    fn encode_cost(&self, input_len: usize, _output_len: usize, _flag: u8) -> SimDuration {
        SimDuration::for_transfer(input_len as u64, self.config.cipher_bytes_per_sec)
    }

    fn decode_cost(&self, wire_len: usize, _output_len: usize, _flag: u8) -> SimDuration {
        SimDuration::for_transfer(wire_len as u64, self.config.cipher_bytes_per_sec)
    }
}

/// A secure (ciphered + authenticated) stream over any inner stream.
pub type SecureStream = TransformStream<SecureTransform>;

/// Wraps `inner` with the security adapter.
pub fn secure_over(
    world: &mut SimWorld,
    inner: Box<dyn ByteStream>,
    config: SecureConfig,
) -> SecureStream {
    let block = config.block_size;
    TransformStream::new(
        world,
        inner,
        SecureTransform {
            config,
            send_counter: 0,
            recv_counter: 0,
        },
        block,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopback::loopback_pair;
    use crate::stream::ByteStreamExt;

    #[test]
    fn secure_roundtrip() {
        let mut world = SimWorld::new(0);
        let n = world.add_node("n");
        let (a, b) = loopback_pair(&world, n);
        let cfg = SecureConfig::default();
        let sa = secure_over(&mut world, Box::new(a), cfg.clone());
        let sb = secure_over(&mut world, Box::new(b), cfg);
        let data: Vec<u8> = (0..50_000u32).map(|i| (i % 256) as u8).collect();
        sa.send_all(&mut world, &data);
        world.run();
        assert_eq!(sb.recv_all(&mut world), data);
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let mut t = SecureTransform {
            config: SecureConfig::default(),
            send_counter: 0,
            recv_counter: 0,
        };
        let ctx = TransformCtx {
            inner_backlog: 0,
            now: simnet::SimTime::ZERO,
        };
        let plain = b"attack at dawn, through the Myrinet switch";
        let block = t.encode(plain, &ctx);
        assert_ne!(&block.data[..plain.len()], plain.as_slice());
        // Two encodings of the same plaintext differ (counter-based keystream).
        let block2 = t.encode(plain, &ctx);
        assert_ne!(block.data, block2.data);
    }

    #[test]
    fn tampering_is_detected() {
        let mut sender = SecureTransform {
            config: SecureConfig::default(),
            send_counter: 0,
            recv_counter: 0,
        };
        let mut receiver = SecureTransform {
            config: SecureConfig::default(),
            send_counter: 0,
            recv_counter: 0,
        };
        let ctx = TransformCtx {
            inner_backlog: 0,
            now: simnet::SimTime::ZERO,
        };
        let mut block = sender.encode(b"important data", &ctx);
        block.data[3] ^= 0xFF;
        assert!(receiver.decode(block.flag, &block.data).is_err());
    }

    #[test]
    fn wrong_key_fails_mac() {
        let mut sender = SecureTransform {
            config: SecureConfig::default(),
            send_counter: 0,
            recv_counter: 0,
        };
        let mut receiver = SecureTransform {
            config: SecureConfig {
                key: 1234,
                ..Default::default()
            },
            send_counter: 0,
            recv_counter: 0,
        };
        let ctx = TransformCtx {
            inner_backlog: 0,
            now: simnet::SimTime::ZERO,
        };
        let block = sender.encode(b"hello", &ctx);
        assert!(receiver.decode(block.flag, &block.data).is_err());
    }

    #[test]
    fn cipher_cost_is_charged() {
        let mut world = SimWorld::new(0);
        let n = world.add_node("n");
        let (a, b) = loopback_pair(&world, n);
        let cfg = SecureConfig::default();
        let sa = secure_over(&mut world, Box::new(a), cfg.clone());
        let _sb = secure_over(&mut world, Box::new(b), cfg);
        sa.send_all(&mut world, &vec![0u8; 4_500_000]);
        world.run();
        // 4.5 MB at 45 MB/s is at least 100 ms of cipher time on the sender.
        assert!(world.now().as_millis_f64() >= 100.0);
    }
}
