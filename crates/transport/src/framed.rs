//! A generic "transform stream": blocks of application data are encoded
//! (compressed, ciphered, …), framed, sent over an inner [`ByteStream`],
//! and decoded on the other side, with the CPU cost of the transform
//! charged in virtual time.
//!
//! Both the AdOC compression adapter and the security adapter are
//! instances of this engine with different [`BlockTransform`]s.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use simnet::{SimDuration, SimTime, SimWorld};

use crate::segbuf::SegBuf;
use crate::stream::{ByteStream, ReadableCallback};

/// Size of the per-block frame header: 1 flag byte + 4-byte encoded length
/// + 4-byte original length.
pub const BLOCK_HEADER_BYTES: usize = 9;

/// Result of encoding one block.
#[derive(Debug, Clone)]
pub struct EncodedBlock {
    /// Transform-specific flag stored in the frame header (e.g.
    /// "compressed" vs "raw").
    pub flag: u8,
    /// Encoded bytes.
    pub data: Vec<u8>,
}

/// Context available to the encoder when it decides how to encode a block.
#[derive(Debug, Clone, Copy)]
pub struct TransformCtx {
    /// Bytes already queued in the inner stream but not yet acknowledged:
    /// a large backlog means the network is the bottleneck.
    pub inner_backlog: u64,
    /// Current virtual time.
    pub now: SimTime,
}

/// Error produced when decoding a block fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransformError(pub &'static str);

impl std::fmt::Display for TransformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "transform error: {}", self.0)
    }
}
impl std::error::Error for TransformError {}

/// A per-block data transform with an associated CPU cost model.
pub trait BlockTransform {
    /// Short name used in traces and errors.
    fn name(&self) -> &'static str;
    /// Encodes one block of application data.
    fn encode(&mut self, input: &[u8], ctx: &TransformCtx) -> EncodedBlock;
    /// Decodes one block given the flag stored at encode time.
    fn decode(&mut self, flag: u8, data: &[u8]) -> Result<Vec<u8>, TransformError>;
    /// Virtual CPU time needed to encode a block.
    fn encode_cost(&self, input_len: usize, output_len: usize, flag: u8) -> SimDuration;
    /// Virtual CPU time needed to decode a block.
    fn decode_cost(&self, wire_len: usize, output_len: usize, flag: u8) -> SimDuration;
}

/// Counters exposed by a transform stream.
#[derive(Debug, Clone, Copy, Default)]
pub struct TransformStats {
    /// Application bytes accepted for sending.
    pub app_bytes_sent: u64,
    /// Encoded bytes pushed into the inner stream (header bytes included).
    pub wire_bytes_sent: u64,
    /// Application bytes delivered to the receiver.
    pub app_bytes_received: u64,
    /// Blocks encoded.
    pub blocks_encoded: u64,
    /// Blocks whose flag was non-zero (e.g. actually compressed/ciphered).
    pub blocks_transformed: u64,
}

impl TransformStats {
    /// Ratio of application bytes to wire bytes (>1 means the transform
    /// saved bandwidth).
    pub fn effective_ratio(&self) -> f64 {
        if self.wire_bytes_sent == 0 {
            1.0
        } else {
            self.app_bytes_sent as f64 / self.wire_bytes_sent as f64
        }
    }
}

struct Inner<T: BlockTransform> {
    transform: T,
    inner: Box<dyn ByteStream>,
    block_size: usize,
    // Send side.
    pending_send: SegBuf,
    send_cpu_free: SimTime,
    flush_on_empty: bool,
    encode_scheduled: bool,
    // Receive side.
    rx_partial: SegBuf,
    recv_buf: SegBuf,
    recv_cpu_free: SimTime,
    readable_cb: Option<ReadableCallback>,
    notify_pending: bool,
    stats: TransformStats,
}

/// A [`ByteStream`] that applies a [`BlockTransform`] to data flowing over
/// an inner stream.
pub struct TransformStream<T: BlockTransform + 'static> {
    inner: Rc<RefCell<Inner<T>>>,
}

impl<T: BlockTransform + 'static> Clone for TransformStream<T> {
    fn clone(&self) -> Self {
        TransformStream {
            inner: self.inner.clone(),
        }
    }
}

impl<T: BlockTransform + 'static> TransformStream<T> {
    /// Wraps `inner` with the given transform. `block_size` is the amount
    /// of application data encoded per block.
    pub fn new(
        #[allow(unused_variables)] world: &mut SimWorld,
        inner: Box<dyn ByteStream>,
        transform: T,
        block_size: usize,
    ) -> TransformStream<T> {
        assert!(block_size > 0);
        let ts = TransformStream {
            inner: Rc::new(RefCell::new(Inner {
                transform,
                inner,
                block_size,
                pending_send: SegBuf::new(),
                send_cpu_free: SimTime::ZERO,
                flush_on_empty: false,
                encode_scheduled: false,
                rx_partial: SegBuf::new(),
                recv_buf: SegBuf::new(),
                recv_cpu_free: SimTime::ZERO,
                readable_cb: None,
                notify_pending: false,
                stats: TransformStats::default(),
            })),
        };
        // Hook the inner stream's readability into our decoder.
        let weak = Rc::downgrade(&ts.inner);
        ts.inner
            .borrow()
            .inner
            .set_readable_callback(Box::new(move |world| {
                if let Some(rc) = weak.upgrade() {
                    TransformStream { inner: rc }.on_inner_readable(world);
                }
            }));
        ts
    }

    /// Current statistics.
    pub fn stats(&self) -> TransformStats {
        self.inner.borrow().stats
    }

    // -------------------------------------------------------------- //
    // Send path
    // -------------------------------------------------------------- //

    fn schedule_encode(&self, world: &mut SimWorld) {
        let (should, at) = {
            let mut st = self.inner.borrow_mut();
            let have_block = st.pending_send.len() >= st.block_size
                || (st.flush_on_empty && !st.pending_send.is_empty());
            if have_block && !st.encode_scheduled {
                st.encode_scheduled = true;
                (true, st.send_cpu_free.max(world.now()))
            } else {
                (false, SimTime::ZERO)
            }
        };
        if should {
            let this = self.clone();
            world.schedule_at(at, move |world| this.encode_one(world));
        }
    }

    fn encode_one(&self, world: &mut SimWorld) {
        let (header, body) = {
            let mut st = self.inner.borrow_mut();
            st.encode_scheduled = false;
            let take = st.block_size.min(st.pending_send.len());
            if take == 0 {
                return;
            }
            let block = st.pending_send.read_bytes(take);
            let ctx = TransformCtx {
                inner_backlog: st.inner.bytes_unacked(),
                now: world.now(),
            };
            let encoded = st.transform.encode(&block, &ctx);
            let cost = st
                .transform
                .encode_cost(block.len(), encoded.data.len(), encoded.flag);
            st.send_cpu_free = world.now().max(st.send_cpu_free) + cost;
            st.stats.blocks_encoded += 1;
            if encoded.flag != 0 {
                st.stats.blocks_transformed += 1;
            }
            st.stats.wire_bytes_sent += (encoded.data.len() + BLOCK_HEADER_BYTES) as u64;
            let mut header = Vec::with_capacity(BLOCK_HEADER_BYTES);
            header.push(encoded.flag);
            header.extend_from_slice(&(encoded.data.len() as u32).to_be_bytes());
            header.extend_from_slice(&(block.len() as u32).to_be_bytes());
            // The encoded block moves into a refcounted chunk (no copy)
            // and is pushed separately from the header.
            (Bytes::from(header), Bytes::from(encoded.data))
        };
        // Push after the CPU cost has elapsed so the wire sees the block
        // only once it has actually been produced.
        let this = self.clone();
        let at = self.inner.borrow().send_cpu_free;
        world.schedule_at(at, move |world| {
            {
                let st = this.inner.borrow_mut();
                let body_len = body.len();
                let pushed = st.inner.send_bytes_vectored(world, vec![header, body]);
                debug_assert_eq!(
                    pushed,
                    BLOCK_HEADER_BYTES + body_len,
                    "inner stream refused framed data"
                );
            }
            this.schedule_encode(world);
        });
        // If more than one block is already waiting, keep the pipeline full.
        self.schedule_encode(world);
    }

    // -------------------------------------------------------------- //
    // Receive path
    // -------------------------------------------------------------- //

    fn on_inner_readable(&self, world: &mut SimWorld) {
        // Pull everything the inner stream has and decode complete blocks.
        let chunks = {
            let mut st = self.inner.borrow_mut();
            loop {
                let data = st.inner.recv_bytes(world, usize::MAX);
                if data.is_empty() {
                    break;
                }
                st.rx_partial.push_bytes(data);
            }
            let mut ready = Vec::new();
            loop {
                let mut header = [0u8; BLOCK_HEADER_BYTES];
                if st.rx_partial.copy_peek(&mut header) < BLOCK_HEADER_BYTES {
                    break;
                }
                let flag = header[0];
                let enc_len = u32::from_be_bytes(header[1..5].try_into().unwrap()) as usize;
                let orig_len = u32::from_be_bytes(header[5..9].try_into().unwrap()) as usize;
                if st.rx_partial.len() < BLOCK_HEADER_BYTES + enc_len {
                    break;
                }
                st.rx_partial.consume(BLOCK_HEADER_BYTES);
                // Zero-copy when the whole block arrived in one segment.
                let body = st.rx_partial.read_bytes(enc_len);
                ready.push((flag, orig_len, body));
            }
            ready
        };
        for (flag, orig_len, body) in chunks {
            let (decoded, deliver_at) = {
                let mut st = self.inner.borrow_mut();
                let decoded = st
                    .transform
                    .decode(flag, &body)
                    .unwrap_or_else(|e| panic!("{} decode failed: {e}", st.transform.name()));
                debug_assert_eq!(decoded.len(), orig_len, "length header mismatch");
                let cost = st.transform.decode_cost(body.len(), decoded.len(), flag);
                let at = world.now().max(st.recv_cpu_free) + cost;
                st.recv_cpu_free = at;
                (decoded, at)
            };
            let this = self.clone();
            world.schedule_at(deliver_at, move |world| {
                {
                    let mut st = this.inner.borrow_mut();
                    st.stats.app_bytes_received += decoded.len() as u64;
                    // The decoded block moves in as one chunk (no copy).
                    st.recv_buf.push_bytes(Bytes::from(decoded));
                }
                this.schedule_notify(world);
            });
        }
    }

    fn schedule_notify(&self, world: &mut SimWorld) {
        let should = {
            let mut st = self.inner.borrow_mut();
            if st.readable_cb.is_some() && !st.notify_pending {
                st.notify_pending = true;
                true
            } else {
                false
            }
        };
        if should {
            let this = self.clone();
            world.schedule_after(SimDuration::ZERO, move |world| {
                let cb = {
                    let mut st = this.inner.borrow_mut();
                    st.notify_pending = false;
                    st.readable_cb.take()
                };
                if let Some(mut cb) = cb {
                    cb(world);
                    let mut st = this.inner.borrow_mut();
                    if st.readable_cb.is_none() {
                        st.readable_cb = Some(cb);
                    }
                }
            });
        }
    }
}

impl<T: BlockTransform + 'static> TransformStream<T> {
    fn queue_send(&self, world: &mut SimWorld, data: Bytes) -> usize {
        let len = data.len();
        {
            let mut st = self.inner.borrow_mut();
            st.pending_send.push_bytes(data);
            st.stats.app_bytes_sent += len as u64;
            // Transform streams buffer full blocks; partial trailing data is
            // flushed on close or as soon as a full block accumulates. To
            // keep latency bounded for small writes we always flush what we
            // have.
            st.flush_on_empty = true;
        }
        self.schedule_encode(world);
        len
    }
}

impl<T: BlockTransform + 'static> ByteStream for TransformStream<T> {
    fn send(&self, world: &mut SimWorld, data: &[u8]) -> usize {
        self.queue_send(world, Bytes::copy_from_slice(data))
    }

    fn send_bytes(&self, world: &mut SimWorld, data: Bytes) -> usize {
        self.queue_send(world, data)
    }

    fn available(&self) -> usize {
        self.inner.borrow().recv_buf.len()
    }

    fn recv(&self, _world: &mut SimWorld, max: usize) -> Vec<u8> {
        if max == 0 || self.available() == 0 {
            return Vec::new();
        }
        self.inner.borrow_mut().recv_buf.read_into(max)
    }

    fn recv_bytes(&self, _world: &mut SimWorld, max: usize) -> Bytes {
        self.inner.borrow_mut().recv_buf.pop_chunk(max)
    }

    fn is_established(&self) -> bool {
        self.inner.borrow().inner.is_established()
    }

    fn is_finished(&self) -> bool {
        let st = self.inner.borrow();
        st.inner.is_finished() && st.recv_buf.is_empty() && st.rx_partial.is_empty()
    }

    fn close(&self, world: &mut SimWorld) {
        self.schedule_encode(world);
        // Close the inner stream only after every pending block has been
        // pushed; the push events are ordered, so schedule the close after
        // the current CPU-free horizon.
        let this = self.clone();
        let at = self.inner.borrow().send_cpu_free;
        world.schedule_at(at, move |world| {
            let pending = this.inner.borrow().pending_send.len();
            if pending == 0 {
                this.inner.borrow().inner.close(world);
            } else {
                // Data still being encoded: try again shortly.
                let retry = this.clone();
                world.schedule_after(SimDuration::from_micros(50), move |world| {
                    retry.close(world);
                });
            }
        });
    }

    fn set_readable_callback(&self, cb: ReadableCallback) {
        self.inner.borrow_mut().readable_cb = Some(cb);
    }

    fn bytes_acked(&self) -> u64 {
        self.inner.borrow().inner.bytes_acked()
    }

    fn bytes_unacked(&self) -> u64 {
        let st = self.inner.borrow();
        st.inner.bytes_unacked() + st.pending_send.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopback::loopback_pair;
    use crate::stream::ByteStreamExt;

    /// A transform that reverses each block and charges a fixed cost.
    struct ReverseTransform;

    impl BlockTransform for ReverseTransform {
        fn name(&self) -> &'static str {
            "reverse"
        }
        fn encode(&mut self, input: &[u8], _ctx: &TransformCtx) -> EncodedBlock {
            EncodedBlock {
                flag: 1,
                data: input.iter().rev().copied().collect(),
            }
        }
        fn decode(&mut self, flag: u8, data: &[u8]) -> Result<Vec<u8>, TransformError> {
            if flag != 1 {
                return Err(TransformError("bad flag"));
            }
            Ok(data.iter().rev().copied().collect())
        }
        fn encode_cost(&self, _i: usize, _o: usize, _f: u8) -> SimDuration {
            SimDuration::from_micros(10)
        }
        fn decode_cost(&self, _w: usize, _o: usize, _f: u8) -> SimDuration {
            SimDuration::from_micros(5)
        }
    }

    #[test]
    fn transform_roundtrip_over_loopback() {
        let mut world = SimWorld::new(0);
        let n = world.add_node("n");
        let (a, b) = loopback_pair(&world, n);
        let ta = TransformStream::new(&mut world, Box::new(a), ReverseTransform, 1024);
        let tb = TransformStream::new(&mut world, Box::new(b), ReverseTransform, 1024);
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 256) as u8).collect();
        ta.send_all(&mut world, &payload);
        world.run();
        assert_eq!(tb.recv_all(&mut world), payload);
        let stats = ta.stats();
        assert!(stats.blocks_encoded >= 10);
        assert_eq!(stats.app_bytes_sent, 10_000);
    }

    #[test]
    fn transform_charges_cpu_time() {
        let mut world = SimWorld::new(0);
        let n = world.add_node("n");
        let (a, b) = loopback_pair(&world, n);
        let ta = TransformStream::new(&mut world, Box::new(a), ReverseTransform, 100);
        let _tb = TransformStream::new(&mut world, Box::new(b), ReverseTransform, 100);
        ta.send_all(&mut world, &vec![0u8; 1000]);
        world.run();
        // 10 blocks at 10 us encode each = at least 100 us of virtual time.
        assert!(world.now().as_micros_f64() >= 100.0);
    }

    #[test]
    fn small_writes_are_flushed() {
        let mut world = SimWorld::new(0);
        let n = world.add_node("n");
        let (a, b) = loopback_pair(&world, n);
        let ta = TransformStream::new(&mut world, Box::new(a), ReverseTransform, 64 * 1024);
        let tb = TransformStream::new(&mut world, Box::new(b), ReverseTransform, 64 * 1024);
        ta.send_all(&mut world, b"tiny");
        world.run();
        assert_eq!(
            tb.recv_all(&mut world),
            b"tiny",
            "partial blocks must not be stuck"
        );
    }
}
