//! Unreliable datagram service (UDP-like) over the simulated network.
//!
//! Datagrams are the substrate of VRP and of a few personalities; they are
//! also handy in tests to observe raw loss behaviour.

use std::cell::RefCell;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::rc::Rc;

use bytes::Bytes;
use simnet::{Frame, NetworkId, NodeId, ProtoId, SimWorld};

use crate::wire::{SegFlags, Segment, EXTRA_HEADER_BYTES};

/// A datagram received by an endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    /// Sending node.
    pub src_node: NodeId,
    /// Sending port.
    pub src_port: u16,
    /// Payload.
    pub data: Bytes,
}

type RecvCallback = Box<dyn FnMut(&mut SimWorld, Datagram)>;

struct Endpoint {
    queue: VecDeque<Datagram>,
    callback: Option<RecvCallback>,
}

struct UdpHostInner {
    node: NodeId,
    endpoints: HashMap<u16, Endpoint>,
    next_ephemeral: u16,
}

/// The per-node datagram stack. One instance per node handles every bound
/// port, mirroring a host's single UDP implementation.
#[derive(Clone)]
pub struct UdpHost {
    inner: Rc<RefCell<UdpHostInner>>,
}

/// Errors returned by [`UdpHost::send_to`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UdpError {
    /// The payload does not fit in one network frame.
    DatagramTooLarge {
        /// Requested payload size.
        size: usize,
        /// Maximum payload for the network.
        max: usize,
    },
    /// The local port is not bound.
    PortNotBound(u16),
    /// The underlying network refused the frame.
    Network(simnet::SendError),
}

impl std::fmt::Display for UdpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UdpError::DatagramTooLarge { size, max } => {
                write!(f, "datagram of {size} bytes exceeds the maximum of {max}")
            }
            UdpError::PortNotBound(p) => write!(f, "port {p} is not bound"),
            UdpError::Network(e) => write!(f, "network error: {e}"),
        }
    }
}

impl std::error::Error for UdpError {}

impl UdpHost {
    /// Creates the datagram stack for `node` and registers its frame
    /// handler with the world.
    pub fn new(world: &mut SimWorld, node: NodeId) -> UdpHost {
        let inner = Rc::new(RefCell::new(UdpHostInner {
            node,
            endpoints: HashMap::new(),
            next_ephemeral: 49_152,
        }));
        let host = UdpHost { inner };
        let handler_host = host.clone();
        world.register_handler(node, ProtoId::DATAGRAM, move |world, _net, frame| {
            handler_host.on_frame(world, frame);
        });
        host
    }

    /// Node this stack belongs to.
    pub fn node(&self) -> NodeId {
        self.inner.borrow().node
    }

    /// Binds a port. Returns `false` if the port was already bound.
    pub fn bind(&self, port: u16) -> bool {
        let mut inner = self.inner.borrow_mut();
        if inner.endpoints.contains_key(&port) {
            return false;
        }
        inner.endpoints.insert(
            port,
            Endpoint {
                queue: VecDeque::new(),
                callback: None,
            },
        );
        true
    }

    /// Binds an ephemeral port and returns it.
    pub fn bind_ephemeral(&self) -> u16 {
        loop {
            let port = {
                let mut inner = self.inner.borrow_mut();
                let p = inner.next_ephemeral;
                inner.next_ephemeral = inner.next_ephemeral.wrapping_add(1).max(49_152);
                p
            };
            if self.bind(port) {
                return port;
            }
        }
    }

    /// Registers a callback invoked for every datagram arriving on `port`.
    /// Datagrams received before the callback was set stay in the queue.
    pub fn set_recv_callback(
        &self,
        port: u16,
        cb: impl FnMut(&mut SimWorld, Datagram) + 'static,
    ) -> Result<(), UdpError> {
        let mut inner = self.inner.borrow_mut();
        match inner.endpoints.get_mut(&port) {
            Some(ep) => {
                ep.callback = Some(Box::new(cb));
                Ok(())
            }
            None => Err(UdpError::PortNotBound(port)),
        }
    }

    /// Pops a queued datagram from `port`, if any.
    pub fn recv_from(&self, port: u16) -> Option<Datagram> {
        self.inner
            .borrow_mut()
            .endpoints
            .get_mut(&port)?
            .queue
            .pop_front()
    }

    /// Number of datagrams queued on `port`.
    pub fn pending(&self, port: u16) -> usize {
        self.inner
            .borrow()
            .endpoints
            .get(&port)
            .map_or(0, |e| e.queue.len())
    }

    /// Maximum datagram payload on `network` (MTU minus transport header).
    pub fn max_payload(world: &SimWorld, network: NetworkId) -> usize {
        world
            .network(network)
            .spec
            .mtu
            .saturating_sub(crate::wire::SEGMENT_HEADER_BYTES)
    }

    /// Sends one datagram. The payload must fit in a single frame.
    pub fn send_to(
        &self,
        world: &mut SimWorld,
        network: NetworkId,
        src_port: u16,
        dst_node: NodeId,
        dst_port: u16,
        data: impl Into<Bytes>,
    ) -> Result<(), UdpError> {
        let node = self.inner.borrow().node;
        if !self.inner.borrow().endpoints.contains_key(&src_port) {
            return Err(UdpError::PortNotBound(src_port));
        }
        let data = data.into();
        let max = Self::max_payload(world, network);
        if data.len() > max {
            return Err(UdpError::DatagramTooLarge {
                size: data.len(),
                max,
            });
        }
        let seg = Segment {
            src_port,
            dst_port,
            seq: 0,
            ack: 0,
            flags: SegFlags::default(),
            window: 0,
            data,
        };
        let frame = Frame::new(node, dst_node, ProtoId::DATAGRAM, seg.encode())
            .with_header_bytes(EXTRA_HEADER_BYTES);
        world.send_frame(network, frame).map_err(UdpError::Network)
    }

    fn on_frame(&self, world: &mut SimWorld, frame: Frame) {
        let Some(seg) = Segment::decode(frame.payload) else {
            return;
        };
        let dgram = Datagram {
            src_node: frame.src,
            src_port: seg.src_port,
            data: seg.data,
        };
        // Take the callback out while we run it so the callback itself may
        // re-enter this host (e.g. to send a reply).
        let cb = {
            let mut inner = self.inner.borrow_mut();
            match inner.endpoints.get_mut(&seg.dst_port) {
                Some(ep) => match ep.callback.take() {
                    Some(cb) => Some(cb),
                    None => {
                        ep.queue.push_back(dgram.clone());
                        None
                    }
                },
                None => None, // port unreachable: silently dropped
            }
        };
        if let Some(mut cb) = cb {
            cb(world, dgram);
            let mut inner = self.inner.borrow_mut();
            if let Some(ep) = inner.endpoints.get_mut(&seg.dst_port) {
                // Only restore if the user did not install a new callback
                // from inside the old one.
                if ep.callback.is_none() {
                    ep.callback = Some(cb);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::topology;
    use simnet::NetworkSpec;
    use std::cell::Cell;

    #[test]
    fn bind_and_ephemeral_ports() {
        let mut p = topology::pair_over(1, NetworkSpec::ethernet_100());
        let host = UdpHost::new(&mut p.world, p.a);
        assert!(host.bind(5000));
        assert!(!host.bind(5000), "double bind must fail");
        let e1 = host.bind_ephemeral();
        let e2 = host.bind_ephemeral();
        assert_ne!(e1, e2);
        assert!(e1 >= 49_152);
    }

    #[test]
    fn datagram_roundtrip_with_queue_and_callback() {
        let mut p = topology::pair_over(1, NetworkSpec::ethernet_100());
        let a = UdpHost::new(&mut p.world, p.a);
        let b = UdpHost::new(&mut p.world, p.b);
        a.bind(1000);
        b.bind(2000);

        // First datagram is queued (no callback yet).
        a.send_to(&mut p.world, p.network, 1000, p.b, 2000, &b"queued"[..])
            .unwrap();
        p.world.run();
        assert_eq!(b.pending(2000), 1);
        let d = b.recv_from(2000).unwrap();
        assert_eq!(&d.data[..], b"queued");
        assert_eq!(d.src_port, 1000);
        assert_eq!(d.src_node, p.a);

        // Second datagram goes through the callback.
        let got = Rc::new(Cell::new(false));
        let g = got.clone();
        b.set_recv_callback(2000, move |_w, d| {
            assert_eq!(&d.data[..], b"called back");
            g.set(true);
        })
        .unwrap();
        a.send_to(
            &mut p.world,
            p.network,
            1000,
            p.b,
            2000,
            &b"called back"[..],
        )
        .unwrap();
        p.world.run();
        assert!(got.get());
        assert_eq!(b.pending(2000), 0);
    }

    #[test]
    fn oversized_datagrams_are_rejected() {
        let mut p = topology::pair_over(1, NetworkSpec::ethernet_100());
        let a = UdpHost::new(&mut p.world, p.a);
        a.bind(1);
        let max = UdpHost::max_payload(&p.world, p.network);
        let err = a
            .send_to(&mut p.world, p.network, 1, p.b, 2, vec![0u8; max + 1])
            .unwrap_err();
        assert!(matches!(err, UdpError::DatagramTooLarge { .. }));
        // Exactly the maximum is fine.
        a.send_to(&mut p.world, p.network, 1, p.b, 2, vec![0u8; max])
            .unwrap();
    }

    #[test]
    fn sending_from_unbound_port_fails() {
        let mut p = topology::pair_over(1, NetworkSpec::ethernet_100());
        let a = UdpHost::new(&mut p.world, p.a);
        let err = a
            .send_to(&mut p.world, p.network, 77, p.b, 2, &b"x"[..])
            .unwrap_err();
        assert_eq!(err, UdpError::PortNotBound(77));
    }

    #[test]
    fn unbound_destination_port_drops_silently() {
        let mut p = topology::pair_over(1, NetworkSpec::ethernet_100());
        let a = UdpHost::new(&mut p.world, p.a);
        let b = UdpHost::new(&mut p.world, p.b);
        a.bind(1);
        a.send_to(&mut p.world, p.network, 1, p.b, 9999, &b"void"[..])
            .unwrap();
        p.world.run();
        assert_eq!(b.pending(9999), 0);
    }

    #[test]
    fn callback_can_reply_from_within() {
        // Ping/pong implemented inside the receive callbacks.
        let mut p = topology::pair_over(1, NetworkSpec::ethernet_100());
        let a = UdpHost::new(&mut p.world, p.a);
        let b = UdpHost::new(&mut p.world, p.b);
        a.bind(10);
        b.bind(20);
        let (node_a, net) = (p.a, p.network);
        let b2 = b.clone();
        b.set_recv_callback(20, move |world, d| {
            b2.send_to(world, net, 20, node_a, d.src_port, d.data.clone())
                .unwrap();
        })
        .unwrap();
        let pong = Rc::new(Cell::new(false));
        let pg = pong.clone();
        a.set_recv_callback(10, move |_w, d| {
            assert_eq!(&d.data[..], b"ping");
            pg.set(true);
        })
        .unwrap();
        a.send_to(&mut p.world, p.network, 10, p.b, 20, &b"ping"[..])
            .unwrap();
        p.world.run();
        assert!(pong.get());
    }
}
