//! `SegBuf`: the shared segment-queue buffer behind every stream datapath.
//!
//! The seed buffered stream payload in `VecDeque<u8>`: every byte was
//! pushed, popped and drained individually, so a payload crossing the
//! framework paid one pass per layer per hop. `SegBuf` keeps the payload
//! as a queue of refcounted [`Bytes`] chunks instead: pushing an arriving
//! chunk is a refcount bump, consuming from the front adjusts the head
//! chunk's offset, and reads that fall inside one chunk are zero-copy
//! slices. Only reads that straddle chunk boundaries (or explicitly ask
//! for a `Vec<u8>`) copy, exactly once.

use std::collections::VecDeque;

use bytes::{Buf, Bytes};

/// A FIFO byte buffer stored as refcounted segments.
///
/// Invariants: no stored chunk is empty; `len` is the sum of chunk
/// lengths. The head chunk's internal offset (advanced on partial
/// consumes) plays the role of a classic ring-buffer head index.
#[derive(Default)]
pub struct SegBuf {
    chunks: VecDeque<Bytes>,
    len: usize,
    high_water: usize,
}

impl SegBuf {
    /// Creates an empty buffer.
    pub fn new() -> SegBuf {
        SegBuf::default()
    }

    /// Total buffered bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bytes are buffered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of stored segments (for tests and diagnostics).
    pub fn segments(&self) -> usize {
        self.chunks.len()
    }

    /// Peak occupancy ever reached, in bytes. The occupancy hook used by
    /// flow-controlled layers (gateway trunks) to assert that credit
    /// windows actually bound buffer memory; survives `clear`.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Appends a chunk without copying it (a refcount bump).
    pub fn push_bytes(&mut self, chunk: Bytes) {
        if chunk.is_empty() {
            return;
        }
        self.len += chunk.len();
        self.high_water = self.high_water.max(self.len);
        self.chunks.push_back(chunk);
    }

    /// Appends a slice, copying it once into a fresh chunk.
    pub fn push_slice(&mut self, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        self.push_bytes(Bytes::copy_from_slice(data));
    }

    /// Iterates over the buffered segments front to back.
    pub fn peek_chunks(&self) -> impl Iterator<Item = &Bytes> {
        self.chunks.iter()
    }

    /// Copies up to `dst.len()` bytes into `dst` without consuming them;
    /// returns how many were copied. Used to parse frame headers that may
    /// straddle chunk boundaries.
    pub fn copy_peek(&self, dst: &mut [u8]) -> usize {
        let mut copied = 0;
        for chunk in &self.chunks {
            if copied == dst.len() {
                break;
            }
            let n = (dst.len() - copied).min(chunk.len());
            dst[copied..copied + n].copy_from_slice(&chunk[..n]);
            copied += n;
        }
        copied
    }

    /// Returns the first `min(max, len)` bytes as one [`Bytes`] without
    /// consuming them. Zero-copy when the head chunk covers the read (one
    /// copy when it straddles chunks). Used by retransmission paths that
    /// must resend data while keeping it buffered.
    pub fn peek_bytes(&self, max: usize) -> Bytes {
        let n = max.min(self.len);
        if n == 0 {
            return Bytes::new();
        }
        let head = self.chunks.front().expect("non-empty");
        if head.len() >= n {
            return head.slice(..n);
        }
        let mut out = Vec::with_capacity(n);
        for chunk in &self.chunks {
            let take = (n - out.len()).min(chunk.len());
            out.extend_from_slice(&chunk[..take]);
            if out.len() == n {
                break;
            }
        }
        Bytes::from(out)
    }

    /// Drops `n` bytes from the front. Panics if `n > len`.
    pub fn consume(&mut self, n: usize) {
        assert!(n <= self.len, "consume past end of SegBuf");
        let mut left = n;
        while left > 0 {
            let head = self.chunks.front_mut().expect("len accounted");
            if head.len() > left {
                head.advance(left);
                left = 0;
            } else {
                left -= head.len();
                self.chunks.pop_front();
            }
        }
        self.len -= n;
    }

    /// Removes and returns exactly `min(max, len)` bytes as one [`Bytes`].
    /// Zero-copy when the head chunk covers the whole read; one copy when
    /// the read straddles chunks.
    pub fn read_bytes(&mut self, max: usize) -> Bytes {
        let n = max.min(self.len);
        if n == 0 {
            return Bytes::new();
        }
        let head = self.chunks.front_mut().expect("non-empty");
        if head.len() >= n {
            let out = head.split_to(n);
            if head.is_empty() {
                self.chunks.pop_front();
            }
            self.len -= n;
            return out;
        }
        // Straddles chunks: one gathering copy.
        let mut out = Vec::with_capacity(n);
        let mut left = n;
        while left > 0 {
            let head = self.chunks.front_mut().expect("len accounted");
            let take = left.min(head.len());
            out.extend_from_slice(&head[..take]);
            if take == head.len() {
                self.chunks.pop_front();
            } else {
                head.advance(take);
            }
            left -= take;
        }
        self.len -= n;
        Bytes::from(out)
    }

    /// Removes and returns the front segment, truncated to `max` bytes
    /// (the remainder stays buffered). Always zero-copy. Returns an empty
    /// [`Bytes`] when the buffer is empty or `max == 0`.
    pub fn pop_chunk(&mut self, max: usize) -> Bytes {
        if max == 0 || self.is_empty() {
            return Bytes::new();
        }
        let head = self.chunks.front_mut().expect("non-empty");
        let n = max.min(head.len());
        let out = head.split_to(n);
        if head.is_empty() {
            self.chunks.pop_front();
        }
        self.len -= n;
        out
    }

    /// Removes and returns up to `max` bytes as a `Vec<u8>` (one copy).
    pub fn read_into(&mut self, max: usize) -> Vec<u8> {
        let n = max.min(self.len);
        if n == 0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(n);
        let mut left = n;
        while left > 0 {
            let head = self.chunks.front_mut().expect("len accounted");
            let take = left.min(head.len());
            out.extend_from_slice(&head[..take]);
            if take == head.len() {
                self.chunks.pop_front();
            } else {
                head.advance(take);
            }
            left -= take;
        }
        self.len -= n;
        out
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.chunks.clear();
        self.len = 0;
    }
}

impl std::fmt::Debug for SegBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SegBuf({} bytes in {} segments)",
            self.len,
            self.chunks.len()
        )
    }
}

impl Extend<Bytes> for SegBuf {
    fn extend<T: IntoIterator<Item = Bytes>>(&mut self, iter: T) {
        for chunk in iter {
            self.push_bytes(chunk);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::SimRng;

    #[test]
    fn push_read_roundtrip() {
        let mut b = SegBuf::new();
        b.push_bytes(Bytes::from_static(b"hello "));
        b.push_slice(b"world");
        assert_eq!(b.len(), 11);
        assert_eq!(b.segments(), 2);
        assert_eq!(b.read_into(usize::MAX), b"hello world");
        assert!(b.is_empty());
    }

    #[test]
    fn empty_pushes_are_ignored() {
        let mut b = SegBuf::new();
        b.push_bytes(Bytes::new());
        b.push_slice(&[]);
        assert!(b.is_empty());
        assert_eq!(b.segments(), 0);
        assert_eq!(b.read_bytes(10), Bytes::new());
        assert_eq!(b.pop_chunk(10), Bytes::new());
        assert_eq!(b.read_into(10), Vec::<u8>::new());
    }

    #[test]
    fn read_bytes_is_zero_copy_within_a_chunk() {
        let mut b = SegBuf::new();
        b.push_bytes(Bytes::from(vec![1, 2, 3, 4, 5]));
        b.push_bytes(Bytes::from(vec![6, 7]));
        // Within the head chunk: no new allocation, chunk is split.
        assert_eq!(b.read_bytes(3), [1, 2, 3]);
        assert_eq!(b.len(), 4);
        // Straddling: gathers into one chunk.
        assert_eq!(b.read_bytes(4), [4, 5, 6, 7]);
        assert!(b.is_empty());
    }

    #[test]
    fn pop_chunk_respects_segment_boundaries() {
        let mut b = SegBuf::new();
        b.push_bytes(Bytes::from(vec![1, 2, 3]));
        b.push_bytes(Bytes::from(vec![4, 5]));
        assert_eq!(b.pop_chunk(usize::MAX), [1, 2, 3]);
        assert_eq!(b.pop_chunk(1), [4]);
        assert_eq!(b.pop_chunk(usize::MAX), [5]);
        assert!(b.is_empty());
    }

    #[test]
    fn high_water_tracks_peak_occupancy() {
        let mut b = SegBuf::new();
        assert_eq!(b.high_water(), 0);
        b.push_slice(&[0u8; 10]);
        b.push_slice(&[0u8; 5]);
        assert_eq!(b.high_water(), 15);
        b.consume(12);
        assert_eq!(b.high_water(), 15, "peak survives consumption");
        b.push_slice(&[0u8; 4]);
        assert_eq!(b.high_water(), 15, "below the old peak");
        b.push_slice(&[0u8; 20]);
        assert_eq!(b.high_water(), 27);
        b.clear();
        assert_eq!(b.high_water(), 27, "peak survives clear");
    }

    #[test]
    fn consume_and_peek() {
        let mut b = SegBuf::new();
        b.push_bytes(Bytes::from(vec![1, 2, 3]));
        b.push_bytes(Bytes::from(vec![4, 5, 6]));
        let mut head = [0u8; 4];
        assert_eq!(b.copy_peek(&mut head), 4);
        assert_eq!(head, [1, 2, 3, 4]);
        assert_eq!(b.len(), 6, "peek must not consume");
        b.consume(4);
        assert_eq!(b.read_into(usize::MAX), vec![5, 6]);
    }

    #[test]
    #[should_panic(expected = "consume past end")]
    fn consume_past_end_panics() {
        let mut b = SegBuf::new();
        b.push_slice(b"ab");
        b.consume(3);
    }

    /// Property test: a random sequence of push/consume/read operations
    /// behaves exactly like a flat `Vec<u8>` reference model.
    #[test]
    fn random_ops_match_reference_model() {
        for seed in 0..8u64 {
            let mut rng = SimRng::seeded(0xC0FFEE ^ seed);
            let mut sb = SegBuf::new();
            let mut model: Vec<u8> = Vec::new();
            let mut next_byte = 0u8;
            for _ in 0..2_000 {
                match rng.next_u64() % 6 {
                    0 | 1 => {
                        // Push a random-sized chunk.
                        let n = (rng.next_u64() % 17) as usize;
                        let chunk: Vec<u8> = (0..n)
                            .map(|_| {
                                next_byte = next_byte.wrapping_add(1);
                                next_byte
                            })
                            .collect();
                        model.extend_from_slice(&chunk);
                        if rng.next_u64().is_multiple_of(2) {
                            sb.push_bytes(Bytes::from(chunk));
                        } else {
                            sb.push_slice(&chunk);
                        }
                    }
                    2 => {
                        let n = (rng.next_u64() % 24) as usize;
                        let got = sb.read_into(n);
                        let take = n.min(model.len());
                        let want: Vec<u8> = model.drain(..take).collect();
                        assert_eq!(got, want);
                    }
                    3 => {
                        let n = (rng.next_u64() % 24) as usize;
                        let got = sb.read_bytes(n);
                        let take = n.min(model.len());
                        let want: Vec<u8> = model.drain(..take).collect();
                        assert_eq!(&got[..], &want[..]);
                    }
                    4 => {
                        let n = (rng.next_u64() % 24) as usize;
                        let got = sb.pop_chunk(n);
                        assert!(got.len() <= n);
                        let want: Vec<u8> = model.drain(..got.len()).collect();
                        assert_eq!(&got[..], &want[..]);
                        // pop_chunk returns something whenever data exists.
                        assert!(got.is_empty() == (n == 0 || want.is_empty()));
                    }
                    _ => {
                        let n = (rng.next_u64() as usize) % (sb.len() + 1);
                        sb.consume(n);
                        model.drain(..n);
                    }
                }
                assert_eq!(sb.len(), model.len());
                assert_eq!(sb.is_empty(), model.is_empty());
                // The peek view always matches the model prefix.
                let mut peek = vec![0u8; sb.len().min(32)];
                let got = sb.copy_peek(&mut peek);
                assert_eq!(got, peek.len());
                assert_eq!(&peek[..], &model[..peek.len()]);
            }
            // Drain the remainder and compare.
            assert_eq!(sb.read_into(usize::MAX), model);
        }
    }
}
