//! In-memory loopback streams.
//!
//! PadicoTM provides a loopback VLink driver so that two middleware
//! systems co-located on the same node talk through a memory copy instead
//! of the network. The pair created here models exactly that: data crosses
//! after one memcpy-rate delay on the node.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use simnet::{NodeId, SimDuration, SimWorld};

use crate::segbuf::SegBuf;
use crate::stream::{ByteStream, ReadableCallback};

struct Side {
    recv_buf: SegBuf,
    readable_cb: Option<ReadableCallback>,
    notify_pending: bool,
    closed_by_peer: bool,
    closed_by_self: bool,
    bytes_acked: u64,
}

impl Side {
    fn new() -> Side {
        Side {
            recv_buf: SegBuf::new(),
            readable_cb: None,
            notify_pending: false,
            closed_by_peer: false,
            closed_by_self: false,
            bytes_acked: 0,
        }
    }
}

struct Shared {
    node: NodeId,
    sides: [Side; 2],
    /// Next instant the (single) copy engine is free; back-to-back sends
    /// serialize at memcpy rate.
    copy_free_at: simnet::SimTime,
}

/// One end of a loopback stream pair.
#[derive(Clone)]
pub struct LoopbackStream {
    shared: Rc<RefCell<Shared>>,
    /// Which side this handle is (0 or 1).
    side: usize,
}

/// Creates a connected pair of loopback streams on `node`.
pub fn loopback_pair(world: &SimWorld, node: NodeId) -> (LoopbackStream, LoopbackStream) {
    let _ = world; // only the node's profile is needed; kept for symmetry with other constructors
    let shared = Rc::new(RefCell::new(Shared {
        node,
        sides: [Side::new(), Side::new()],
        copy_free_at: simnet::SimTime::ZERO,
    }));
    (
        LoopbackStream {
            shared: shared.clone(),
            side: 0,
        },
        LoopbackStream { shared, side: 1 },
    )
}

impl LoopbackStream {
    fn peer(&self) -> usize {
        1 - self.side
    }

    fn schedule_notify(&self, world: &mut SimWorld, side: usize) {
        let should = {
            let mut sh = self.shared.borrow_mut();
            let s = &mut sh.sides[side];
            if s.readable_cb.is_some() && !s.notify_pending {
                s.notify_pending = true;
                true
            } else {
                false
            }
        };
        if should {
            let shared = self.shared.clone();
            world.schedule_after(SimDuration::ZERO, move |world| {
                let cb = {
                    let mut sh = shared.borrow_mut();
                    sh.sides[side].notify_pending = false;
                    sh.sides[side].readable_cb.take()
                };
                if let Some(mut cb) = cb {
                    cb(world);
                    let mut sh = shared.borrow_mut();
                    if sh.sides[side].readable_cb.is_none() {
                        sh.sides[side].readable_cb = Some(cb);
                    }
                }
            });
        }
    }
}

impl LoopbackStream {
    /// Queues an owned chunk for the peer after one memcpy-rate delay.
    fn queue_send(&self, world: &mut SimWorld, payload: Bytes) -> usize {
        let peer = self.peer();
        let delay = {
            let mut sh = self.shared.borrow_mut();
            if sh.sides[self.side].closed_by_self || sh.sides[self.side].closed_by_peer {
                // Either we closed, or the peer closed (nobody is left to
                // read what we would send).
                return 0;
            }
            let cost = world.copy_cost(sh.node, payload.len() as u64);
            let start = world.now().max(sh.copy_free_at);
            let done = start + cost;
            sh.copy_free_at = done;
            done - world.now()
        };
        let shared = self.shared.clone();
        let this = self.clone();
        let side = self.side;
        let len = payload.len();
        world.schedule_after(delay, move |world| {
            {
                let mut sh = shared.borrow_mut();
                sh.sides[side].bytes_acked += payload.len() as u64;
                // The chunk crosses by refcount bump; the memcpy *time* was
                // charged above, the host does not copy again.
                sh.sides[peer].recv_buf.push_bytes(payload);
            }
            this.schedule_notify(world, peer);
        });
        len
    }
}

impl ByteStream for LoopbackStream {
    fn send(&self, world: &mut SimWorld, data: &[u8]) -> usize {
        self.queue_send(world, Bytes::copy_from_slice(data))
    }

    fn send_bytes(&self, world: &mut SimWorld, data: Bytes) -> usize {
        self.queue_send(world, data)
    }

    fn available(&self) -> usize {
        self.shared.borrow().sides[self.side].recv_buf.len()
    }

    fn recv(&self, _world: &mut SimWorld, max: usize) -> Vec<u8> {
        if max == 0 || self.available() == 0 {
            return Vec::new();
        }
        self.shared.borrow_mut().sides[self.side]
            .recv_buf
            .read_into(max)
    }

    fn recv_bytes(&self, _world: &mut SimWorld, max: usize) -> Bytes {
        self.shared.borrow_mut().sides[self.side]
            .recv_buf
            .pop_chunk(max)
    }

    fn is_established(&self) -> bool {
        true
    }

    fn is_finished(&self) -> bool {
        let sh = self.shared.borrow();
        sh.sides[self.side].closed_by_peer && sh.sides[self.side].recv_buf.is_empty()
    }

    fn close(&self, world: &mut SimWorld) {
        let peer = self.peer();
        // The close takes effect only after every in-flight copy has been
        // delivered, like a FIN ordered behind the data.
        let delay = {
            let mut sh = self.shared.borrow_mut();
            sh.sides[self.side].closed_by_self = true;
            sh.copy_free_at.max(world.now()) - world.now()
        };
        let shared = self.shared.clone();
        let this = self.clone();
        world.schedule_after(delay, move |world| {
            shared.borrow_mut().sides[peer].closed_by_peer = true;
            this.schedule_notify(world, peer);
        });
    }

    fn set_readable_callback(&self, cb: ReadableCallback) {
        self.shared.borrow_mut().sides[self.side].readable_cb = Some(cb);
    }

    fn bytes_acked(&self) -> u64 {
        self.shared.borrow().sides[self.side].bytes_acked
    }

    fn bytes_unacked(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::ByteStreamExt;

    #[test]
    fn loopback_roundtrip() {
        let mut world = SimWorld::new(0);
        let n = world.add_node("n");
        let (a, b) = loopback_pair(&world, n);
        a.send_all(&mut world, b"ping");
        b.send_all(&mut world, b"pong");
        world.run();
        assert_eq!(b.recv_all(&mut world), b"ping");
        assert_eq!(a.recv_all(&mut world), b"pong");
        assert_eq!(a.bytes_acked(), 4);
    }

    #[test]
    fn loopback_charges_memcpy_time() {
        let mut world = SimWorld::new(0);
        let n = world.add_node("n");
        let (a, b) = loopback_pair(&world, n);
        let one_mb = vec![0u8; 1_000_000];
        a.send_all(&mut world, &one_mb);
        world.run();
        assert_eq!(b.available(), 1_000_000);
        // 1 MB at the Pentium III memcpy rate (150 MB/s) is ~6.7 ms.
        let elapsed = world.now().as_millis_f64();
        assert!(elapsed > 6.0 && elapsed < 7.5, "elapsed {elapsed} ms");
    }

    #[test]
    fn close_is_seen_by_peer() {
        let mut world = SimWorld::new(0);
        let n = world.add_node("n");
        let (a, b) = loopback_pair(&world, n);
        a.send_all(&mut world, b"bye");
        a.close(&mut world);
        world.run();
        assert!(!b.is_finished(), "data still unread");
        assert_eq!(b.recv_all(&mut world), b"bye");
        assert!(b.is_finished());
        assert_eq!(b.send(&mut world, b"x"), 0, "peer closed");
    }

    #[test]
    fn readable_callback_fires() {
        let mut world = SimWorld::new(0);
        let n = world.add_node("n");
        let (a, b) = loopback_pair(&world, n);
        let got = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        let b2 = b.clone();
        b.set_readable_callback(Box::new(move |world| {
            g.borrow_mut().extend(b2.recv_all(world));
        }));
        a.send_all(&mut world, b"callback data");
        world.run();
        assert_eq!(*got.borrow(), b"callback data");
    }
}
