//! AdOC-style adaptive online compression.
//!
//! AdOC (Jeannot, Knutsson, Björkmann 2002) compresses stream data on the
//! fly, but only when compression actually helps: if the network drains the
//! send queue faster than the CPU can compress, data is sent raw. The
//! adaptation here follows the same idea: a block is compressed when the
//! inner stream has a backlog (the network is the bottleneck) and recent
//! blocks actually shrank.

use simnet::{SimDuration, SimWorld};

use crate::compress::{self, COMPRESS_BYTES_PER_SEC, DECOMPRESS_BYTES_PER_SEC};
use crate::framed::{
    BlockTransform, EncodedBlock, TransformCtx, TransformError, TransformStats, TransformStream,
};
use crate::stream::ByteStream;

const FLAG_RAW: u8 = 0;
const FLAG_COMPRESSED: u8 = 1;

/// Configuration of the AdOC adapter.
#[derive(Debug, Clone)]
pub struct AdocConfig {
    /// Application bytes per block.
    pub block_size: usize,
    /// Backlog (bytes queued but unacknowledged in the inner stream) above
    /// which the network is considered the bottleneck and compression is
    /// worthwhile.
    pub backlog_threshold: u64,
    /// If `true`, always compress regardless of backlog (useful for tests
    /// and for explicitly slow links).
    pub force_compression: bool,
    /// Minimum compression ratio observed recently for compression to stay
    /// enabled; below this the data is considered incompressible.
    pub min_useful_ratio: f64,
}

impl Default for AdocConfig {
    fn default() -> Self {
        AdocConfig {
            block_size: 32 * 1024,
            backlog_threshold: 64 * 1024,
            force_compression: false,
            min_useful_ratio: 1.05,
        }
    }
}

/// The AdOC block transform (compression + adaptation policy).
pub struct AdocTransform {
    config: AdocConfig,
    /// Ratio achieved by the last compressed block; starts optimistic so
    /// the first block is attempted.
    last_ratio: f64,
}

impl AdocTransform {
    fn new(config: AdocConfig) -> Self {
        AdocTransform {
            config,
            last_ratio: 10.0,
        }
    }
}

impl BlockTransform for AdocTransform {
    fn name(&self) -> &'static str {
        "adoc"
    }

    fn encode(&mut self, input: &[u8], ctx: &TransformCtx) -> EncodedBlock {
        let network_bound = ctx.inner_backlog >= self.config.backlog_threshold;
        let data_compresses = self.last_ratio >= self.config.min_useful_ratio;
        let try_compress = self.config.force_compression || (network_bound && data_compresses)
            // Periodically re-probe compressibility even if it stopped helping.
            || (network_bound && ctx.now.as_nanos().is_multiple_of(16));
        if try_compress {
            let compressed = compress::compress(input);
            self.last_ratio = input.len() as f64 / compressed.len().max(1) as f64;
            if compressed.len() < input.len() {
                return EncodedBlock {
                    flag: FLAG_COMPRESSED,
                    data: compressed.to_vec(),
                };
            }
        }
        EncodedBlock {
            flag: FLAG_RAW,
            data: input.to_vec(),
        }
    }

    fn decode(&mut self, flag: u8, data: &[u8]) -> Result<Vec<u8>, TransformError> {
        match flag {
            FLAG_RAW => Ok(data.to_vec()),
            FLAG_COMPRESSED => {
                compress::decompress(data).map_err(|_| TransformError("corrupt compressed block"))
            }
            _ => Err(TransformError("unknown AdOC block flag")),
        }
    }

    fn encode_cost(&self, input_len: usize, _output_len: usize, flag: u8) -> SimDuration {
        match flag {
            FLAG_COMPRESSED => SimDuration::for_transfer(input_len as u64, COMPRESS_BYTES_PER_SEC),
            // Raw blocks still pay one memcpy-ish pass.
            _ => SimDuration::for_transfer(input_len as u64, 400.0e6),
        }
    }

    fn decode_cost(&self, _wire_len: usize, output_len: usize, flag: u8) -> SimDuration {
        match flag {
            FLAG_COMPRESSED => {
                SimDuration::for_transfer(output_len as u64, DECOMPRESS_BYTES_PER_SEC)
            }
            _ => SimDuration::for_transfer(output_len as u64, 400.0e6),
        }
    }
}

/// An AdOC adaptive-compression stream over any inner [`ByteStream`].
pub type AdocStream = TransformStream<AdocTransform>;

/// Wraps `inner` with AdOC adaptive compression.
pub fn adoc_over(
    world: &mut SimWorld,
    inner: Box<dyn ByteStream>,
    config: AdocConfig,
) -> AdocStream {
    let block = config.block_size;
    TransformStream::new(world, inner, AdocTransform::new(config), block)
}

/// Statistics alias re-exported for convenience.
pub type AdocStats = TransformStats;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::compressible_data;
    use crate::loopback::loopback_pair;
    use crate::stream::ByteStreamExt;
    use crate::tcp::{TcpConn, TcpStack};
    use simnet::{topology, NetworkSpec};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn tcp_pair(spec: NetworkSpec) -> (simnet::SimWorld, TcpConn, TcpConn, simnet::NetworkId) {
        let mut p = topology::pair_over(5, spec);
        let sa = TcpStack::new(&mut p.world, p.a);
        let sb = TcpStack::new(&mut p.world, p.b);
        let server: Rc<RefCell<Option<TcpConn>>> = Rc::new(RefCell::new(None));
        let s2 = server.clone();
        sb.listen(5000, move |_w, c| *s2.borrow_mut() = Some(c));
        let client = sa.connect(&mut p.world, p.network, p.b, 5000);
        p.world.run();
        let server = server.borrow().clone().unwrap();
        (p.world, client, server, p.network)
    }

    #[test]
    fn adoc_roundtrip_forced_compression() {
        let mut world = SimWorld::new(0);
        let n = world.add_node("n");
        let (a, b) = loopback_pair(&world, n);
        let cfg = AdocConfig {
            force_compression: true,
            ..Default::default()
        };
        let ta = adoc_over(&mut world, Box::new(a), cfg.clone());
        let tb = adoc_over(&mut world, Box::new(b), cfg);
        let data = compressible_data(200_000, 3);
        ta.send_all(&mut world, &data);
        world.run();
        assert_eq!(tb.recv_all(&mut world), data);
        let stats = ta.stats();
        assert!(stats.blocks_transformed > 0, "blocks should be compressed");
        assert!(
            stats.effective_ratio() > 1.5,
            "compressible data should shrink on the wire, ratio {}",
            stats.effective_ratio()
        );
    }

    #[test]
    fn adoc_leaves_incompressible_data_raw() {
        let mut world = SimWorld::new(1);
        let n = world.add_node("n");
        let (a, b) = loopback_pair(&world, n);
        let cfg = AdocConfig {
            force_compression: true,
            ..Default::default()
        };
        let ta = adoc_over(&mut world, Box::new(a), cfg.clone());
        let tb = adoc_over(&mut world, Box::new(b), cfg);
        // Pseudo-random bytes do not compress; AdOC must fall back to raw
        // blocks (flag 0) and still round-trip.
        let mut x = 99u64;
        let data: Vec<u8> = (0..100_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 0xff) as u8
            })
            .collect();
        ta.send_all(&mut world, &data);
        world.run();
        assert_eq!(tb.recv_all(&mut world), data);
        let stats = ta.stats();
        assert!(stats.effective_ratio() <= 1.01);
    }

    #[test]
    fn adoc_speeds_up_a_slow_link_with_compressible_data() {
        // Reference: raw TCP transfer time on the slow link.
        let size = 300_000usize;
        let data = compressible_data(size, 7);

        let measure = |use_adoc: bool| -> f64 {
            let (mut world, client, server, _net) = tcp_pair(NetworkSpec::lossy_internet());
            let received = Rc::new(RefCell::new(0usize));
            let r = received.clone();
            let (tx, rx): (Box<dyn ByteStream>, Box<dyn ByteStream>) = if use_adoc {
                let cfg = AdocConfig {
                    force_compression: true,
                    ..Default::default()
                };
                (
                    Box::new(adoc_over(&mut world, Box::new(client), cfg.clone())),
                    Box::new(adoc_over(&mut world, Box::new(server), cfg)),
                )
            } else {
                (Box::new(client), Box::new(server))
            };
            let rx = Rc::new(rx);
            let rx2 = rx.clone();
            rx.set_readable_callback(Box::new(move |world| {
                *r.borrow_mut() += rx2.recv(world, usize::MAX).len();
            }));
            let start = world.now();
            tx.send(&mut world, &data);
            world.run_while(|| *received.borrow() < size);
            world.now().since(start).as_secs_f64()
        };

        let raw_time = measure(false);
        let adoc_time = measure(true);
        assert!(
            adoc_time < raw_time * 0.8,
            "AdOC should speed up compressible transfers on a slow link: raw {raw_time:.3}s vs adoc {adoc_time:.3}s"
        );
    }
}
