//! Parallel Streams: one logical stream striped over several TCP
//! connections.
//!
//! On a high-bandwidth, high-latency WAN every isolated TCP loss halves one
//! connection's congestion window; striping the data over N connections
//! confines each loss to 1/N of the aggregate, which is why GridFTP (and
//! PadicoTM's Parallel Streams VLink adapter) recover most of the access
//! bandwidth. The paper measures 9 MB/s for a single stream on VTHD and
//! 12 MB/s (the Ethernet-100 access limit) with Parallel Streams.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use bytes::Bytes;
use simnet::{NetworkId, NodeId, SimDuration, SimWorld};

use crate::segbuf::SegBuf;
use crate::stream::{ByteStream, ReadableCallback};
use crate::tcp::{TcpConn, TcpStack};

/// Configuration of a parallel-stream bundle.
#[derive(Debug, Clone)]
pub struct ParallelStreamConfig {
    /// Number of TCP connections in the bundle.
    pub n_streams: usize,
    /// Bytes per striping chunk.
    pub chunk_size: usize,
}

impl Default for ParallelStreamConfig {
    fn default() -> Self {
        ParallelStreamConfig {
            n_streams: 4,
            chunk_size: 64 * 1024,
        }
    }
}

const PREAMBLE_MAGIC: u32 = 0x5053_5452; // "PSTR"
/// Preamble: magic(4) + member index(2) + width(2) + bundle id(2).
/// The bundle id (the first member's ephemeral port, unique per source
/// stack) lets an acceptor assemble several bundles arriving concurrently
/// from different peers — or from the same peer — without mixing their
/// member connections.
const PREAMBLE_BYTES: usize = 10;
const CHUNK_HEADER_BYTES: usize = 12;

struct Inner {
    config: ParallelStreamConfig,
    conns: Vec<TcpConn>,
    // Send side.
    next_send_chunk: u64,
    pending_send: SegBuf,
    closed: bool,
    // Receive side: per-connection partial frame buffers, then global
    // reassembly by chunk id. Chunk bodies stay refcounted end to end.
    rx_partial: Vec<SegBuf>,
    chunks: BTreeMap<u64, Bytes>,
    next_deliver_chunk: u64,
    recv_buf: SegBuf,
    readable_cb: Option<ReadableCallback>,
    notify_pending: bool,
}

/// A logical byte stream striped over several TCP connections.
#[derive(Clone)]
pub struct ParallelStream {
    inner: Rc<RefCell<Inner>>,
}

impl ParallelStream {
    /// Opens `config.n_streams` connections to `remote_node:port` over
    /// `network` and assembles them into one logical stream. Data can be
    /// queued immediately.
    pub fn connect(
        world: &mut SimWorld,
        stack: &TcpStack,
        network: NetworkId,
        remote_node: NodeId,
        port: u16,
        config: ParallelStreamConfig,
    ) -> ParallelStream {
        assert!(config.n_streams >= 1);
        let mut conns = Vec::with_capacity(config.n_streams);
        for _ in 0..config.n_streams {
            conns.push(stack.connect(world, network, remote_node, port));
        }
        // The first member's ephemeral port identifies the bundle.
        let bundle_id = conns[0].local_addr().1;
        for (idx, conn) in conns.iter().enumerate() {
            // Preamble identifies this connection's bundle and its index
            // within it.
            let mut preamble = Vec::with_capacity(PREAMBLE_BYTES);
            preamble.extend_from_slice(&PREAMBLE_MAGIC.to_be_bytes());
            preamble.extend_from_slice(&(idx as u16).to_be_bytes());
            preamble.extend_from_slice(&(config.n_streams as u16).to_be_bytes());
            preamble.extend_from_slice(&bundle_id.to_be_bytes());
            conn.send(world, &preamble);
        }
        Self::assemble(world, conns, config)
    }

    /// Starts listening for parallel-stream bundles on `port`. Once all the
    /// member connections of a bundle have arrived, `on_accept` is called
    /// with the assembled stream.
    pub fn listen(
        world: &mut SimWorld,
        stack: &TcpStack,
        port: u16,
        config: ParallelStreamConfig,
        on_accept: impl FnMut(&mut SimWorld, ParallelStream) + 'static,
    ) {
        let _ = world;
        struct Listener {
            config: ParallelStreamConfig,
            /// Bundles being assembled, keyed by (remote node, bundle id)
            /// so concurrent bundles from several peers never mix.
            pending: HashMap<(NodeId, u16), Vec<Option<TcpConn>>>,
            #[allow(clippy::type_complexity)]
            on_accept: Box<dyn FnMut(&mut SimWorld, ParallelStream)>,
        }
        let listener = Rc::new(RefCell::new(Listener {
            config,
            pending: HashMap::new(),
            on_accept: Box::new(on_accept),
        }));
        stack.listen(port, move |_world, conn| {
            // Each accepted connection first announces its bundle and index
            // via the preamble; once it arrives, slot it into that bundle.
            let listener = listener.clone();
            let conn_for_cb = conn.clone();
            let preamble_buf: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
            conn.set_readable_callback(Box::new(move |world| {
                let mut buf = preamble_buf.borrow_mut();
                if buf.len() < PREAMBLE_BYTES {
                    let need = PREAMBLE_BYTES - buf.len();
                    buf.extend(conn_for_cb.recv(world, need));
                }
                if buf.len() < PREAMBLE_BYTES {
                    return;
                }
                let magic = u32::from_be_bytes(buf[0..4].try_into().unwrap());
                let idx = u16::from_be_bytes(buf[4..6].try_into().unwrap()) as usize;
                let n = u16::from_be_bytes(buf[6..8].try_into().unwrap()) as usize;
                let bundle_id = u16::from_be_bytes(buf[8..10].try_into().unwrap());
                if magic != PREAMBLE_MAGIC {
                    return; // not a parallel-stream peer; ignore
                }
                let key = (conn_for_cb.remote_addr().0, bundle_id);
                let ready = {
                    let mut l = listener.borrow_mut();
                    let slots = l.pending.entry(key).or_default();
                    if slots.len() < n {
                        slots.resize(n, None);
                    }
                    slots[idx] = Some(conn_for_cb.clone());
                    slots.iter().all(|s| s.is_some())
                };
                if ready {
                    let (conns, config) = {
                        let mut l = listener.borrow_mut();
                        let slots = l.pending.remove(&key).expect("bundle present");
                        let conns: Vec<TcpConn> =
                            slots.into_iter().map(|s| s.expect("all present")).collect();
                        (conns, l.config.clone())
                    };
                    let ps = ParallelStream::assemble(world, conns, config);
                    let mut l = listener.borrow_mut();
                    (l.on_accept)(world, ps);
                }
            }));
        });
    }

    fn assemble(
        world: &mut SimWorld,
        conns: Vec<TcpConn>,
        config: ParallelStreamConfig,
    ) -> ParallelStream {
        let n = conns.len();
        let ps = ParallelStream {
            inner: Rc::new(RefCell::new(Inner {
                config,
                conns: conns.clone(),
                next_send_chunk: 0,
                pending_send: SegBuf::new(),
                closed: false,
                rx_partial: (0..n).map(|_| SegBuf::new()).collect(),
                chunks: BTreeMap::new(),
                next_deliver_chunk: 0,
                recv_buf: SegBuf::new(),
                readable_cb: None,
                notify_pending: false,
            })),
        };
        for (idx, conn) in conns.iter().enumerate() {
            let ps2 = ps.clone();
            let conn2 = conn.clone();
            conn.set_readable_callback(Box::new(move |world| {
                ps2.on_conn_readable(world, idx, &conn2);
            }));
            // Drain anything that arrived before we took over the callback.
            let ps3 = ps.clone();
            let conn3 = conn.clone();
            world.schedule_after(SimDuration::ZERO, move |world| {
                ps3.on_conn_readable(world, idx, &conn3);
            });
        }
        ps
    }

    /// Number of member connections.
    pub fn width(&self) -> usize {
        self.inner.borrow().conns.len()
    }

    /// The member TCP connections (for inspection in tests/experiments).
    pub fn members(&self) -> Vec<TcpConn> {
        self.inner.borrow().conns.clone()
    }

    fn flush(&self, world: &mut SimWorld) {
        loop {
            let (conn, header, body) = {
                let mut st = self.inner.borrow_mut();
                if st.pending_send.is_empty() {
                    return;
                }
                let take = st.config.chunk_size.min(st.pending_send.len());
                let chunk_id = st.next_send_chunk;
                st.next_send_chunk += 1;
                // The striped body is a zero-copy slice of the queued data.
                let body = st.pending_send.read_bytes(take);
                let mut header = Vec::with_capacity(CHUNK_HEADER_BYTES);
                header.extend_from_slice(&chunk_id.to_be_bytes());
                header.extend_from_slice(&(body.len() as u32).to_be_bytes());
                let conn = st.conns[(chunk_id % st.conns.len() as u64) as usize].clone();
                (conn, Bytes::from(header), body)
            };
            let body_len = body.len();
            let sent = conn.send_bytes_vectored(world, vec![header, body]);
            debug_assert_eq!(sent, CHUNK_HEADER_BYTES + body_len);
        }
    }

    fn on_conn_readable(&self, world: &mut SimWorld, idx: usize, conn: &TcpConn) {
        let mut got_any = false;
        let mut got_data = false;
        {
            let mut st = self.inner.borrow_mut();
            loop {
                let data = conn.recv_bytes(world, usize::MAX);
                if data.is_empty() {
                    break;
                }
                got_any = true;
                st.rx_partial[idx].push_bytes(data);
            }
            if !got_any {
                // A pure EOF (FIN with no payload) is still a readable
                // event per the ByteStream contract: once the members
                // finish, blocked readers must observe the bundle's end
                // instead of waiting forever for a notification that
                // carried no bytes.
                if conn.is_finished() {
                    drop(st);
                    self.schedule_notify(world);
                }
                return;
            }
            loop {
                let buf = &mut st.rx_partial[idx];
                let mut header = [0u8; CHUNK_HEADER_BYTES];
                if buf.copy_peek(&mut header) < CHUNK_HEADER_BYTES {
                    break;
                }
                let chunk_id = u64::from_be_bytes(header[0..8].try_into().unwrap());
                let len = u32::from_be_bytes(header[8..12].try_into().unwrap()) as usize;
                if buf.len() < CHUNK_HEADER_BYTES + len {
                    break;
                }
                buf.consume(CHUNK_HEADER_BYTES);
                // Zero-copy when the chunk body arrived in one segment.
                let body = buf.read_bytes(len);
                st.chunks.insert(chunk_id, body);
            }
            // Deliver chunks in order.
            while let Some(body) = {
                let next = st.next_deliver_chunk;
                st.chunks.remove(&next)
            } {
                st.recv_buf.push_bytes(body);
                st.next_deliver_chunk += 1;
                got_data = true;
            }
        }
        if got_data {
            self.schedule_notify(world);
        }
    }

    fn schedule_notify(&self, world: &mut SimWorld) {
        let should = {
            let mut st = self.inner.borrow_mut();
            if st.readable_cb.is_some() && !st.notify_pending {
                st.notify_pending = true;
                true
            } else {
                false
            }
        };
        if should {
            let this = self.clone();
            world.schedule_after(SimDuration::ZERO, move |world| {
                let cb = {
                    let mut st = this.inner.borrow_mut();
                    st.notify_pending = false;
                    st.readable_cb.take()
                };
                if let Some(mut cb) = cb {
                    cb(world);
                    let mut st = this.inner.borrow_mut();
                    if st.readable_cb.is_none() {
                        st.readable_cb = Some(cb);
                    }
                }
            });
        }
    }
}

impl ParallelStream {
    fn queue_send_parts(&self, world: &mut SimWorld, parts: Vec<Bytes>) -> usize {
        let len = {
            let mut st = self.inner.borrow_mut();
            if st.closed {
                return 0;
            }
            let mut len = 0;
            for data in parts {
                len += data.len();
                st.pending_send.push_bytes(data);
            }
            len
        };
        self.flush(world);
        len
    }
}

impl ByteStream for ParallelStream {
    fn send(&self, world: &mut SimWorld, data: &[u8]) -> usize {
        self.queue_send_parts(world, vec![Bytes::copy_from_slice(data)])
    }

    fn send_bytes(&self, world: &mut SimWorld, data: Bytes) -> usize {
        self.queue_send_parts(world, vec![data])
    }

    fn send_bytes_vectored(&self, world: &mut SimWorld, parts: Vec<Bytes>) -> usize {
        self.queue_send_parts(world, parts)
    }

    fn available(&self) -> usize {
        self.inner.borrow().recv_buf.len()
    }

    fn recv(&self, _world: &mut SimWorld, max: usize) -> Vec<u8> {
        if max == 0 || self.available() == 0 {
            return Vec::new();
        }
        self.inner.borrow_mut().recv_buf.read_into(max)
    }

    fn recv_bytes(&self, _world: &mut SimWorld, max: usize) -> Bytes {
        self.inner.borrow_mut().recv_buf.pop_chunk(max)
    }

    fn is_established(&self) -> bool {
        self.inner.borrow().conns.iter().all(|c| c.is_established())
    }

    fn is_finished(&self) -> bool {
        let st = self.inner.borrow();
        st.conns.iter().all(|c| c.is_finished()) && st.recv_buf.is_empty() && st.chunks.is_empty()
    }

    fn close(&self, world: &mut SimWorld) {
        self.flush(world);
        let conns = {
            let mut st = self.inner.borrow_mut();
            st.closed = true;
            st.conns.clone()
        };
        for c in conns {
            c.close(world);
        }
    }

    fn set_readable_callback(&self, cb: ReadableCallback) {
        self.inner.borrow_mut().readable_cb = Some(cb);
    }

    fn bytes_acked(&self) -> u64 {
        self.inner
            .borrow()
            .conns
            .iter()
            .map(|c| c.bytes_acked())
            .sum()
    }

    fn bytes_unacked(&self) -> u64 {
        let st = self.inner.borrow();
        st.conns.iter().map(|c| c.bytes_unacked()).sum::<u64>() + st.pending_send.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::ByteStreamExt;
    use simnet::{topology, NetworkSpec};

    fn ps_pair(
        spec: NetworkSpec,
        config: ParallelStreamConfig,
    ) -> (
        SimWorld,
        ParallelStream,
        Rc<RefCell<Option<ParallelStream>>>,
    ) {
        let mut p = topology::pair_over(17, spec);
        let sa = TcpStack::new(&mut p.world, p.a);
        let sb = TcpStack::new(&mut p.world, p.b);
        let server: Rc<RefCell<Option<ParallelStream>>> = Rc::new(RefCell::new(None));
        let s2 = server.clone();
        ParallelStream::listen(&mut p.world, &sb, 2811, config.clone(), move |_w, ps| {
            *s2.borrow_mut() = Some(ps);
        });
        let client = ParallelStream::connect(&mut p.world, &sa, p.network, p.b, 2811, config);
        p.world.run();
        assert!(server.borrow().is_some(), "bundle should be accepted");
        (p.world, client, server)
    }

    #[test]
    fn bundle_establishes_with_requested_width() {
        let cfg = ParallelStreamConfig {
            n_streams: 4,
            chunk_size: 8 * 1024,
        };
        let (_w, client, server) = ps_pair(NetworkSpec::ethernet_100(), cfg);
        assert_eq!(client.width(), 4);
        assert_eq!(server.borrow().as_ref().unwrap().width(), 4);
        assert!(client.is_established());
    }

    #[test]
    fn data_is_reassembled_in_order() {
        let cfg = ParallelStreamConfig {
            n_streams: 3,
            chunk_size: 1000,
        };
        let (mut world, client, server) = ps_pair(NetworkSpec::ethernet_100(), cfg);
        let data: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
        client.send_all(&mut world, &data);
        world.run();
        let server = server.borrow().clone().unwrap();
        assert_eq!(server.recv_all(&mut world), data);
    }

    #[test]
    fn single_stream_bundle_degenerates_to_tcp() {
        let cfg = ParallelStreamConfig {
            n_streams: 1,
            chunk_size: 4096,
        };
        let (mut world, client, server) = ps_pair(NetworkSpec::ethernet_100(), cfg);
        client.send_all(&mut world, b"just one lane");
        world.run();
        let server = server.borrow().clone().unwrap();
        assert_eq!(server.recv_all(&mut world), b"just one lane");
    }

    #[test]
    fn parallel_streams_beat_single_stream_on_lossy_wan() {
        let size = 6_000_000usize;
        let measure = |n_streams: usize| -> f64 {
            let cfg = ParallelStreamConfig {
                n_streams,
                chunk_size: 64 * 1024,
            };
            let (mut world, client, server) = ps_pair(NetworkSpec::vthd_wan(), cfg);
            let server = server.borrow().clone().unwrap();
            let received = Rc::new(RefCell::new(0usize));
            let r = received.clone();
            let s2 = server.clone();
            server.set_readable_callback(Box::new(move |world| {
                *r.borrow_mut() += s2.recv_all(world).len();
            }));
            let start = world.now();
            client.send_all(&mut world, &vec![0u8; size]);
            world.run_while(|| *received.borrow() < size);
            let secs = world.now().since(start).as_secs_f64();
            size as f64 / secs / 1e6
        };
        let single = measure(1);
        let parallel = measure(4);
        assert!(
            parallel > single * 1.15,
            "4 parallel streams ({parallel:.2} MB/s) should beat one stream ({single:.2} MB/s)"
        );
        assert!(
            parallel <= 12.6,
            "cannot exceed the access link: {parallel:.2} MB/s"
        );
    }

    #[test]
    fn bidirectional_traffic() {
        let cfg = ParallelStreamConfig {
            n_streams: 2,
            chunk_size: 2048,
        };
        let (mut world, client, server) = ps_pair(NetworkSpec::ethernet_100(), cfg);
        let server = server.borrow().clone().unwrap();
        client.send_all(&mut world, b"request");
        server.send_all(&mut world, b"response");
        world.run();
        assert_eq!(server.recv_all(&mut world), b"request");
        assert_eq!(client.recv_all(&mut world), b"response");
    }
}
