//! The byte-stream abstraction shared by every distributed-oriented
//! transport in this crate.
//!
//! `ByteStream` is what the PadicoTM `SysIO` arbitration layer and the
//! `VLink` abstraction consume: a connected, ordered (unless the protocol
//! says otherwise, like VRP) flow of bytes with non-blocking send/receive
//! and a readability callback — the virtualized equivalent of a socket.

use bytes::Bytes;
use simnet::SimWorld;

/// Callback invoked when a stream becomes readable (new data or EOF) or
/// when its connection state changes.
pub type ReadableCallback = Box<dyn FnMut(&mut SimWorld)>;

/// A connected byte stream over the simulated network.
///
/// All methods are non-blocking: `send` queues data (possibly accepting
/// only part of it when buffers are full) and `recv` returns whatever has
/// already arrived. Completion is driven by running the simulation world.
pub trait ByteStream {
    /// Queues bytes for transmission. Returns how many bytes were accepted.
    fn send(&self, world: &mut SimWorld, data: &[u8]) -> usize;

    /// Number of bytes currently available to read.
    fn available(&self) -> usize;

    /// Reads up to `max` bytes of already-received data.
    fn recv(&self, world: &mut SimWorld, max: usize) -> Vec<u8>;

    /// Zero-copy variant of [`ByteStream::recv`]: returns one contiguous
    /// received segment of at most `max` bytes, sharing the underlying
    /// storage instead of copying into a fresh `Vec`.
    ///
    /// Unlike `recv`, this may return *fewer* bytes than are available
    /// (one internal segment at a time); callers that want to drain the
    /// stream call it in a loop until it returns an empty [`Bytes`].
    /// The default implementation falls back to `recv` (one copy).
    fn recv_bytes(&self, world: &mut SimWorld, max: usize) -> Bytes {
        Bytes::from(self.recv(world, max))
    }

    /// Zero-copy variant of [`ByteStream::send`]: queues an owned
    /// refcounted chunk. Transports that buffer segments accept it with a
    /// refcount bump; the default implementation falls back to `send`
    /// (one copy). Returns how many bytes were accepted.
    fn send_bytes(&self, world: &mut SimWorld, data: Bytes) -> usize {
        self.send(world, &data)
    }

    /// Queues several chunks as one logical write. Segmenting transports
    /// override this so all parts enter the buffer before transmission is
    /// pumped — a framing header and its payload then pack into wire
    /// segments exactly as if they had been one contiguous buffer, while
    /// each part still crosses by refcount. The default queues the parts
    /// one by one.
    fn send_bytes_vectored(&self, world: &mut SimWorld, parts: Vec<Bytes>) -> usize {
        parts.into_iter().map(|p| self.send_bytes(world, p)).sum()
    }

    /// True once the connection is established end-to-end.
    fn is_established(&self) -> bool;

    /// True once the peer has closed and all data has been read.
    fn is_finished(&self) -> bool;

    /// Starts an orderly close (pending data is still delivered).
    fn close(&self, world: &mut SimWorld);

    /// Registers a callback run (as a simulation event) whenever new data
    /// becomes readable or the stream finishes. Replaces any previous
    /// callback.
    fn set_readable_callback(&self, cb: ReadableCallback);

    /// Total payload bytes successfully acknowledged end-to-end so far
    /// (used by experiments to compute goodput).
    fn bytes_acked(&self) -> u64;

    /// Bytes queued for sending but not yet acknowledged.
    fn bytes_unacked(&self) -> u64;
}

/// Convenience helpers for driving a stream from tests and experiments.
pub trait ByteStreamExt: ByteStream {
    /// Reads everything currently available.
    fn recv_all(&self, world: &mut SimWorld) -> Vec<u8> {
        self.recv(world, usize::MAX)
    }

    /// Queues the whole buffer, asserting it was fully accepted (only valid
    /// for streams with unbounded send buffers).
    fn send_all(&self, world: &mut SimWorld, data: &[u8]) {
        let n = self.send(world, data);
        assert_eq!(
            n,
            data.len(),
            "send buffer refused {} bytes",
            data.len() - n
        );
    }
}

impl<T: ByteStream + ?Sized> ByteStreamExt for T {}
