//! Wire formats for the simulated IP transports.
//!
//! Segments are really serialized into frame payloads (rather than passed
//! as side-channel structs) so that header bytes occupy simulated wire time
//! exactly like they would on a real network.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Size of the encoded segment header, in bytes.
pub const SEGMENT_HEADER_BYTES: usize = 29;

/// Extra on-wire bytes accounted per segment so that the total protocol
/// overhead matches a typical TCP/IP header (40 bytes).
pub const EXTRA_HEADER_BYTES: u32 = 40 - SEGMENT_HEADER_BYTES as u32;

/// Segment control flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SegFlags {
    /// Connection request.
    pub syn: bool,
    /// Acknowledgement field is valid.
    pub ack: bool,
    /// Sender has finished sending.
    pub fin: bool,
    /// Connection reset.
    pub rst: bool,
}

impl SegFlags {
    fn to_byte(self) -> u8 {
        (self.syn as u8) | (self.ack as u8) << 1 | (self.fin as u8) << 2 | (self.rst as u8) << 3
    }

    fn from_byte(b: u8) -> SegFlags {
        SegFlags {
            syn: b & 1 != 0,
            ack: b & 2 != 0,
            fin: b & 4 != 0,
            rst: b & 8 != 0,
        }
    }
}

/// A transport segment (used by both the TCP and VRP state machines; VRP
/// reuses the sequence/ack fields with its own semantics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte (or packet index for VRP).
    pub seq: u64,
    /// Cumulative acknowledgement (next expected byte / packet).
    pub ack: u64,
    /// Control flags.
    pub flags: SegFlags,
    /// Advertised receive window, in bytes.
    pub window: u32,
    /// Payload carried by this segment.
    pub data: Bytes,
}

impl Segment {
    /// Encodes the segment into a frame payload.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(SEGMENT_HEADER_BYTES + self.data.len());
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u64(self.seq);
        buf.put_u64(self.ack);
        buf.put_u8(self.flags.to_byte());
        buf.put_u32(self.window);
        buf.put_u32(self.data.len() as u32);
        buf.extend_from_slice(&self.data);
        buf.freeze()
    }

    /// Decodes a segment from a frame payload. Returns `None` on a
    /// malformed payload.
    pub fn decode(mut payload: Bytes) -> Option<Segment> {
        if payload.len() < SEGMENT_HEADER_BYTES {
            return None;
        }
        let src_port = payload.get_u16();
        let dst_port = payload.get_u16();
        let seq = payload.get_u64();
        let ack = payload.get_u64();
        let flags = SegFlags::from_byte(payload.get_u8());
        let window = payload.get_u32();
        let len = payload.get_u32() as usize;
        if payload.len() < len {
            return None;
        }
        let data = payload.split_to(len);
        Some(Segment {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window,
            data,
        })
    }

    /// A pure acknowledgement segment (no payload).
    pub fn ack_only(src_port: u16, dst_port: u16, seq: u64, ack: u64, window: u32) -> Segment {
        Segment {
            src_port,
            dst_port,
            seq,
            ack,
            flags: SegFlags {
                ack: true,
                ..Default::default()
            },
            window,
            data: Bytes::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_size_constant_matches_encoding() {
        let seg = Segment::ack_only(1, 2, 3, 4, 5);
        assert_eq!(seg.encode().len(), SEGMENT_HEADER_BYTES);
        assert_eq!(SEGMENT_HEADER_BYTES as u32 + EXTRA_HEADER_BYTES, 40);
    }

    #[test]
    fn roundtrip_with_data() {
        let seg = Segment {
            src_port: 4242,
            dst_port: 80,
            seq: 123_456_789_012,
            ack: 987_654_321,
            flags: SegFlags {
                syn: true,
                ack: true,
                fin: false,
                rst: false,
            },
            window: 65_535,
            data: Bytes::from_static(b"hello, grid"),
        };
        let decoded = Segment::decode(seg.encode()).unwrap();
        assert_eq!(decoded, seg);
    }

    #[test]
    fn roundtrip_all_flag_combinations() {
        for bits in 0..16u8 {
            let flags = SegFlags::from_byte(bits);
            assert_eq!(flags.to_byte(), bits & 0x0f);
            let seg = Segment {
                src_port: 1,
                dst_port: 2,
                seq: 0,
                ack: 0,
                flags,
                window: 0,
                data: Bytes::new(),
            };
            assert_eq!(Segment::decode(seg.encode()).unwrap().flags, flags);
        }
    }

    #[test]
    fn decode_rejects_truncated_payloads() {
        let seg = Segment {
            src_port: 1,
            dst_port: 2,
            seq: 0,
            ack: 0,
            flags: SegFlags::default(),
            window: 0,
            data: Bytes::from_static(b"0123456789"),
        };
        let encoded = seg.encode();
        assert!(Segment::decode(encoded.slice(0..10)).is_none());
        assert!(Segment::decode(encoded.slice(0..SEGMENT_HEADER_BYTES + 3)).is_none());
        assert!(Segment::decode(Bytes::new()).is_none());
    }
}
