//! Simulated TCP: a reliable, ordered byte stream with slow start, AIMD
//! congestion avoidance, fast retransmit and retransmission timeouts.
//!
//! The paper's distributed-oriented results all sit on TCP behaviour:
//! * on the VTHD WAN, rare background loss keeps a single TCP stream well
//!   below the access-link bandwidth (which is why Parallel Streams help);
//! * on the lossy trans-continental link, TCP collapses to a fraction of
//!   the link rate (which is why VRP wins by ~3×);
//! * on a LAN, TCP's protocol efficiency gives the ≈11 MB/s reference curve
//!   of Figure 3.
//!
//! The implementation is a classic Reno-style state machine, simplified
//! where simplification does not change those behaviours (no SACK, no
//! delayed ACKs, no Nagle, sequence numbers count data bytes only).

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use bytes::Bytes;
use simnet::{EventId, Frame, NetworkId, NodeId, ProtoId, SimDuration, SimTime, SimWorld};

use crate::segbuf::SegBuf;
use crate::stream::{ByteStream, ReadableCallback};
use crate::wire::{SegFlags, Segment, EXTRA_HEADER_BYTES};

/// Tuning parameters of a TCP stack.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Receive window in bytes advertised to the peer (the era's window
    /// scaling allows more than 64 kB).
    pub recv_window: u32,
    /// Initial congestion window, in segments.
    pub initial_cwnd_segments: u32,
    /// Lower bound on the retransmission timeout.
    pub min_rto: SimDuration,
    /// Upper bound on the retransmission timeout.
    pub max_rto: SimDuration,
    /// Initial RTO used before any RTT sample exists.
    pub initial_rto: SimDuration,
    /// Maximum bytes buffered on the send side (unsent + unacknowledged).
    pub send_buffer: usize,
    /// Override of the MSS; by default it is derived from the network MTU.
    pub mss_override: Option<usize>,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            recv_window: 256 * 1024,
            initial_cwnd_segments: 2,
            min_rto: SimDuration::from_millis(200),
            max_rto: SimDuration::from_secs(60),
            initial_rto: SimDuration::from_secs(1),
            send_buffer: usize::MAX,
            mss_override: None,
        }
    }
}

/// Connection state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TcpState {
    SynSent,
    SynReceived,
    Established,
    /// We sent our FIN (data may still be in flight).
    FinSent,
    /// Fully closed.
    Closed,
}

/// Counters exposed for experiments and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpConnStats {
    /// Data bytes acknowledged by the peer.
    pub bytes_acked: u64,
    /// Data bytes delivered in order to the application.
    pub bytes_delivered: u64,
    /// Segments retransmitted (fast retransmit or timeout).
    pub retransmitted_segments: u64,
    /// Retransmission timeouts taken.
    pub timeouts: u64,
    /// Fast retransmits triggered by duplicate ACKs.
    pub fast_retransmits: u64,
}

struct ConnInner {
    // Identity.
    local_node: NodeId,
    local_port: u16,
    remote_node: NodeId,
    remote_port: u16,
    network: NetworkId,
    config: TcpConfig,
    mss: usize,
    state: TcpState,

    // Sender. Queued and unacknowledged payload are segment queues: data
    // enters as refcounted chunks and is sliced, never copied per byte.
    send_buf: SegBuf,
    retx_buf: SegBuf,
    snd_una: u64,
    snd_nxt: u64,
    cwnd: f64,
    ssthresh: f64,
    dup_acks: u32,
    peer_window: u32,
    fin_queued: bool,
    fin_seq: Option<u64>,

    // RTT estimation (Jacobson/Karels, Karn's rule).
    srtt: Option<f64>,
    rttvar: f64,
    rto: SimDuration,
    rtt_sample: Option<(u64, SimTime)>,
    rto_timer: Option<EventId>,

    // Receiver.
    rcv_nxt: u64,
    ooo: BTreeMap<u64, Bytes>,
    recv_buf: SegBuf,
    peer_fin: Option<u64>,
    advertised_zero_window: bool,

    // Application interface.
    readable_cb: Option<ReadableCallback>,
    notify_pending: bool,
    #[allow(clippy::type_complexity)]
    established_cb: Option<Box<dyn FnMut(&mut SimWorld)>>,

    stats: TcpConnStats,
}

impl ConnInner {
    fn effective_window(&self) -> u64 {
        (self.cwnd as u64)
            .min(self.peer_window as u64)
            .max(self.mss as u64)
    }

    fn in_flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    fn recv_window(&self) -> u32 {
        let used = self.recv_buf.len() + self.ooo.values().map(|b| b.len()).sum::<usize>();
        self.config.recv_window.saturating_sub(used as u32)
    }
}

/// Handle to a TCP connection. Cloning the handle refers to the same
/// connection.
#[derive(Clone)]
pub struct TcpConn {
    inner: Rc<RefCell<ConnInner>>,
}

/// The per-node TCP implementation: owns every connection and listener on
/// its node and demultiplexes incoming segments to them.
#[derive(Clone)]
pub struct TcpStack {
    inner: Rc<RefCell<StackInner>>,
}

type ConnKey = (u16, NodeId, u16);
type AcceptCallback = Box<dyn FnMut(&mut SimWorld, TcpConn)>;

struct StackInner {
    node: NodeId,
    config: TcpConfig,
    listeners: HashMap<u16, AcceptCallback>,
    conns: HashMap<ConnKey, TcpConn>,
    next_ephemeral: u16,
}

impl TcpStack {
    /// Creates the TCP stack for `node` with default configuration and
    /// registers its frame handler.
    pub fn new(world: &mut SimWorld, node: NodeId) -> TcpStack {
        Self::with_config(world, node, TcpConfig::default())
    }

    /// Creates the TCP stack for `node` with an explicit configuration.
    pub fn with_config(world: &mut SimWorld, node: NodeId, config: TcpConfig) -> TcpStack {
        let stack = TcpStack {
            inner: Rc::new(RefCell::new(StackInner {
                node,
                config,
                listeners: HashMap::new(),
                conns: HashMap::new(),
                next_ephemeral: 32_768,
            })),
        };
        let h = stack.clone();
        world.register_handler(node, ProtoId::TCP, move |world, net, frame| {
            h.on_frame(world, net, frame);
        });
        stack
    }

    /// Node this stack belongs to.
    pub fn node(&self) -> NodeId {
        self.inner.borrow().node
    }

    /// Starts listening on `port`; `on_accept` is invoked with each newly
    /// established incoming connection. Returns `false` if the port is
    /// already listening.
    pub fn listen(
        &self,
        port: u16,
        on_accept: impl FnMut(&mut SimWorld, TcpConn) + 'static,
    ) -> bool {
        let mut inner = self.inner.borrow_mut();
        if inner.listeners.contains_key(&port) {
            return false;
        }
        inner.listeners.insert(port, Box::new(on_accept));
        true
    }

    /// Stops listening on `port`.
    pub fn unlisten(&self, port: u16) {
        self.inner.borrow_mut().listeners.remove(&port);
    }

    /// Opens a connection to `remote_node:remote_port` over `network`. Data
    /// may be queued immediately; it is flushed once the handshake
    /// completes.
    pub fn connect(
        &self,
        world: &mut SimWorld,
        network: NetworkId,
        remote_node: NodeId,
        remote_port: u16,
    ) -> TcpConn {
        let (node, config, local_port) = {
            let mut inner = self.inner.borrow_mut();
            let port = loop {
                let p = inner.next_ephemeral;
                inner.next_ephemeral = inner.next_ephemeral.wrapping_add(1).max(32_768);
                if !inner.conns.contains_key(&(p, remote_node, remote_port)) {
                    break p;
                }
            };
            (inner.node, inner.config.clone(), port)
        };
        let mss = Self::mss_for(world, network, &config);
        let conn = TcpConn::new(
            node,
            local_port,
            remote_node,
            remote_port,
            network,
            config,
            mss,
            TcpState::SynSent,
        );
        self.inner
            .borrow_mut()
            .conns
            .insert((local_port, remote_node, remote_port), conn.clone());
        conn.send_syn(world, false);
        conn.arm_rto(world);
        conn
    }

    fn mss_for(world: &SimWorld, network: NetworkId, config: &TcpConfig) -> usize {
        config.mss_override.unwrap_or_else(|| {
            world
                .network(network)
                .spec
                .mtu
                .saturating_sub(crate::wire::SEGMENT_HEADER_BYTES + EXTRA_HEADER_BYTES as usize)
                .max(64)
        })
    }

    fn on_frame(&self, world: &mut SimWorld, network: NetworkId, frame: Frame) {
        let Some(seg) = Segment::decode(frame.payload.clone()) else {
            return;
        };
        let key = (seg.dst_port, frame.src, seg.src_port);
        let existing = self.inner.borrow().conns.get(&key).cloned();
        if let Some(conn) = existing {
            conn.on_segment(world, seg);
            if conn.inner.borrow().state == TcpState::Closed {
                // Reap fully closed connections lazily.
                self.inner.borrow_mut().conns.remove(&key);
            }
            return;
        }
        // No connection: maybe a listener can accept a SYN.
        if seg.flags.syn && !seg.flags.ack {
            let has_listener = self.inner.borrow().listeners.contains_key(&seg.dst_port);
            if has_listener {
                let (node, config) = {
                    let inner = self.inner.borrow();
                    (inner.node, inner.config.clone())
                };
                let mss = Self::mss_for(world, network, &config);
                let conn = TcpConn::new(
                    node,
                    seg.dst_port,
                    frame.src,
                    seg.src_port,
                    network,
                    config,
                    mss,
                    TcpState::SynReceived,
                );
                self.inner.borrow_mut().conns.insert(key, conn.clone());
                conn.send_syn(world, true);
                conn.arm_rto(world);
                // The accept callback fires once the handshake completes;
                // remember the connection so we can hand it out then.
                let stack = self.clone();
                let conn_for_cb = conn.clone();
                let port = seg.dst_port;
                conn.set_established_callback(move |world| {
                    let cb = stack.inner.borrow_mut().listeners.remove(&port);
                    if let Some(mut cb) = cb {
                        cb(world, conn_for_cb.clone());
                        let mut inner = stack.inner.borrow_mut();
                        inner.listeners.entry(port).or_insert(cb);
                    }
                    // Data may already have been buffered before the accept
                    // callback installed its readable callback (the first
                    // data segment can race the handshake completion);
                    // re-announce it so it is not lost.
                    conn_for_cb.announce_readable(world);
                });
            }
        }
        // Anything else (stray segment for an unknown connection) is dropped.
    }
}

impl TcpConn {
    #[allow(clippy::too_many_arguments)]
    fn new(
        local_node: NodeId,
        local_port: u16,
        remote_node: NodeId,
        remote_port: u16,
        network: NetworkId,
        config: TcpConfig,
        mss: usize,
        state: TcpState,
    ) -> TcpConn {
        let cwnd = (config.initial_cwnd_segments as usize * mss) as f64;
        let initial_rto = config.initial_rto;
        TcpConn {
            inner: Rc::new(RefCell::new(ConnInner {
                local_node,
                local_port,
                remote_node,
                remote_port,
                network,
                config,
                mss,
                state,
                send_buf: SegBuf::new(),
                retx_buf: SegBuf::new(),
                snd_una: 0,
                snd_nxt: 0,
                cwnd,
                ssthresh: f64::MAX,
                dup_acks: 0,
                peer_window: u32::MAX,
                fin_queued: false,
                fin_seq: None,
                srtt: None,
                rttvar: 0.0,
                rto: initial_rto,
                rtt_sample: None,
                rto_timer: None,
                rcv_nxt: 0,
                ooo: BTreeMap::new(),
                recv_buf: SegBuf::new(),
                peer_fin: None,
                advertised_zero_window: false,
                readable_cb: None,
                notify_pending: false,
                established_cb: None,
                stats: TcpConnStats::default(),
            })),
        }
    }

    /// Local (node, port).
    pub fn local_addr(&self) -> (NodeId, u16) {
        let c = self.inner.borrow();
        (c.local_node, c.local_port)
    }

    /// Remote (node, port).
    pub fn remote_addr(&self) -> (NodeId, u16) {
        let c = self.inner.borrow();
        (c.remote_node, c.remote_port)
    }

    /// Network this connection runs over.
    pub fn network(&self) -> NetworkId {
        self.inner.borrow().network
    }

    /// Maximum segment size used by this connection.
    pub fn mss(&self) -> usize {
        self.inner.borrow().mss
    }

    /// Connection statistics.
    pub fn stats(&self) -> TcpConnStats {
        self.inner.borrow().stats
    }

    /// Current congestion window, in bytes (exposed for tests and the
    /// parallel-streams experiment analysis).
    pub fn cwnd(&self) -> u64 {
        self.inner.borrow().cwnd as u64
    }

    /// Registers a callback fired once the handshake completes.
    pub fn set_established_callback(&self, cb: impl FnMut(&mut SimWorld) + 'static) {
        self.inner.borrow_mut().established_cb = Some(Box::new(cb));
    }

    // ------------------------------------------------------------------ //
    // Segment transmission helpers
    // ------------------------------------------------------------------ //

    fn send_segment(&self, world: &mut SimWorld, seg: Segment) {
        let (src, dst, network) = {
            let c = self.inner.borrow();
            (c.local_node, c.remote_node, c.network)
        };
        let frame =
            Frame::new(src, dst, ProtoId::TCP, seg.encode()).with_header_bytes(EXTRA_HEADER_BYTES);
        // A full send queue at the network layer is not modelled (the
        // network applies backpressure through time, not through errors),
        // so the only possible errors here are topology mistakes, which are
        // programming errors.
        world
            .send_frame(network, frame)
            .expect("TCP connection over a misconfigured network");
    }

    fn send_syn(&self, world: &mut SimWorld, syn_ack: bool) {
        let seg = {
            let c = self.inner.borrow();
            Segment {
                src_port: c.local_port,
                dst_port: c.remote_port,
                seq: 0,
                ack: 0,
                flags: SegFlags {
                    syn: true,
                    ack: syn_ack,
                    ..Default::default()
                },
                window: c.recv_window(),
                data: Bytes::new(),
            }
        };
        self.send_segment(world, seg);
    }

    fn send_ack(&self, world: &mut SimWorld) {
        let seg = {
            let c = self.inner.borrow();
            Segment::ack_only(
                c.local_port,
                c.remote_port,
                c.snd_nxt,
                c.rcv_nxt,
                c.recv_window(),
            )
        };
        self.send_segment(world, seg);
    }

    /// Sends as much queued data as the congestion and flow-control windows
    /// allow.
    fn pump(&self, world: &mut SimWorld) {
        loop {
            let seg = {
                let mut c = self.inner.borrow_mut();
                if !matches!(c.state, TcpState::Established | TcpState::FinSent) {
                    return;
                }
                let window = c.effective_window();
                let in_flight = c.in_flight();
                if in_flight >= window {
                    return;
                }
                let budget = (window - in_flight) as usize;
                let fin_pending = c.fin_queued && c.send_buf.is_empty() && c.fin_seq.is_none();
                if c.send_buf.is_empty() && !fin_pending {
                    return;
                }
                let chunk = budget.min(c.mss).min(c.send_buf.len());
                // Zero-copy segmentation: the MSS-sized slice shares the
                // storage of the buffer the application queued.
                let data = c.send_buf.read_bytes(chunk);
                c.retx_buf.push_bytes(data.clone());
                let seq = c.snd_nxt;
                let mut flags = SegFlags {
                    ack: true,
                    ..Default::default()
                };
                c.snd_nxt += chunk as u64;
                // Piggy-back the FIN on the last data segment (or send it
                // alone) once the send buffer is drained.
                if c.fin_queued && c.send_buf.is_empty() && c.fin_seq.is_none() {
                    flags.fin = true;
                    c.fin_seq = Some(c.snd_nxt);
                    c.snd_nxt += 1;
                    if c.state == TcpState::Established {
                        c.state = TcpState::FinSent;
                    }
                }
                if c.rtt_sample.is_none() && chunk > 0 {
                    c.rtt_sample = Some((seq + chunk as u64, world.now()));
                }
                Segment {
                    src_port: c.local_port,
                    dst_port: c.remote_port,
                    seq,
                    ack: c.rcv_nxt,
                    flags,
                    window: c.recv_window(),
                    data,
                }
            };
            self.send_segment(world, seg);
            self.arm_rto(world);
        }
    }

    /// Retransmits one segment starting at `snd_una`.
    fn retransmit_head(&self, world: &mut SimWorld) {
        let seg = {
            let mut c = self.inner.borrow_mut();
            if c.snd_una >= c.snd_nxt {
                return;
            }
            let data_len = c.retx_buf.len().min(c.mss);
            let data = c.retx_buf.peek_bytes(data_len);
            let seq = c.snd_una;
            let mut flags = SegFlags {
                ack: true,
                ..Default::default()
            };
            // If the retransmitted range reaches the FIN, resend the flag.
            if let Some(fin_seq) = c.fin_seq {
                if seq + data_len as u64 >= fin_seq {
                    flags.fin = true;
                }
            }
            // Karn's rule: never time a retransmitted segment.
            c.rtt_sample = None;
            c.stats.retransmitted_segments += 1;
            Segment {
                src_port: c.local_port,
                dst_port: c.remote_port,
                seq,
                ack: c.rcv_nxt,
                flags,
                window: c.recv_window(),
                data,
            }
        };
        self.send_segment(world, seg);
    }

    // ------------------------------------------------------------------ //
    // Timers
    // ------------------------------------------------------------------ //

    fn arm_rto(&self, world: &mut SimWorld) {
        let (needs_timer, rto) = {
            let c = self.inner.borrow();
            let outstanding = c.snd_nxt > c.snd_una
                || matches!(c.state, TcpState::SynSent | TcpState::SynReceived);
            (outstanding && c.rto_timer.is_none(), c.rto)
        };
        if !needs_timer {
            return;
        }
        let conn = self.clone();
        let id = world.schedule_after(rto, move |world| {
            conn.on_rto(world);
        });
        self.inner.borrow_mut().rto_timer = Some(id);
    }

    fn cancel_rto(&self, world: &mut SimWorld) {
        if let Some(id) = self.inner.borrow_mut().rto_timer.take() {
            world.cancel(id);
        }
    }

    fn restart_rto(&self, world: &mut SimWorld) {
        self.cancel_rto(world);
        self.arm_rto(world);
    }

    fn on_rto(&self, world: &mut SimWorld) {
        let action = {
            let mut c = self.inner.borrow_mut();
            c.rto_timer = None;
            match c.state {
                TcpState::Closed => return,
                TcpState::SynSent | TcpState::SynReceived => {
                    c.rto = (c.rto * 2).min(c.config.max_rto);
                    c.stats.timeouts += 1;
                    Some(c.state)
                }
                _ => {
                    if c.snd_nxt == c.snd_una {
                        None
                    } else {
                        // Multiplicative decrease + slow start restart.
                        let flight = c.in_flight() as f64;
                        c.ssthresh = (flight / 2.0).max(2.0 * c.mss as f64);
                        c.cwnd = c.mss as f64;
                        c.dup_acks = 0;
                        c.rto = (c.rto * 2).min(c.config.max_rto);
                        c.stats.timeouts += 1;
                        Some(c.state)
                    }
                }
            }
        };
        match action {
            None => {}
            Some(TcpState::SynSent) => self.send_syn(world, false),
            Some(TcpState::SynReceived) => self.send_syn(world, true),
            Some(_) => self.retransmit_head(world),
        }
        self.arm_rto(world);
    }

    // ------------------------------------------------------------------ //
    // Segment reception
    // ------------------------------------------------------------------ //

    fn on_segment(&self, world: &mut SimWorld, seg: Segment) {
        let mut became_established = false;
        let mut should_ack = false;
        let mut should_pump = false;
        let mut notify_app = false;

        {
            let mut c = self.inner.borrow_mut();
            if c.state == TcpState::Closed {
                return;
            }

            // --- Handshake handling -------------------------------------
            match c.state {
                TcpState::SynSent if seg.flags.syn && seg.flags.ack => {
                    c.state = TcpState::Established;
                    c.peer_window = seg.window;
                    became_established = true;
                    should_ack = true;
                    should_pump = true;
                }
                TcpState::SynReceived => {
                    if seg.flags.ack && !seg.flags.syn {
                        c.state = TcpState::Established;
                        c.peer_window = seg.window;
                        became_established = true;
                        should_pump = true;
                    } else if seg.flags.syn && !seg.flags.ack {
                        // Duplicate SYN: our SYN-ACK was lost; resend below.
                        should_ack = false;
                    }
                }
                _ => {}
            }

            // --- ACK processing ------------------------------------------
            if seg.flags.ack && matches!(c.state, TcpState::Established | TcpState::FinSent) {
                c.peer_window = seg.window;
                if seg.ack > c.snd_una {
                    let mut acked = seg.ack - c.snd_una;
                    // A FIN occupies one unit of sequence space but no bytes.
                    if let Some(fin_seq) = c.fin_seq {
                        if seg.ack > fin_seq {
                            acked -= 1;
                        }
                    }
                    let drop = (acked as usize).min(c.retx_buf.len());
                    c.retx_buf.consume(drop);
                    c.stats.bytes_acked += acked;
                    c.snd_una = seg.ack;
                    c.dup_acks = 0;

                    // RTT sample (Jacobson/Karels).
                    if let Some((sample_seq, sent_at)) = c.rtt_sample {
                        if seg.ack >= sample_seq {
                            let rtt = world.now().since(sent_at).as_secs_f64();
                            match c.srtt {
                                None => {
                                    c.srtt = Some(rtt);
                                    c.rttvar = rtt / 2.0;
                                }
                                Some(srtt) => {
                                    let err = rtt - srtt;
                                    c.rttvar = 0.75 * c.rttvar + 0.25 * err.abs();
                                    c.srtt = Some(srtt + 0.125 * err);
                                }
                            }
                            let rto = SimDuration::from_secs_f64(
                                c.srtt.unwrap() + 4.0 * c.rttvar.max(0.000_1),
                            );
                            c.rto = rto.max(c.config.min_rto).min(c.config.max_rto);
                            c.rtt_sample = None;
                        }
                    }

                    // Congestion window growth.
                    if c.cwnd < c.ssthresh {
                        c.cwnd += (acked as f64).min(c.mss as f64);
                    } else {
                        c.cwnd += (c.mss as f64) * (c.mss as f64) / c.cwnd;
                    }
                    should_pump = true;

                    // Everything acknowledged (including a FIN we sent)?
                    if c.snd_una >= c.snd_nxt
                        && c.state == TcpState::FinSent
                        && c.fin_seq.is_some()
                        && c.peer_fin.is_some()
                    {
                        c.state = TcpState::Closed;
                    }
                } else if seg.ack == c.snd_una
                    && seg.data.is_empty()
                    && !seg.flags.syn
                    && !seg.flags.fin
                    && c.snd_nxt > c.snd_una
                {
                    c.dup_acks += 1;
                    if c.dup_acks == 3 {
                        let flight = c.in_flight() as f64;
                        c.ssthresh = (flight / 2.0).max(2.0 * c.mss as f64);
                        c.cwnd = c.ssthresh;
                        c.stats.fast_retransmits += 1;
                        // Retransmit outside the borrow below.
                    }
                }
            }

            // --- Data and FIN reception ----------------------------------
            let seg_has_payload = !seg.data.is_empty() || seg.flags.fin;
            if seg_has_payload && matches!(c.state, TcpState::Established | TcpState::FinSent) {
                let seq = seg.seq;
                let len = seg.data.len() as u64;
                if seg.flags.fin {
                    c.peer_fin = Some(seq + len);
                }
                if seq <= c.rcv_nxt {
                    if len > 0 && seq + len > c.rcv_nxt {
                        let skip = (c.rcv_nxt - seq) as usize;
                        // The arriving segment's storage is shared, not
                        // copied, all the way to the application read.
                        c.recv_buf.push_bytes(seg.data.slice(skip..));
                        c.rcv_nxt = seq + len;
                        c.stats.bytes_delivered += (len as usize - skip) as u64;
                        notify_app = true;
                    }
                    // Drain any out-of-order segments that are now in order.
                    #[allow(clippy::while_let_loop)]
                    loop {
                        let Some((&oseq, _)) = c.ooo.iter().next() else {
                            break;
                        };
                        if oseq > c.rcv_nxt {
                            break;
                        }
                        let (oseq, odata) = c.ooo.pop_first().expect("peeked");
                        let olen = odata.len() as u64;
                        if oseq + olen > c.rcv_nxt {
                            let skip = (c.rcv_nxt - oseq) as usize;
                            c.recv_buf.push_bytes(odata.slice(skip..));
                            c.stats.bytes_delivered += (olen as usize - skip) as u64;
                            c.rcv_nxt = oseq + olen;
                            notify_app = true;
                        }
                    }
                    // Account the peer's FIN once all data before it arrived.
                    if let Some(fin_at) = c.peer_fin {
                        if c.rcv_nxt == fin_at {
                            c.rcv_nxt = fin_at + 1;
                            notify_app = true;
                            if c.state == TcpState::FinSent && c.snd_una >= c.snd_nxt {
                                c.state = TcpState::Closed;
                            }
                        }
                    }
                } else if len > 0 {
                    c.ooo.entry(seq).or_insert(seg.data.clone());
                }
                should_ack = true;
            }

            c.advertised_zero_window = c.recv_window() < c.mss as u32;
        }

        // --- Actions that need the borrow released ----------------------
        let fast_retx = {
            let c = self.inner.borrow();
            c.dup_acks == 3
        };
        if fast_retx {
            // Mark so we only retransmit once per dup-ack burst.
            self.inner.borrow_mut().dup_acks = 4;
            self.retransmit_head(world);
        }

        if became_established {
            let cb = self.inner.borrow_mut().established_cb.take();
            if let Some(mut cb) = cb {
                cb(world);
            }
        }
        if should_ack {
            self.send_ack(world);
        }
        if should_pump {
            self.restart_rto(world);
            self.pump(world);
        }
        // If nothing is in flight any more, stop the timer.
        {
            let idle = {
                let c = self.inner.borrow();
                c.snd_nxt == c.snd_una
                    && !matches!(c.state, TcpState::SynSent | TcpState::SynReceived)
            };
            if idle {
                self.cancel_rto(world);
            }
        }
        if notify_app {
            self.schedule_readable_notification(world);
        }
    }

    /// Re-announces already-buffered data (or EOF) to the readable
    /// callback. Accept paths that install the callback asynchronously —
    /// after data may already have arrived — call this to avoid losing the
    /// only readability event.
    pub fn announce_readable(&self, world: &mut SimWorld) {
        if self.available() > 0 || self.is_finished() {
            self.schedule_readable_notification(world);
        }
    }

    fn schedule_readable_notification(&self, world: &mut SimWorld) {
        let should_schedule = {
            let mut c = self.inner.borrow_mut();
            if c.readable_cb.is_some() && !c.notify_pending {
                c.notify_pending = true;
                true
            } else {
                false
            }
        };
        if should_schedule {
            let conn = self.clone();
            world.schedule_after(SimDuration::ZERO, move |world| {
                let cb = {
                    let mut c = conn.inner.borrow_mut();
                    c.notify_pending = false;
                    c.readable_cb.take()
                };
                if let Some(mut cb) = cb {
                    cb(world);
                    let mut c = conn.inner.borrow_mut();
                    if c.readable_cb.is_none() {
                        c.readable_cb = Some(cb);
                    }
                }
            });
        }
    }
}

impl TcpConn {
    /// Queues owned chunks on the send side (refcount bumps, no copy),
    /// bounded by the configured send buffer, then pumps once. Shared by
    /// `send`, `send_bytes` and `send_bytes_vectored`: all parts enter the
    /// buffer before segmentation, so they pack into MSS-sized segments
    /// exactly like one contiguous write.
    fn queue_send_parts(&self, world: &mut SimWorld, parts: Vec<Bytes>) -> usize {
        let accepted = {
            let mut c = self.inner.borrow_mut();
            if matches!(c.state, TcpState::Closed) || c.fin_queued {
                return 0;
            }
            let mut room = c
                .config
                .send_buffer
                .saturating_sub(c.send_buf.len() + c.retx_buf.len());
            let mut accepted = 0;
            for data in parts {
                let n = room.min(data.len());
                if n > 0 {
                    c.send_buf.push_bytes(if n == data.len() {
                        data
                    } else {
                        data.slice(..n)
                    });
                }
                room -= n;
                accepted += n;
            }
            accepted
        };
        if accepted > 0 {
            self.pump(world);
        }
        accepted
    }

    /// Sends a window update if the receive window just reopened.
    fn maybe_reopen_window(&self, world: &mut SimWorld) {
        let opened = {
            let mut c = self.inner.borrow_mut();
            let opened = c.advertised_zero_window && c.recv_window() >= c.mss as u32;
            if opened {
                c.advertised_zero_window = false;
            }
            opened
        };
        if opened {
            // Window update so a stalled sender can resume.
            self.send_ack(world);
        }
    }
}

impl ByteStream for TcpConn {
    fn send(&self, world: &mut SimWorld, data: &[u8]) -> usize {
        if data.is_empty() {
            return 0;
        }
        self.queue_send_parts(world, vec![Bytes::copy_from_slice(data)])
    }

    fn send_bytes(&self, world: &mut SimWorld, data: Bytes) -> usize {
        self.queue_send_parts(world, vec![data])
    }

    fn send_bytes_vectored(&self, world: &mut SimWorld, parts: Vec<Bytes>) -> usize {
        self.queue_send_parts(world, parts)
    }

    fn available(&self) -> usize {
        self.inner.borrow().recv_buf.len()
    }

    fn recv(&self, world: &mut SimWorld, max: usize) -> Vec<u8> {
        if max == 0 || self.available() == 0 {
            return Vec::new();
        }
        let data = self.inner.borrow_mut().recv_buf.read_into(max);
        self.maybe_reopen_window(world);
        data
    }

    fn recv_bytes(&self, world: &mut SimWorld, max: usize) -> Bytes {
        if max == 0 || self.available() == 0 {
            return Bytes::new();
        }
        let data = self.inner.borrow_mut().recv_buf.pop_chunk(max);
        self.maybe_reopen_window(world);
        data
    }

    fn is_established(&self) -> bool {
        matches!(
            self.inner.borrow().state,
            TcpState::Established | TcpState::FinSent
        )
    }

    fn is_finished(&self) -> bool {
        let c = self.inner.borrow();
        (c.peer_fin.is_some() && c.recv_buf.is_empty() && c.ooo.is_empty())
            || c.state == TcpState::Closed
    }

    fn close(&self, world: &mut SimWorld) {
        {
            let mut c = self.inner.borrow_mut();
            if c.fin_queued || c.state == TcpState::Closed {
                return;
            }
            c.fin_queued = true;
        }
        self.pump(world);
    }

    fn set_readable_callback(&self, cb: ReadableCallback) {
        self.inner.borrow_mut().readable_cb = Some(cb);
    }

    fn bytes_acked(&self) -> u64 {
        self.inner.borrow().stats.bytes_acked
    }

    fn bytes_unacked(&self) -> u64 {
        let c = self.inner.borrow();
        c.retx_buf.len() as u64 + c.send_buf.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::ByteStreamExt;
    use simnet::topology;
    use simnet::{LossModel, NetworkSpec};
    use std::cell::RefCell as StdRefCell;

    /// Establishes a connected pair over the given spec and returns
    /// (world, client conn, server conn handle holder, network).
    fn connected_pair(
        spec: NetworkSpec,
    ) -> (
        SimWorld,
        TcpConn,
        Rc<StdRefCell<Option<TcpConn>>>,
        NetworkId,
    ) {
        connected_pair_with_config(spec, TcpConfig::default())
    }

    fn connected_pair_with_config(
        spec: NetworkSpec,
        config: TcpConfig,
    ) -> (
        SimWorld,
        TcpConn,
        Rc<StdRefCell<Option<TcpConn>>>,
        NetworkId,
    ) {
        let mut p = topology::pair_over(11, spec);
        let stack_a = TcpStack::with_config(&mut p.world, p.a, config.clone());
        let stack_b = TcpStack::with_config(&mut p.world, p.b, config);
        let server_conn: Rc<StdRefCell<Option<TcpConn>>> = Rc::new(StdRefCell::new(None));
        let sc = server_conn.clone();
        stack_b.listen(80, move |_world, conn| {
            *sc.borrow_mut() = Some(conn);
        });
        let client = stack_a.connect(&mut p.world, p.network, p.b, 80);
        p.world.run();
        assert!(client.is_established(), "handshake should complete");
        assert!(server_conn.borrow().is_some(), "server should accept");
        (p.world, client, server_conn, p.network)
    }

    #[test]
    fn handshake_establishes_both_sides() {
        let (_world, client, server, _net) = connected_pair(NetworkSpec::ethernet_100());
        assert!(client.is_established());
        assert!(server.borrow().as_ref().unwrap().is_established());
        assert_eq!(client.remote_addr().1, 80);
    }

    #[test]
    fn small_transfer_is_delivered_in_order() {
        let (mut world, client, server, _net) = connected_pair(NetworkSpec::ethernet_100());
        client.send_all(&mut world, b"hello from the parallel world");
        world.run();
        let server = server.borrow();
        let server = server.as_ref().unwrap();
        assert_eq!(
            server.recv_all(&mut world),
            b"hello from the parallel world"
        );
    }

    #[test]
    fn bulk_transfer_across_many_segments() {
        let (mut world, client, server, _net) = connected_pair(NetworkSpec::ethernet_100());
        let data: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
        client.send_all(&mut world, &data);
        client.close(&mut world);
        let server_conn = server.borrow().as_ref().unwrap().clone();
        let received = Rc::new(StdRefCell::new(Vec::new()));
        let r = received.clone();
        let sc = server_conn.clone();
        server_conn.set_readable_callback(Box::new(move |world| {
            r.borrow_mut().extend(sc.recv_all(world));
        }));
        world.run();
        assert_eq!(received.borrow().len(), data.len());
        assert_eq!(*received.borrow(), data);
        assert_eq!(client.bytes_acked(), data.len() as u64);
    }

    #[test]
    fn transfer_survives_heavy_loss() {
        let mut spec = NetworkSpec::ethernet_100();
        spec.loss = LossModel::bernoulli(0.05);
        let (mut world, client, server, _net) = connected_pair(spec);
        let data: Vec<u8> = (0..100_000u32).map(|i| (i * 7 % 256) as u8).collect();
        client.send_all(&mut world, &data);
        client.close(&mut world);
        let server_conn = server.borrow().as_ref().unwrap().clone();
        let received = Rc::new(StdRefCell::new(Vec::new()));
        let r = received.clone();
        let sc = server_conn.clone();
        server_conn.set_readable_callback(Box::new(move |world| {
            r.borrow_mut().extend(sc.recv_all(world));
        }));
        world.run();
        assert_eq!(*received.borrow(), data, "reliable despite 5% loss");
        assert!(client.stats().retransmitted_segments > 0);
    }

    #[test]
    fn lan_goodput_matches_fast_ethernet() {
        let (mut world, client, server, _net) = connected_pair(NetworkSpec::ethernet_100());
        let size = 4_000_000usize;
        let data = vec![0xAAu8; size];
        let start = world.now();
        client.send_all(&mut world, &data);
        let server_conn = server.borrow().as_ref().unwrap().clone();
        let done = Rc::new(StdRefCell::new(0usize));
        let d = done.clone();
        let sc = server_conn.clone();
        server_conn.set_readable_callback(Box::new(move |world| {
            *d.borrow_mut() += sc.recv_all(world).len();
        }));
        world.run_while(|| *done.borrow() < size);
        let elapsed = world.now().since(start).as_secs_f64();
        let goodput = size as f64 / elapsed / 1e6;
        // Fast Ethernet with TCP/IP overhead delivers roughly 10–12 MB/s.
        assert!(goodput > 9.5, "goodput {goodput} MB/s too low");
        assert!(goodput < 12.5, "goodput {goodput} MB/s exceeds line rate");
    }

    #[test]
    fn congestion_window_grows_during_slow_start() {
        let (mut world, client, _server, _net) = connected_pair(NetworkSpec::vthd_wan());
        let initial = client.cwnd();
        client.send(&mut world, &vec![0u8; 400_000]);
        world.run_for(SimDuration::from_millis(200));
        assert!(
            client.cwnd() > initial,
            "cwnd should grow: {} -> {}",
            initial,
            client.cwnd()
        );
    }

    #[test]
    fn loss_reduces_congestion_window() {
        let mut spec = NetworkSpec::vthd_wan();
        spec.loss = LossModel::bernoulli(0.02);
        let (mut world, client, server, _net) = connected_pair(spec);
        let server_conn = server.borrow().as_ref().unwrap().clone();
        // Keep the receiver drained.
        let sc = server_conn.clone();
        server_conn.set_readable_callback(Box::new(move |world| {
            sc.recv_all(world);
        }));
        client.send(&mut world, &vec![0u8; 2_000_000]);
        world.run_for(SimDuration::from_secs(5));
        let stats = client.stats();
        assert!(
            stats.retransmitted_segments > 0,
            "2% loss must cause retransmissions"
        );
        // cwnd should be bounded well below the amount of queued data.
        assert!(client.cwnd() < 1_000_000);
    }

    #[test]
    fn send_respects_buffer_limit_and_close_stops_send() {
        let config = TcpConfig {
            send_buffer: 1000,
            ..Default::default()
        };
        let (mut world, client, _server, _net) =
            connected_pair_with_config(NetworkSpec::ethernet_100(), config);
        // Larger than the send buffer: only part is accepted synchronously.
        let accepted = client.send(&mut world, &vec![1u8; 5_000]);
        assert!(accepted <= 1000);
        client.close(&mut world);
        assert_eq!(client.send(&mut world, b"more"), 0, "no send after close");
    }

    #[test]
    fn fin_is_seen_by_peer() {
        let (mut world, client, server, _net) = connected_pair(NetworkSpec::ethernet_100());
        client.send_all(&mut world, b"bye");
        client.close(&mut world);
        world.run();
        let server = server.borrow();
        let server = server.as_ref().unwrap();
        assert_eq!(server.recv_all(&mut world), b"bye");
        assert!(
            server.is_finished(),
            "peer FIN should mark the stream finished"
        );
    }

    #[test]
    fn two_connections_between_same_hosts_are_independent() {
        let mut p = topology::pair_over(3, NetworkSpec::ethernet_100());
        let stack_a = TcpStack::new(&mut p.world, p.a);
        let stack_b = TcpStack::new(&mut p.world, p.b);
        let accepted: Rc<StdRefCell<Vec<TcpConn>>> = Rc::new(StdRefCell::new(Vec::new()));
        let acc = accepted.clone();
        stack_b.listen(9, move |_w, c| acc.borrow_mut().push(c));
        let c1 = stack_a.connect(&mut p.world, p.network, p.b, 9);
        let c2 = stack_a.connect(&mut p.world, p.network, p.b, 9);
        p.world.run();
        assert_eq!(accepted.borrow().len(), 2);
        c1.send_all(&mut p.world, b"first");
        c2.send_all(&mut p.world, b"second");
        p.world.run();
        let a0 = accepted.borrow()[0].clone();
        let a1 = accepted.borrow()[1].clone();
        let mut got: Vec<Vec<u8>> = vec![a0.recv_all(&mut p.world), a1.recv_all(&mut p.world)];
        got.sort();
        assert_eq!(got, vec![b"first".to_vec(), b"second".to_vec()]);
    }

    #[test]
    fn wan_single_stream_is_capped_by_loss_and_rtt() {
        let (mut world, client, server, _net) = connected_pair(NetworkSpec::vthd_wan());
        let size = 8_000_000usize;
        let server_conn = server.borrow().as_ref().unwrap().clone();
        let done = Rc::new(StdRefCell::new(0usize));
        let d = done.clone();
        let sc = server_conn.clone();
        server_conn.set_readable_callback(Box::new(move |world| {
            *d.borrow_mut() += sc.recv_all(world).len();
        }));
        let start = world.now();
        client.send_all(&mut world, &vec![0u8; size]);
        world.run_while(|| *done.borrow() < size);
        let elapsed = world.now().since(start).as_secs_f64();
        let goodput = size as f64 / elapsed / 1e6;
        // The paper reports ≈9 MB/s for a single stream on VTHD, clearly
        // below the 12.5 MB/s access link.
        assert!(
            goodput < 11.5,
            "single stream should not saturate the WAN, got {goodput}"
        );
        assert!(goodput > 4.0, "goodput collapsed unexpectedly: {goodput}");
    }
}
