//! VRP — the Variable Reliability Protocol.
//!
//! VRP (Denis, 2000) targets slow, lossy WAN links: the application accepts
//! a bounded fraction of loss in exchange for not paying TCP's
//! retransmission and congestion-collapse penalties. The sender paces
//! packets at a configured rate; the receiver reports what it got; the
//! sender repairs *only enough* losses to stay within the tolerated
//! fraction. On the paper's trans-continental link (5–10 % loss) this is
//! roughly 3× faster than TCP.

use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

use bytes::Bytes;
use simnet::{NetworkId, NodeId, SimDuration, SimTime, SimWorld};

use crate::datagram::{Datagram, UdpHost};

/// Configuration shared by VRP senders and receivers.
#[derive(Debug, Clone)]
pub struct VrpConfig {
    /// Fraction of the message the application tolerates losing (0.0 =
    /// fully reliable, 0.10 = up to 10 % may be missing).
    pub tolerance: f64,
    /// Payload bytes per packet.
    pub packet_payload: usize,
    /// Pacing rate in bytes per second (set it to the link's expected
    /// capacity; VRP is rate-based, not congestion-controlled).
    pub pacing_bytes_per_sec: f64,
    /// The receiver sends unsolicited feedback every this many packets.
    pub feedback_every: u64,
    /// How long the sender waits for feedback before probing again.
    pub probe_timeout: SimDuration,
    /// Give up after this many successive unanswered probes.
    pub max_probes: u32,
}

impl Default for VrpConfig {
    fn default() -> Self {
        VrpConfig {
            tolerance: 0.10,
            packet_payload: 1200,
            pacing_bytes_per_sec: 550.0e3,
            feedback_every: 64,
            probe_timeout: SimDuration::from_millis(300),
            max_probes: 60,
        }
    }
}

/// Outcome of a VRP transfer, as seen by the sender.
#[derive(Debug, Clone, Copy)]
pub struct VrpTransferStats {
    /// Message size in bytes.
    pub message_bytes: u64,
    /// Total packets of the original message.
    pub total_packets: u64,
    /// Packets the receiver reported having.
    pub packets_delivered: u64,
    /// Packets transmitted, including repairs.
    pub packets_sent: u64,
    /// Repair (retransmitted) packets.
    pub packets_repaired: u64,
    /// Virtual time from first packet to completion.
    pub elapsed: SimDuration,
    /// True if the transfer met the tolerance; false if the sender gave up.
    pub completed: bool,
}

impl VrpTransferStats {
    /// Fraction of the message actually delivered.
    pub fn delivered_fraction(&self) -> f64 {
        if self.total_packets == 0 {
            1.0
        } else {
            self.packets_delivered as f64 / self.total_packets as f64
        }
    }

    /// Application-level throughput (message bytes over elapsed time).
    pub fn goodput_bytes_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.message_bytes as f64 / secs
        }
    }
}

/// A message delivered by a VRP receiver. Missing packets are zero-filled
/// and listed in `missing_packets`.
#[derive(Debug, Clone)]
pub struct VrpMessage {
    /// Reassembled payload (gaps zero-filled).
    pub data: Vec<u8>,
    /// Indexes of packets that were never received.
    pub missing_packets: Vec<u64>,
    /// Total packets in the original message.
    pub total_packets: u64,
}

impl VrpMessage {
    /// Fraction of packets delivered.
    pub fn delivered_fraction(&self) -> f64 {
        if self.total_packets == 0 {
            1.0
        } else {
            1.0 - self.missing_packets.len() as f64 / self.total_packets as f64
        }
    }
}

// --------------------------------------------------------------------- //
// Wire encoding: VRP rides on datagrams with a small header.
// --------------------------------------------------------------------- //

const KIND_DATA: u8 = 0;
const KIND_FEEDBACK: u8 = 1;
const KIND_PROBE: u8 = 2;
const KIND_DONE: u8 = 3;

fn encode_data(seq: u64, total: u64, payload: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(17 + payload.len());
    v.push(KIND_DATA);
    v.extend_from_slice(&seq.to_be_bytes());
    v.extend_from_slice(&total.to_be_bytes());
    v.extend_from_slice(payload);
    v
}

fn encode_feedback(received: u64, total: u64, missing: &[u64]) -> Vec<u8> {
    let n = missing.len().min(120);
    let mut v = Vec::with_capacity(19 + n * 4);
    v.push(KIND_FEEDBACK);
    v.extend_from_slice(&received.to_be_bytes());
    v.extend_from_slice(&total.to_be_bytes());
    v.extend_from_slice(&(n as u16).to_be_bytes());
    for m in &missing[..n] {
        v.extend_from_slice(&(*m as u32).to_be_bytes());
    }
    v
}

fn encode_simple(kind: u8, total: u64) -> Vec<u8> {
    let mut v = Vec::with_capacity(9);
    v.push(kind);
    v.extend_from_slice(&total.to_be_bytes());
    v
}

// --------------------------------------------------------------------- //
// Receiver
// --------------------------------------------------------------------- //

struct ReceiverInner {
    udp: UdpHost,
    network: NetworkId,
    port: u16,
    config: VrpConfig,
    // Current transfer.
    total: u64,
    payload_size: usize,
    packets: Vec<Option<Bytes>>,
    received: u64,
    since_feedback: u64,
    peer: Option<(NodeId, u16)>,
    complete: bool,
    #[allow(clippy::type_complexity)]
    on_complete: Option<Box<dyn FnMut(&mut SimWorld, VrpMessage)>>,
}

/// The receiving side of VRP, bound to a UDP port.
#[derive(Clone)]
pub struct VrpReceiver {
    inner: Rc<RefCell<ReceiverInner>>,
}

impl VrpReceiver {
    /// Binds a VRP receiver on `port`. `on_complete` is invoked once per
    /// transfer with the reassembled (possibly gappy) message.
    pub fn bind(
        _world: &mut SimWorld,
        udp: &UdpHost,
        network: NetworkId,
        port: u16,
        config: VrpConfig,
        on_complete: impl FnMut(&mut SimWorld, VrpMessage) + 'static,
    ) -> VrpReceiver {
        udp.bind(port);
        let rx = VrpReceiver {
            inner: Rc::new(RefCell::new(ReceiverInner {
                udp: udp.clone(),
                network,
                port,
                config,
                total: 0,
                payload_size: 0,
                packets: Vec::new(),
                received: 0,
                since_feedback: 0,
                peer: None,
                complete: false,
                on_complete: Some(Box::new(on_complete)),
            })),
        };
        let rx2 = rx.clone();
        udp.set_recv_callback(port, move |world, dgram| {
            rx2.on_datagram(world, dgram);
        })
        .expect("port was just bound");
        rx
    }

    /// Packets received so far for the current transfer.
    pub fn packets_received(&self) -> u64 {
        self.inner.borrow().received
    }

    fn missing(&self, limit: usize) -> Vec<u64> {
        let st = self.inner.borrow();
        st.packets
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_none())
            .map(|(i, _)| i as u64)
            .take(limit)
            .collect()
    }

    fn send_feedback(&self, world: &mut SimWorld) {
        let (udp, network, port, peer, received, total) = {
            let st = self.inner.borrow();
            let Some(peer) = st.peer else { return };
            (
                st.udp.clone(),
                st.network,
                st.port,
                peer,
                st.received,
                st.total,
            )
        };
        let missing = self.missing(120);
        let payload = encode_feedback(received, total, &missing);
        let _ = udp.send_to(world, network, port, peer.0, peer.1, payload);
    }

    fn deliver(&self, world: &mut SimWorld) {
        let (cb, msg) = {
            let mut st = self.inner.borrow_mut();
            if st.complete {
                return;
            }
            st.complete = true;
            let mut data = Vec::with_capacity(st.total as usize * st.payload_size);
            let mut missing = Vec::new();
            for (i, p) in st.packets.iter().enumerate() {
                match p {
                    Some(b) => data.extend_from_slice(b),
                    None => {
                        missing.push(i as u64);
                        data.extend(std::iter::repeat_n(0u8, st.payload_size));
                    }
                }
            }
            let msg = VrpMessage {
                data,
                missing_packets: missing,
                total_packets: st.total,
            };
            (st.on_complete.take(), msg)
        };
        if let Some(mut cb) = cb {
            cb(world, msg);
            let mut st = self.inner.borrow_mut();
            if st.on_complete.is_none() {
                st.on_complete = Some(cb);
            }
        }
    }

    fn on_datagram(&self, world: &mut SimWorld, dgram: Datagram) {
        if dgram.data.is_empty() {
            return;
        }
        let kind = dgram.data[0];
        match kind {
            KIND_DATA => {
                let send_fb = {
                    let mut st = self.inner.borrow_mut();
                    if dgram.data.len() < 17 {
                        return;
                    }
                    let seq = u64::from_be_bytes(dgram.data[1..9].try_into().unwrap());
                    let total = u64::from_be_bytes(dgram.data[9..17].try_into().unwrap());
                    let payload = dgram.data.slice(17..);
                    if st.peer.is_none() || st.total != total {
                        // New transfer: reset state.
                        st.total = total;
                        st.packets = vec![None; total as usize];
                        st.received = 0;
                        st.since_feedback = 0;
                        st.complete = false;
                        st.payload_size = payload.len();
                    }
                    st.peer = Some((dgram.src_node, dgram.src_port));
                    st.payload_size = st.payload_size.max(payload.len());
                    if let Some(slot) = st.packets.get_mut(seq as usize) {
                        if slot.is_none() {
                            *slot = Some(payload);
                            st.received += 1;
                            st.since_feedback += 1;
                        }
                    }
                    st.since_feedback >= st.config.feedback_every
                };
                if send_fb {
                    self.inner.borrow_mut().since_feedback = 0;
                    self.send_feedback(world);
                }
            }
            KIND_PROBE => {
                {
                    let mut st = self.inner.borrow_mut();
                    st.peer = Some((dgram.src_node, dgram.src_port));
                }
                self.send_feedback(world);
            }
            KIND_DONE => {
                self.send_feedback(world);
                self.deliver(world);
            }
            _ => {}
        }
    }
}

// --------------------------------------------------------------------- //
// Sender
// --------------------------------------------------------------------- //

struct SenderInner {
    udp: UdpHost,
    network: NetworkId,
    local_port: u16,
    dst_node: NodeId,
    dst_port: u16,
    config: VrpConfig,
    // Transfer state.
    message: Bytes,
    total: u64,
    next_seq: u64,
    repair_queue: Vec<u64>,
    repaired: HashSet<u64>,
    packets_sent: u64,
    packets_repaired: u64,
    reported_received: u64,
    started_at: SimTime,
    probes_outstanding: u32,
    finished: bool,
    #[allow(clippy::type_complexity)]
    on_complete: Option<Box<dyn FnMut(&mut SimWorld, VrpTransferStats)>>,
}

/// The sending side of VRP.
#[derive(Clone)]
pub struct VrpSender {
    inner: Rc<RefCell<SenderInner>>,
}

impl VrpSender {
    /// Sends `data` to `dst_node:dst_port` over `network` with the given
    /// tolerance/rate configuration. `on_complete` receives the transfer
    /// statistics once the tolerance target is met (or the sender gives
    /// up).
    #[allow(clippy::too_many_arguments)]
    pub fn send(
        world: &mut SimWorld,
        udp: &UdpHost,
        network: NetworkId,
        dst_node: NodeId,
        dst_port: u16,
        data: impl Into<Bytes>,
        config: VrpConfig,
        on_complete: impl FnMut(&mut SimWorld, VrpTransferStats) + 'static,
    ) -> VrpSender {
        let data = data.into();
        let local_port = udp.bind_ephemeral();
        let total = (data.len() as u64)
            .div_ceil(config.packet_payload as u64)
            .max(1);
        let sender = VrpSender {
            inner: Rc::new(RefCell::new(SenderInner {
                udp: udp.clone(),
                network,
                local_port,
                dst_node,
                dst_port,
                config,
                message: data,
                total,
                next_seq: 0,
                repair_queue: Vec::new(),
                repaired: HashSet::new(),
                packets_sent: 0,
                packets_repaired: 0,
                reported_received: 0,
                started_at: world.now(),
                probes_outstanding: 0,
                finished: false,
                on_complete: Some(Box::new(on_complete)),
            })),
        };
        // Feedback handling.
        let s2 = sender.clone();
        udp.set_recv_callback(local_port, move |world, dgram| {
            s2.on_datagram(world, dgram);
        })
        .expect("ephemeral port bound");
        // Start pacing.
        let s3 = sender.clone();
        world.schedule_after(SimDuration::ZERO, move |world| s3.tick(world));
        sender
    }

    /// True once `on_complete` has fired.
    pub fn is_finished(&self) -> bool {
        self.inner.borrow().finished
    }

    fn packet_payload(&self, seq: u64) -> Bytes {
        let st = self.inner.borrow();
        let start = (seq as usize) * st.config.packet_payload;
        let end = (start + st.config.packet_payload).min(st.message.len());
        if start >= end {
            Bytes::new()
        } else {
            st.message.slice(start..end)
        }
    }

    fn send_packet(&self, world: &mut SimWorld, seq: u64, is_repair: bool) {
        let payload = self.packet_payload(seq);
        let (udp, network, port, dst_node, dst_port, total) = {
            let mut st = self.inner.borrow_mut();
            st.packets_sent += 1;
            if is_repair {
                st.packets_repaired += 1;
            }
            (
                st.udp.clone(),
                st.network,
                st.local_port,
                st.dst_node,
                st.dst_port,
                st.total,
            )
        };
        let wire = encode_data(seq, total, &payload);
        let _ = udp.send_to(world, network, port, dst_node, dst_port, wire);
    }

    fn send_control(&self, world: &mut SimWorld, kind: u8) {
        let (udp, network, port, dst_node, dst_port, total) = {
            let st = self.inner.borrow();
            (
                st.udp.clone(),
                st.network,
                st.local_port,
                st.dst_node,
                st.dst_port,
                st.total,
            )
        };
        let _ = udp.send_to(
            world,
            network,
            port,
            dst_node,
            dst_port,
            encode_simple(kind, total),
        );
    }

    /// Pacing tick: sends the next packet (new data first, then repairs) and
    /// schedules the next tick. Once there is nothing left to send, probes
    /// for feedback.
    fn tick(&self, world: &mut SimWorld) {
        enum Action {
            Data(u64, bool),
            Probe,
            Idle,
        }
        let (action, interval) = {
            let mut st = self.inner.borrow_mut();
            if st.finished {
                return;
            }
            let interval = SimDuration::for_transfer(
                st.config.packet_payload as u64 + 60,
                st.config.pacing_bytes_per_sec,
            );
            if st.next_seq < st.total {
                let seq = st.next_seq;
                st.next_seq += 1;
                (Action::Data(seq, false), interval)
            } else if let Some(seq) = st.repair_queue.pop() {
                (Action::Data(seq, true), interval)
            } else if st.probes_outstanding < st.config.max_probes {
                st.probes_outstanding += 1;
                (Action::Probe, st.config.probe_timeout)
            } else {
                (Action::Idle, st.config.probe_timeout)
            }
        };
        match action {
            Action::Data(seq, repair) => self.send_packet(world, seq, repair),
            Action::Probe => self.send_control(world, KIND_PROBE),
            Action::Idle => {
                // Too many unanswered probes: give up and report.
                self.finish(world, false);
                return;
            }
        }
        let this = self.clone();
        world.schedule_after(interval, move |world| this.tick(world));
    }

    fn on_datagram(&self, world: &mut SimWorld, dgram: Datagram) {
        if dgram.data.first() != Some(&KIND_FEEDBACK) || dgram.data.len() < 19 {
            return;
        }
        let received = u64::from_be_bytes(dgram.data[1..9].try_into().unwrap());
        let _total = u64::from_be_bytes(dgram.data[9..17].try_into().unwrap());
        let n_missing = u16::from_be_bytes(dgram.data[17..19].try_into().unwrap()) as usize;
        let mut missing = Vec::with_capacity(n_missing);
        for i in 0..n_missing {
            let off = 19 + i * 4;
            if dgram.data.len() >= off + 4 {
                missing
                    .push(u32::from_be_bytes(dgram.data[off..off + 4].try_into().unwrap()) as u64);
            }
        }

        let done = {
            let mut st = self.inner.borrow_mut();
            st.probes_outstanding = 0;
            st.reported_received = st.reported_received.max(received);
            let needed = ((1.0 - st.config.tolerance) * st.total as f64).ceil() as u64;
            if st.reported_received >= needed && st.next_seq >= st.total {
                true
            } else {
                // Queue repairs for reported losses, but only as many as we
                // still need to reach the tolerance target. A packet may be
                // repaired again in a later round if the repair itself was
                // lost — only the current queue is deduplicated, otherwise a
                // zero-tolerance transfer could never converge.
                if st.next_seq >= st.total {
                    let deficit = needed.saturating_sub(st.reported_received) as usize;
                    let mut queued = 0usize;
                    for m in missing {
                        if queued >= deficit.max(1) {
                            break;
                        }
                        if !st.repair_queue.contains(&m) {
                            st.repair_queue.push(m);
                            st.repaired.insert(m);
                            queued += 1;
                        }
                    }
                }
                false
            }
        };
        if done {
            // Tell the receiver to deliver, then report completion.
            self.send_control(world, KIND_DONE);
            self.send_control(world, KIND_DONE);
            self.finish(world, true);
        }
    }

    fn finish(&self, world: &mut SimWorld, completed: bool) {
        let (cb, stats) = {
            let mut st = self.inner.borrow_mut();
            if st.finished {
                return;
            }
            st.finished = true;
            let stats = VrpTransferStats {
                message_bytes: st.message.len() as u64,
                total_packets: st.total,
                packets_delivered: st.reported_received,
                packets_sent: st.packets_sent,
                packets_repaired: st.packets_repaired,
                elapsed: world.now().since(st.started_at),
                completed,
            };
            (st.on_complete.take(), stats)
        };
        if let Some(mut cb) = cb {
            cb(world, stats);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{topology, LossModel, NetworkSpec};

    fn run_vrp(
        spec: NetworkSpec,
        size: usize,
        config: VrpConfig,
    ) -> (VrpTransferStats, VrpMessage) {
        let mut p = topology::pair_over(23, spec);
        let udp_a = UdpHost::new(&mut p.world, p.a);
        let udp_b = UdpHost::new(&mut p.world, p.b);
        let delivered: Rc<RefCell<Option<VrpMessage>>> = Rc::new(RefCell::new(None));
        let d2 = delivered.clone();
        VrpReceiver::bind(
            &mut p.world,
            &udp_b,
            p.network,
            7000,
            config.clone(),
            move |_w, msg| {
                *d2.borrow_mut() = Some(msg);
            },
        );
        let stats: Rc<RefCell<Option<VrpTransferStats>>> = Rc::new(RefCell::new(None));
        let s2 = stats.clone();
        let data: Vec<u8> = (0..size).map(|i| (i % 255) as u8).collect();
        VrpSender::send(
            &mut p.world,
            &udp_a,
            p.network,
            p.b,
            7000,
            data,
            config,
            move |_w, st| {
                *s2.borrow_mut() = Some(st);
            },
        );
        p.world
            .run_while(|| delivered.borrow().is_none() || stats.borrow().is_none());
        let stats = stats.borrow().expect("sender finished");
        let msg = delivered.borrow().clone().expect("receiver delivered");
        (stats, msg)
    }

    #[test]
    fn lossless_link_delivers_everything() {
        let cfg = VrpConfig {
            tolerance: 0.10,
            pacing_bytes_per_sec: 1.0e6,
            ..Default::default()
        };
        let mut spec = NetworkSpec::lossy_internet();
        spec.loss = LossModel::None;
        spec.bytes_per_sec = 1.0e6;
        let (stats, msg) = run_vrp(spec, 200_000, cfg);
        assert!(stats.completed);
        assert_eq!(stats.packets_delivered, stats.total_packets);
        assert!(msg.missing_packets.is_empty());
        assert!(msg.data.len() >= 200_000);
        assert_eq!(
            &msg.data[..200_000],
            &(0..200_000).map(|i| (i % 255) as u8).collect::<Vec<u8>>()[..]
        );
    }

    #[test]
    fn lossy_link_meets_tolerance_target() {
        let cfg = VrpConfig {
            tolerance: 0.10,
            pacing_bytes_per_sec: 550.0e3,
            ..Default::default()
        };
        let (stats, msg) = run_vrp(NetworkSpec::lossy_internet(), 300_000, cfg);
        assert!(stats.completed, "transfer should complete");
        assert!(
            stats.delivered_fraction() >= 0.90,
            "delivered fraction {} below tolerance",
            stats.delivered_fraction()
        );
        assert!(
            msg.delivered_fraction() >= 0.88,
            "receiver-side fraction {}",
            msg.delivered_fraction()
        );
    }

    #[test]
    fn zero_tolerance_is_fully_reliable() {
        let cfg = VrpConfig {
            tolerance: 0.0,
            pacing_bytes_per_sec: 550.0e3,
            ..Default::default()
        };
        let mut spec = NetworkSpec::lossy_internet();
        spec.loss = LossModel::bernoulli(0.05);
        let (stats, msg) = run_vrp(spec, 150_000, cfg);
        assert!(stats.completed);
        assert_eq!(stats.packets_delivered, stats.total_packets);
        assert!(msg.missing_packets.is_empty());
    }

    #[test]
    fn tolerant_transfer_is_faster_than_reliable_one() {
        let lossy = NetworkSpec::lossy_internet;
        let strict = VrpConfig {
            tolerance: 0.0,
            ..Default::default()
        };
        let tolerant = VrpConfig {
            tolerance: 0.10,
            ..Default::default()
        };
        let size = 400_000;
        let (strict_stats, _) = run_vrp(lossy(), size, strict);
        let (tolerant_stats, _) = run_vrp(lossy(), size, tolerant);
        assert!(strict_stats.completed && tolerant_stats.completed);
        assert!(
            tolerant_stats.goodput_bytes_per_sec() > strict_stats.goodput_bytes_per_sec(),
            "tolerating loss should improve goodput ({:.0} vs {:.0} B/s)",
            tolerant_stats.goodput_bytes_per_sec(),
            strict_stats.goodput_bytes_per_sec()
        );
        assert!(tolerant_stats.packets_repaired <= strict_stats.packets_repaired);
    }

    #[test]
    fn stats_accessors() {
        let stats = VrpTransferStats {
            message_bytes: 1_000_000,
            total_packets: 1000,
            packets_delivered: 930,
            packets_sent: 1010,
            packets_repaired: 10,
            elapsed: SimDuration::from_secs(2),
            completed: true,
        };
        assert!((stats.delivered_fraction() - 0.93).abs() < 1e-12);
        assert!((stats.goodput_bytes_per_sec() - 500_000.0).abs() < 1e-6);
    }
}
