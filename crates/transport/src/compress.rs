//! A small LZSS-style codec used by the AdOC adaptive online compression
//! method.
//!
//! The paper uses AdOC (Jeannot, Knutsson, Björkmann 2002), which wraps
//! zlib. Pulling in a real compression library is outside the allowed
//! dependency set, so this module implements a self-contained LZ77/LZSS
//! codec: correctness (lossless round-trip) is what matters for the
//! framework; the achieved ratio on compressible data (2–4×) is in the same
//! ballpark as zlib's fast levels.

use bytes::{Buf, BufMut, Bytes, BytesMut};

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 0xFFFF;
const WINDOW: usize = 0xFFFF;
const HASH_BITS: u32 = 15;

const TOKEN_LITERAL: u8 = 0;
const TOKEN_MATCH: u8 = 1;

#[inline]
fn hash4(data: &[u8]) -> usize {
    let v = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Compresses `input` with the LZSS codec. The output always round-trips
/// through [`decompress`]; it may be larger than the input for
/// incompressible data (the AdOC layer handles that by sending raw blocks).
pub fn compress(input: &[u8]) -> Bytes {
    let mut out = BytesMut::with_capacity(input.len() / 2 + 16);
    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut literal_start = 0usize;
    let mut i = 0usize;

    let flush_literals = |out: &mut BytesMut, input: &[u8], from: usize, to: usize| {
        let mut from = from;
        while from < to {
            let run = (to - from).min(0xFFFF);
            out.put_u8(TOKEN_LITERAL);
            out.put_u16(run as u16);
            out.extend_from_slice(&input[from..from + run]);
            from += run;
        }
    };

    while i + MIN_MATCH <= input.len() {
        let h = hash4(&input[i..]);
        let candidate = table[h];
        table[h] = i;

        let mut match_len = 0usize;
        if candidate != usize::MAX && i - candidate <= WINDOW {
            let max_len = (input.len() - i).min(MAX_MATCH);
            while match_len < max_len && input[candidate + match_len] == input[i + match_len] {
                match_len += 1;
            }
        }

        if match_len >= MIN_MATCH {
            flush_literals(&mut out, input, literal_start, i);
            out.put_u8(TOKEN_MATCH);
            out.put_u16((i - candidate) as u16);
            out.put_u16(match_len as u16);
            // Insert a few hash entries inside the match so later data can
            // still find it, then skip past it.
            let end = i + match_len;
            let mut j = i + 1;
            while j + MIN_MATCH <= end && j < i + 16 {
                table[hash4(&input[j..])] = j;
                j += 1;
            }
            i = end;
            literal_start = i;
        } else {
            i += 1;
        }
    }
    flush_literals(&mut out, input, literal_start, input.len());
    out.freeze()
}

/// Error returned by [`decompress`] on malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecompressError(&'static str);

impl std::fmt::Display for DecompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decompression failed: {}", self.0)
    }
}
impl std::error::Error for DecompressError {}

/// Decompresses data produced by [`compress`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, DecompressError> {
    let mut out = Vec::with_capacity(input.len() * 2);
    let mut buf = input;
    while buf.has_remaining() {
        let token = buf.get_u8();
        match token {
            TOKEN_LITERAL => {
                if buf.remaining() < 2 {
                    return Err(DecompressError("truncated literal header"));
                }
                let len = buf.get_u16() as usize;
                if buf.remaining() < len {
                    return Err(DecompressError("truncated literal run"));
                }
                out.extend_from_slice(&buf[..len]);
                buf.advance(len);
            }
            TOKEN_MATCH => {
                if buf.remaining() < 4 {
                    return Err(DecompressError("truncated match token"));
                }
                let offset = buf.get_u16() as usize;
                let len = buf.get_u16() as usize;
                if offset == 0 || offset > out.len() {
                    return Err(DecompressError("match offset out of range"));
                }
                let start = out.len() - offset;
                for k in 0..len {
                    let byte = out[start + k];
                    out.push(byte);
                }
            }
            _ => return Err(DecompressError("unknown token")),
        }
    }
    Ok(out)
}

/// Compression throughput model: bytes per second a Pentium III-era CPU
/// sustains running this kind of LZ compressor. Used by AdOC to charge
/// virtual CPU time.
pub const COMPRESS_BYTES_PER_SEC: f64 = 30.0e6;
/// Decompression throughput model (decompression is much cheaper).
pub const DECOMPRESS_BYTES_PER_SEC: f64 = 120.0e6;

/// Generates synthetic "scientific output"-like data that compresses by
/// roughly 2–4×: runs of structured text records with repeated keys and
/// slowly-varying numeric fields.
pub fn compressible_data(len: usize, seed: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut x = seed | 1;
    let mut t = 0u64;
    while out.len() < len {
        // A cheap xorshift for variety without pulling in `rand` here.
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        t += 1;
        let record = format!(
            "timestep={t} temperature={:.3} pressure={:.3} velocity=({:.2},{:.2},{:.2}) status=OK\n",
            300.0 + (t % 17) as f64 * 0.125,
            101.3 + (x % 7) as f64 * 0.001,
            (x % 13) as f64 * 0.01,
            (x % 11) as f64 * 0.01,
            (x % 5) as f64 * 0.01,
        );
        out.extend_from_slice(record.as_bytes());
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_empty_and_small() {
        for input in [&b""[..], b"a", b"ab", b"abc", b"abcd", b"hello world"] {
            let c = compress(input);
            assert_eq!(decompress(&c).unwrap(), input);
        }
    }

    #[test]
    fn roundtrip_repetitive_and_ratio() {
        let input: Vec<u8> = b"the quick brown fox jumps over the lazy dog. "
            .iter()
            .copied()
            .cycle()
            .take(100_000)
            .collect();
        let c = compress(&input);
        assert_eq!(decompress(&c).unwrap(), input);
        let ratio = input.len() as f64 / c.len() as f64;
        assert!(
            ratio > 5.0,
            "highly repetitive data should compress well, got {ratio}"
        );
    }

    #[test]
    fn roundtrip_compressible_generator() {
        let input = compressible_data(64 * 1024, 42);
        let c = compress(&input);
        assert_eq!(decompress(&c).unwrap(), input);
        let ratio = input.len() as f64 / c.len() as f64;
        assert!(
            ratio > 1.8,
            "synthetic data should compress ≥1.8x, got {ratio}"
        );
        assert!(ratio < 20.0);
    }

    #[test]
    fn incompressible_data_still_roundtrips() {
        // Pseudo-random bytes: the codec may expand them, but must not corrupt.
        let mut x = 0x12345678u64;
        let input: Vec<u8> = (0..50_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 0xff) as u8
            })
            .collect();
        let c = compress(&input);
        assert_eq!(decompress(&c).unwrap(), input);
    }

    #[test]
    fn overlapping_match_copy() {
        // "aaaa..." forces matches whose source overlaps the destination.
        let input = vec![b'a'; 10_000];
        let c = compress(&input);
        assert!(c.len() < 200);
        assert_eq!(decompress(&c).unwrap(), input);
    }

    #[test]
    fn decompress_rejects_garbage() {
        assert!(decompress(&[7, 1, 2, 3]).is_err());
        assert!(decompress(&[TOKEN_MATCH, 0, 5, 0, 4]).is_err());
        assert!(decompress(&[TOKEN_LITERAL, 0]).is_err());
        assert!(decompress(&[TOKEN_LITERAL, 0, 10, b'x']).is_err());
    }

    #[test]
    fn generator_is_deterministic_and_sized() {
        let a = compressible_data(1000, 7);
        let b = compressible_data(1000, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1000);
        assert_ne!(a, compressible_data(1000, 8));
    }
}
