//! Gateway store-and-forward relaying of frames along multi-hop routes.
//!
//! A [`RelayFabric`] attaches a relay agent to every participating node.
//! Frames addressed to a node with which the sender shares no network are
//! encapsulated (final destination, origin, port, TTL) and sent hop by hop
//! along the [`RouteTable`] route: each gateway receives the frame, pays a
//! per-hop relay latency (the store-and-forward cost of the gateway's CPU
//! and memory), and retransmits it on the next network — unless its
//! bounded relay queue is full, in which case the frame is dropped and
//! accounted, the grid equivalent of router backpressure.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use simnet::{Frame, NodeId, ProtoId, SimDuration, SimWorld};

use crate::route::RouteTable;

/// Encapsulation header: dst(4) + src(4) + port(2) + ttl(1).
const RELAY_HEADER_BYTES: usize = 11;

/// Configuration of the relay agents.
#[derive(Debug, Clone)]
pub struct RelayConfig {
    /// Store-and-forward latency paid by a gateway per relayed frame.
    pub per_hop_latency: SimDuration,
    /// Maximum frames a gateway may hold queued; arrivals beyond this are
    /// dropped (and counted).
    pub queue_capacity: usize,
    /// Initial time-to-live: a frame traversing more than this many relay
    /// hops is discarded (routing-loop guard).
    pub ttl: u8,
}

impl Default for RelayConfig {
    fn default() -> Self {
        RelayConfig {
            per_hop_latency: SimDuration::from_micros(10),
            queue_capacity: 64,
            ttl: 16,
        }
    }
}

/// Per-gateway relay accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// Frames this node forwarded onwards.
    pub frames_relayed: u64,
    /// Payload bytes forwarded onwards.
    pub bytes_relayed: u64,
    /// Frames dropped because the relay queue was full.
    pub frames_dropped_queue_full: u64,
    /// Frames dropped because the TTL expired.
    pub frames_dropped_ttl: u64,
    /// Frames dropped because no onward route existed.
    pub frames_dropped_no_route: u64,
    /// High-water mark of the relay queue depth.
    pub max_queue_depth: usize,
}

impl GatewayStats {
    /// Total frames dropped at this gateway for any reason.
    pub fn frames_dropped(&self) -> u64 {
        self.frames_dropped_queue_full + self.frames_dropped_ttl + self.frames_dropped_no_route
    }
}

/// A message delivered by the relay fabric to a bound endpoint.
#[derive(Debug, Clone)]
pub struct RelayedMessage {
    /// The origin node.
    pub src: NodeId,
    /// The endpoint port it was addressed to.
    pub port: u16,
    /// The payload.
    pub payload: Bytes,
    /// Relay hops the frame had left when it arrived (ttl at origin minus
    /// gateways traversed).
    pub ttl_remaining: u8,
}

/// Errors surfaced when submitting a frame for routed delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelayError {
    /// No route exists between the endpoints.
    NoRoute,
    /// The payload (plus relay header) exceeds the smallest MTU on the
    /// route; the caller must segment.
    TooLarge {
        /// Bytes submitted.
        size: usize,
        /// Largest payload the route can carry.
        max: usize,
    },
    /// The underlying network refused the frame.
    Send(simnet::SendError),
}

impl std::fmt::Display for RelayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RelayError::NoRoute => write!(f, "no route between the endpoints"),
            RelayError::TooLarge { size, max } => {
                write!(
                    f,
                    "payload of {size} bytes exceeds the route maximum of {max}"
                )
            }
            RelayError::Send(e) => write!(f, "network send failed: {e}"),
        }
    }
}

impl std::error::Error for RelayError {}

type EndpointCallback = Rc<RefCell<dyn FnMut(&mut SimWorld, RelayedMessage)>>;

#[derive(Default)]
struct GatewayState {
    queue_depth: usize,
    stats: GatewayStats,
}

struct FabricInner {
    routes: RouteTable,
    config: RelayConfig,
    gateways: HashMap<NodeId, GatewayState>,
    endpoints: HashMap<(NodeId, u16), EndpointCallback>,
    delivered_frames: u64,
    delivered_bytes: u64,
    unclaimed_frames: u64,
}

/// The relay fabric: shared routing state plus the per-node relay agents.
#[derive(Clone)]
pub struct RelayFabric {
    inner: Rc<RefCell<FabricInner>>,
}

impl RelayFabric {
    /// Creates a relay fabric over the given routing table.
    pub fn new(routes: RouteTable, config: RelayConfig) -> RelayFabric {
        RelayFabric {
            inner: Rc::new(RefCell::new(FabricInner {
                routes,
                config,
                gateways: HashMap::new(),
                endpoints: HashMap::new(),
                delivered_frames: 0,
                delivered_bytes: 0,
                unclaimed_frames: 0,
            })),
        }
    }

    /// Replaces the routing table (after a topology change).
    pub fn set_routes(&self, routes: RouteTable) {
        self.inner.borrow_mut().routes = routes;
    }

    /// Runs `f` with a borrow of the routing table.
    pub fn with_routes<R>(&self, f: impl FnOnce(&RouteTable) -> R) -> R {
        f(&self.inner.borrow().routes)
    }

    /// Attaches the relay agent to `node`: the node can now receive
    /// relayed frames, and will store-and-forward frames in transit that
    /// are routed through it. Must be called once for every gateway and
    /// every endpoint node participating in relayed traffic.
    pub fn attach(&self, world: &mut SimWorld, node: NodeId) {
        self.inner.borrow_mut().gateways.entry(node).or_default();
        let fabric = self.clone();
        world.register_handler(node, ProtoId::RELAY, move |world, _net, frame| {
            fabric.on_relay_frame(world, frame);
        });
    }

    /// Binds an endpoint callback for `(node, port)`; the node is attached
    /// if it was not already.
    pub fn bind(
        &self,
        world: &mut SimWorld,
        node: NodeId,
        port: u16,
        callback: impl FnMut(&mut SimWorld, RelayedMessage) + 'static,
    ) {
        self.attach(world, node);
        self.inner
            .borrow_mut()
            .endpoints
            .insert((node, port), Rc::new(RefCell::new(callback)));
    }

    /// Largest payload deliverable from `src` to `dst` (smallest MTU along
    /// the route minus the relay header), if a route exists.
    pub fn max_payload(&self, world: &SimWorld, src: NodeId, dst: NodeId) -> Option<usize> {
        let inner = self.inner.borrow();
        let info = inner.routes.path_info(world, src, dst)?;
        Some(info.min_mtu.saturating_sub(RELAY_HEADER_BYTES))
    }

    /// Sends `payload` from `src` to `(dst, port)` along the routed path,
    /// relaying through gateways as needed.
    pub fn send(
        &self,
        world: &mut SimWorld,
        src: NodeId,
        dst: NodeId,
        port: u16,
        payload: impl Into<Bytes>,
    ) -> Result<(), RelayError> {
        let payload = payload.into();
        let (first_hop, ttl) = {
            let inner = self.inner.borrow();
            if !inner.routes.reachable(src, dst) {
                return Err(RelayError::NoRoute);
            }
            let info = inner
                .routes
                .path_info(world, src, dst)
                .ok_or(RelayError::NoRoute)?;
            let max = info.min_mtu.saturating_sub(RELAY_HEADER_BYTES);
            if payload.len() > max {
                return Err(RelayError::TooLarge {
                    size: payload.len(),
                    max,
                });
            }
            (inner.routes.next_hop(src, dst), inner.config.ttl)
        };

        match first_hop {
            None => {
                // src == dst: local delivery through the event queue.
                let fabric = self.clone();
                let msg = RelayedMessage {
                    src,
                    port,
                    payload,
                    ttl_remaining: ttl,
                };
                world.schedule_after(SimDuration::ZERO, move |world| {
                    fabric.deliver(world, dst, msg);
                });
                Ok(())
            }
            Some(hop) => {
                let wire = encode(dst, src, port, ttl, &payload);
                world
                    .send_frame(hop.network, Frame::new(src, hop.node, ProtoId::RELAY, wire))
                    .map_err(RelayError::Send)
            }
        }
    }

    /// Relay agent: a `ProtoId::RELAY` frame arrived at `frame.dst`.
    fn on_relay_frame(&self, world: &mut SimWorld, frame: Frame) {
        let here = frame.dst;
        let Some((final_dst, orig_src, port, ttl)) = decode(&frame.payload) else {
            return; // malformed; drop silently
        };

        if final_dst == here {
            let msg = RelayedMessage {
                src: orig_src,
                port,
                payload: frame.payload.slice(RELAY_HEADER_BYTES..),
                ttl_remaining: ttl,
            };
            self.deliver(world, here, msg);
            return;
        }

        // In transit: store-and-forward towards the destination.
        let (forward, per_hop_latency) = {
            let mut inner = self.inner.borrow_mut();
            let config_latency = inner.config.per_hop_latency;
            let capacity = inner.config.queue_capacity;
            let next = inner.routes.next_hop(here, final_dst);
            let state = inner.gateways.entry(here).or_default();
            if ttl == 0 {
                state.stats.frames_dropped_ttl += 1;
                (None, config_latency)
            } else if next.is_none() {
                state.stats.frames_dropped_no_route += 1;
                (None, config_latency)
            } else if state.queue_depth >= capacity {
                state.stats.frames_dropped_queue_full += 1;
                (None, config_latency)
            } else {
                state.queue_depth += 1;
                state.stats.max_queue_depth = state.stats.max_queue_depth.max(state.queue_depth);
                (next, config_latency)
            }
        };

        let Some(hop) = forward else { return };
        let fabric = self.clone();
        let payload = frame.payload.slice(RELAY_HEADER_BYTES..);
        world.schedule_after(per_hop_latency, move |world| {
            {
                let mut inner = fabric.inner.borrow_mut();
                let state = inner.gateways.entry(here).or_default();
                state.queue_depth = state.queue_depth.saturating_sub(1);
                state.stats.frames_relayed += 1;
                state.stats.bytes_relayed += payload.len() as u64;
            }
            let wire = encode(final_dst, orig_src, port, ttl - 1, &payload);
            // A send failure here means the topology changed under the
            // fabric; account it as a no-route drop.
            if world
                .send_frame(
                    hop.network,
                    Frame::new(here, hop.node, ProtoId::RELAY, wire),
                )
                .is_err()
            {
                let mut inner = fabric.inner.borrow_mut();
                let state = inner.gateways.entry(here).or_default();
                state.stats.frames_relayed -= 1;
                state.stats.bytes_relayed -= payload.len() as u64;
                state.stats.frames_dropped_no_route += 1;
            }
        });
    }

    fn deliver(&self, world: &mut SimWorld, node: NodeId, msg: RelayedMessage) {
        let callback = {
            let mut inner = self.inner.borrow_mut();
            match inner.endpoints.get(&(node, msg.port)).cloned() {
                Some(cb) => {
                    inner.delivered_frames += 1;
                    inner.delivered_bytes += msg.payload.len() as u64;
                    Some(cb)
                }
                None => {
                    inner.unclaimed_frames += 1;
                    None
                }
            }
        };
        if let Some(cb) = callback {
            cb.borrow_mut()(world, msg);
        }
    }

    /// Relay accounting for one gateway node.
    pub fn gateway_stats(&self, node: NodeId) -> GatewayStats {
        self.inner
            .borrow()
            .gateways
            .get(&node)
            .map(|g| g.stats)
            .unwrap_or_default()
    }

    /// Total frames delivered to bound endpoints.
    pub fn delivered_frames(&self) -> u64 {
        self.inner.borrow().delivered_frames
    }

    /// Total payload bytes delivered to bound endpoints.
    pub fn delivered_bytes(&self) -> u64 {
        self.inner.borrow().delivered_bytes
    }

    /// Frames that reached a node with no endpoint bound on the port.
    pub fn unclaimed_frames(&self) -> u64 {
        self.inner.borrow().unclaimed_frames
    }

    /// Sum of `frames_relayed` across every gateway.
    pub fn total_relayed(&self) -> u64 {
        self.inner
            .borrow()
            .gateways
            .values()
            .map(|g| g.stats.frames_relayed)
            .sum()
    }

    /// Sum of dropped frames across every gateway.
    pub fn total_dropped(&self) -> u64 {
        self.inner
            .borrow()
            .gateways
            .values()
            .map(|g| g.stats.frames_dropped())
            .sum()
    }
}

fn encode(dst: NodeId, src: NodeId, port: u16, ttl: u8, payload: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(RELAY_HEADER_BYTES + payload.len());
    buf.put_u32(dst.0);
    buf.put_u32(src.0);
    buf.put_u16(port);
    buf.put_u8(ttl);
    buf.extend_from_slice(payload);
    buf.freeze()
}

fn decode(wire: &Bytes) -> Option<(NodeId, NodeId, u16, u8)> {
    if wire.len() < RELAY_HEADER_BYTES {
        return None;
    }
    let mut head = wire.slice(..RELAY_HEADER_BYTES);
    let dst = NodeId(head.get_u32());
    let src = NodeId(head.get_u32());
    let port = head.get_u16();
    let ttl = head.get_u8();
    Some((dst, src, port, ttl))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::NetworkSpec;
    use std::cell::Cell;

    /// a —eth— g —wan— h —eth— b with relay agents everywhere.
    fn relay_world(config: RelayConfig) -> (SimWorld, RelayFabric, [NodeId; 4]) {
        let mut w = SimWorld::new(3);
        let a = w.add_node("a");
        let g = w.add_node("g");
        let h = w.add_node("h");
        let b = w.add_node("b");
        let lan1 = w.add_network(NetworkSpec::ethernet_100());
        let wan = w.add_network(NetworkSpec::vthd_wan());
        let lan2 = w.add_network(NetworkSpec::ethernet_100());
        w.attach(a, lan1);
        w.attach(g, lan1);
        w.attach(g, wan);
        w.attach(h, wan);
        w.attach(h, lan2);
        w.attach(b, lan2);
        let routes = RouteTable::compute(&w);
        let fabric = RelayFabric::new(routes, config);
        for n in [a, g, h, b] {
            fabric.attach(&mut w, n);
        }
        (w, fabric, [a, g, h, b])
    }

    #[test]
    fn frame_crosses_two_gateways_and_is_accounted() {
        let (mut w, fabric, [a, g, h, b]) = relay_world(RelayConfig::default());
        let got: Rc<RefCell<Option<RelayedMessage>>> = Rc::new(RefCell::new(None));
        let g2 = got.clone();
        fabric.bind(&mut w, b, 9, move |_w, m| *g2.borrow_mut() = Some(m));
        fabric.send(&mut w, a, b, 9, vec![7u8; 600]).unwrap();
        w.run();
        let msg = got.borrow().clone().expect("delivered");
        assert_eq!(msg.src, a);
        assert_eq!(msg.payload, vec![7u8; 600]);
        assert_eq!(fabric.gateway_stats(g).frames_relayed, 1);
        assert_eq!(fabric.gateway_stats(h).frames_relayed, 1);
        assert_eq!(fabric.gateway_stats(g).bytes_relayed, 600);
        assert_eq!(fabric.delivered_frames(), 1);
        assert_eq!(fabric.total_dropped(), 0);
        // TTL decremented once per gateway.
        assert_eq!(msg.ttl_remaining, RelayConfig::default().ttl - 2);
    }

    #[test]
    fn relay_latency_is_charged_per_hop() {
        let (mut w, fabric, [a, _, _, b]) = relay_world(RelayConfig {
            per_hop_latency: SimDuration::from_millis(5),
            ..Default::default()
        });
        let at = Rc::new(Cell::new(simnet::SimTime::ZERO));
        let a2 = at.clone();
        fabric.bind(&mut w, b, 1, move |world, _m| a2.set(world.now()));
        fabric.send(&mut w, a, b, 1, vec![0u8; 100]).unwrap();
        w.run();
        // Two gateways, 5 ms each, plus the 8 ms WAN latency at minimum.
        assert!(
            at.get() >= simnet::SimTime::from_millis(18),
            "at {:?}",
            at.get()
        );
    }

    #[test]
    fn bounded_queue_drops_overload() {
        // Hold each frame for 1 ms at the gateway while arrivals are spaced
        // ~18 µs apart on the access LAN, so the bounded queue overflows.
        let (mut w, fabric, [a, g, _, b]) = relay_world(RelayConfig {
            per_hop_latency: SimDuration::from_millis(1),
            queue_capacity: 4,
            ..Default::default()
        });
        let received = Rc::new(Cell::new(0u32));
        let r = received.clone();
        fabric.bind(&mut w, b, 2, move |_w, _m| r.set(r.get() + 1));
        for _ in 0..32 {
            fabric.send(&mut w, a, b, 2, vec![0u8; 200]).unwrap();
        }
        w.run();
        let gs = fabric.gateway_stats(g);
        assert!(
            gs.frames_dropped_queue_full > 0,
            "expected queue drops: {gs:?}"
        );
        assert_eq!(
            gs.frames_relayed + gs.frames_dropped_queue_full,
            32,
            "every frame either relayed or dropped: {gs:?}"
        );
        assert_eq!(received.get() as u64, fabric.delivered_frames());
        assert!(gs.max_queue_depth <= 4);
    }

    #[test]
    fn no_route_is_reported() {
        let mut w = SimWorld::new(0);
        let a = w.add_node("a");
        let b = w.add_node("b");
        let lan = w.add_network(NetworkSpec::ethernet_100());
        w.attach(a, lan);
        let routes = RouteTable::compute(&w);
        let fabric = RelayFabric::new(routes, RelayConfig::default());
        fabric.attach(&mut w, a);
        assert_eq!(
            fabric.send(&mut w, a, b, 1, vec![1u8]),
            Err(RelayError::NoRoute)
        );
    }

    #[test]
    fn oversized_payload_is_rejected_with_route_mtu() {
        let (mut w, fabric, [a, _, _, b]) = relay_world(RelayConfig::default());
        let max = fabric.max_payload(&w, a, b).unwrap();
        assert_eq!(max, 1500 - RELAY_HEADER_BYTES);
        let err = fabric
            .send(&mut w, a, b, 1, vec![0u8; max + 1])
            .unwrap_err();
        assert_eq!(err, RelayError::TooLarge { size: max + 1, max });
        // At the limit it goes through.
        fabric.send(&mut w, a, b, 1, vec![0u8; max]).unwrap();
    }

    #[test]
    fn local_send_delivers_without_networks() {
        let (mut w, fabric, [a, ..]) = relay_world(RelayConfig::default());
        let hits = Rc::new(Cell::new(0u32));
        let h2 = hits.clone();
        fabric.bind(&mut w, a, 5, move |_w, _m| h2.set(h2.get() + 1));
        fabric.send(&mut w, a, a, 5, vec![0u8; 10]).unwrap();
        w.run();
        assert_eq!(hits.get(), 1);
    }

    #[test]
    fn unbound_port_counts_unclaimed() {
        let (mut w, fabric, [a, _, _, b]) = relay_world(RelayConfig::default());
        fabric.send(&mut w, a, b, 42, vec![0u8; 10]).unwrap();
        w.run();
        assert_eq!(fabric.unclaimed_frames(), 1);
        assert_eq!(fabric.delivered_frames(), 0);
    }
}
