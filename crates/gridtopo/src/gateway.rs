//! Gateway store-and-forward relaying of frames along multi-hop routes.
//!
//! A [`RelayFabric`] attaches a relay agent to every participating node.
//! Frames addressed to a node with which the sender shares no network are
//! encapsulated (final destination, origin, port, TTL) and sent hop by hop
//! along the [`RouteTable`](crate::route::RouteTable) route: each gateway receives the frame, pays a
//! per-hop relay latency (the store-and-forward cost of the gateway's CPU
//! and memory), and retransmits it on the next network.
//!
//! Congestion at a gateway is resolved by one of two [`BackpressureMode`]s:
//!
//! * [`BackpressureMode::Drop`] — the distributed-world answer: arrivals
//!   beyond the bounded relay queue are dropped and accounted, like a
//!   best-effort router.
//! * [`BackpressureMode::Credit`] — the parallel-world answer: each
//!   gateway's queue capacity is advertised upstream as a pool of credits.
//!   A sender (the origin, or an upstream gateway forwarding towards the
//!   next hop) must hold a credit before transmitting; with the pool
//!   exhausted the frame *parks* instead of being dropped, and resumes in
//!   FIFO order when the gateway forwards a queued frame and the freed
//!   credit travels back upstream ([`RelayConfig::credit_return_latency`]).
//!   Backpressure cascades: a parked frame inside a gateway keeps occupying
//!   that gateway's queue, which withholds *its* upstream credits, until
//!   the stall reaches the origins — lossless, exactly-once relaying.
//!
//! The fabric also supports deterministic *fault injection* (see
//! [`RelayFabric::inject_gateway_faults`]): a seeded fraction of in-transit
//! frames is discarded at the gateways, with exact accounting, so recovery
//! logic can be tested reproducibly.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::rc::Rc;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use simnet::{
    CauseId, DropCause, Frame, NetworkId, NodeId, ProtoId, SimDuration, SimRng, SimTime, SimWorld,
    TraceEvent,
};

use crate::route::{GridRoutes, Hop};

/// Encapsulation header: dst(4) + src(4) + port(2) + ttl(1) + cause(8).
/// The cause id correlates every hop of one frame's journey in the typed
/// event trace (`simnet::telemetry`), like a trace id on a real wire.
const RELAY_HEADER_BYTES: usize = 19;

/// How a gateway resolves relay-queue congestion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BackpressureMode {
    /// Arrivals beyond the bounded queue are dropped and accounted.
    #[default]
    Drop,
    /// Senders hold per-gateway credits and park (stall) instead of
    /// dropping when the pool is exhausted; no frame is ever lost to a
    /// full queue.
    Credit,
}

impl BackpressureMode {
    /// Lowercase label used in reports ("drop" / "credit").
    pub fn label(self) -> &'static str {
        match self {
            BackpressureMode::Drop => "drop",
            BackpressureMode::Credit => "credit",
        }
    }
}

/// Configuration of the relay agents.
#[derive(Debug, Clone)]
pub struct RelayConfig {
    /// Store-and-forward latency paid by a gateway per relayed frame.
    pub per_hop_latency: SimDuration,
    /// Maximum frames a gateway may hold queued. In [`BackpressureMode::Drop`]
    /// arrivals beyond this are dropped (and counted); in
    /// [`BackpressureMode::Credit`] it is the size of the credit pool the
    /// gateway advertises upstream.
    pub queue_capacity: usize,
    /// Initial time-to-live: a frame traversing more than this many relay
    /// hops is discarded (routing-loop guard).
    pub ttl: u8,
    /// How congestion is resolved at the gateways.
    pub backpressure: BackpressureMode,
    /// Time for a freed credit to travel back upstream and re-enter the
    /// pool (the credit-advertisement latency). Only meaningful in
    /// [`BackpressureMode::Credit`].
    pub credit_return_latency: SimDuration,
    /// Re-route frames around gateways marked down with
    /// [`RelayFabric::fail_gateway`] (through any surviving gateway of the
    /// site, on hierarchical routes). With this off a failed gateway
    /// simply blackholes its routes — the seed behaviour.
    pub gateway_failover: bool,
}

impl Default for RelayConfig {
    fn default() -> Self {
        RelayConfig {
            per_hop_latency: SimDuration::from_micros(10),
            queue_capacity: 64,
            ttl: 16,
            backpressure: BackpressureMode::Drop,
            credit_return_latency: SimDuration::from_micros(10),
            gateway_failover: true,
        }
    }
}

/// Per-gateway relay accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// Frames this node forwarded onwards.
    pub frames_relayed: u64,
    /// Payload bytes forwarded onwards.
    pub bytes_relayed: u64,
    /// Frames dropped because the relay queue was full (never in credit
    /// mode).
    pub frames_dropped_queue_full: u64,
    /// Frames dropped because the TTL expired.
    pub frames_dropped_ttl: u64,
    /// Frames dropped because no onward route existed.
    pub frames_dropped_no_route: u64,
    /// Frames discarded by the fault injector (see
    /// [`RelayFabric::inject_gateway_faults`]).
    pub frames_dropped_fault: u64,
    /// Frames discarded because this gateway was marked down with
    /// [`RelayFabric::fail_gateway`] while they were addressed to or
    /// queued inside it.
    pub frames_dropped_gateway_down: u64,
    /// High-water mark of the relay queue depth.
    pub max_queue_depth: usize,
    /// Credits consumed towards this gateway (frames admitted into its
    /// queue space), credit mode only.
    pub credits_consumed: u64,
    /// Credits returned to this gateway's pool, credit mode only. At
    /// quiescence `credits_consumed == credits_returned`.
    pub credits_returned: u64,
}

impl GatewayStats {
    /// Total frames dropped at this gateway for any reason.
    pub fn frames_dropped(&self) -> u64 {
        self.frames_dropped_queue_full
            + self.frames_dropped_ttl
            + self.frames_dropped_no_route
            + self.frames_dropped_fault
            + self.frames_dropped_gateway_down
    }
}

/// A message delivered by the relay fabric to a bound endpoint.
#[derive(Debug, Clone)]
pub struct RelayedMessage {
    /// The origin node.
    pub src: NodeId,
    /// The endpoint port it was addressed to.
    pub port: u16,
    /// The payload.
    pub payload: Bytes,
    /// Relay hops the frame had left when it arrived (ttl at origin minus
    /// gateways traversed).
    pub ttl_remaining: u8,
    /// Journey id correlating this frame's hops in the typed event trace.
    pub cause: CauseId,
}

/// Errors surfaced when submitting a frame for routed delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelayError {
    /// No route exists between the endpoints.
    NoRoute,
    /// The payload (plus relay header) exceeds the smallest MTU on the
    /// route; the caller must segment.
    TooLarge {
        /// Bytes submitted.
        size: usize,
        /// Largest payload the route can carry.
        max: usize,
    },
    /// The underlying network refused the frame.
    Send(simnet::SendError),
}

impl std::fmt::Display for RelayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RelayError::NoRoute => write!(f, "no route between the endpoints"),
            RelayError::TooLarge { size, max } => {
                write!(
                    f,
                    "payload of {size} bytes exceeds the route maximum of {max}"
                )
            }
            RelayError::Send(e) => write!(f, "network send failed: {e}"),
        }
    }
}

impl std::error::Error for RelayError {}

type EndpointCallback = Rc<RefCell<dyn FnMut(&mut SimWorld, RelayedMessage)>>;

/// Where a consumed credit must travel to be returned: `None` for the
/// classic in-memory return (same-site consumer, modelled as a fixed
/// [`RelayConfig::credit_return_latency`]), `Some((node, net))` when the
/// wire credit plane is enabled and the consumer sits across a site
/// boundary — the return then rides a real [`ProtoId::RELAY_CREDIT`]
/// frame over `net` back to `node`, paying true wire timing.
type Upstream = Option<(NodeId, NetworkId)>;

#[derive(Default)]
struct GatewayState {
    queue_depth: usize,
    /// Credits currently held by senders towards this gateway (credit
    /// mode). Invariant: `credits_outstanding <= config.queue_capacity`.
    credits_outstanding: usize,
    stats: GatewayStats,
}

/// A frame waiting for a credit of the gateway it is keyed under.
struct ParkedFrame {
    /// `None`: an origin send not yet transmitted. `Some(gw)`: a frame
    /// occupying gateway `gw`'s queue, waiting for the *next* hop's credit.
    from: Option<NodeId>,
    /// The hop to transmit on once a credit frees.
    hop: Hop,
    final_dst: NodeId,
    orig_src: NodeId,
    port: u16,
    /// TTL to encode: the origin value for origin frames, the arriving
    /// (pre-decrement) value for in-transit frames.
    ttl: u8,
    payload: Bytes,
    parked_at: SimTime,
    cause: CauseId,
    /// Reverse path for the *holding* gateway's own credit once the frame
    /// finally leaves its queue (wire credit plane; see [`Upstream`]).
    upstream: Upstream,
}

/// Deterministic in-transit frame discarder (crash/corruption model).
struct FaultInjector {
    drop_fraction: f64,
    rng: SimRng,
}

struct FabricInner {
    routes: GridRoutes,
    config: RelayConfig,
    gateways: BTreeMap<NodeId, GatewayState>,
    endpoints: HashMap<(NodeId, u16), EndpointCallback>,
    /// Frames accepted by [`RelayFabric::send`] (parked ones included).
    frames_sent: u64,
    delivered_frames: u64,
    delivered_bytes: u64,
    unclaimed_frames: u64,
    /// Frames waiting for a credit, keyed by the gateway whose pool is
    /// exhausted. FIFO per gateway, so resumption is deterministic.
    parked: BTreeMap<NodeId, VecDeque<ParkedFrame>>,
    /// Times a send had to park for want of a credit.
    credit_stalls: u64,
    /// Total virtual time frames spent parked, in nanoseconds.
    credit_stall_ns: u64,
    /// Parked frames whose transmission failed once unparked (topology
    /// changed under the fabric).
    parked_send_failures: u64,
    /// Gateways marked down with [`RelayFabric::fail_gateway`].
    down: BTreeSet<NodeId>,
    /// Frames whose next hop was re-routed around a down gateway.
    frames_rerouted: u64,
    /// Memoized avoiding next hops while the down set is non-empty
    /// (`(hop, differs-from-default)` per pair, `None` = unroutable):
    /// failover-time routing re-solves the backbone per lookup, which
    /// must not be paid per frame per hop. Cleared whenever the down set
    /// or the routes change.
    reroute_cache: HashMap<(NodeId, NodeId), Option<(Hop, bool)>>,
    fault: Option<FaultInjector>,
    /// Whether this fabric already registered its metrics collector.
    metrics_registered: bool,
    /// Wire credit plane (see [`RelayFabric::enable_wire_credit_returns`]):
    /// node index → site id. When set, a credit consumed by a sender in a
    /// *different* site than the gateway is returned as a real
    /// [`ProtoId::RELAY_CREDIT`] frame on the reverse trunk instead of the
    /// fixed-latency in-memory return. `None` (the default) keeps the
    /// fabric byte-identical to the classic behaviour.
    wire_credit_sites: Option<Vec<u16>>,
}

impl FabricInner {
    /// The next hop from `src` towards `dst`, routed around the down
    /// gateways when failover is enabled. Counts a re-route whenever the
    /// default hop would have entered a down gateway; the returned flag
    /// tells the caller the hop differs from the default (so it can
    /// record a typed re-route event against the frame's cause).
    fn pick_next_hop(&mut self, src: NodeId, dst: NodeId) -> Option<(Hop, bool)> {
        if self.down.is_empty() || !self.config.gateway_failover {
            // With failover off a failed gateway is a genuine blackhole:
            // routing keeps pointing into it and the frames die there.
            return self.routes.next_hop(src, dst).map(|hop| (hop, false));
        }
        let entry = match self.reroute_cache.get(&(src, dst)) {
            Some(&cached) => cached,
            None => {
                let entry = self
                    .routes
                    .next_hop_avoiding(src, dst, &self.down)
                    .map(|hop| {
                        let rerouted = self.routes.next_hop(src, dst) != Some(hop);
                        (hop, rerouted)
                    });
                self.reroute_cache.insert((src, dst), entry);
                entry
            }
        };
        let (hop, rerouted) = entry?;
        if rerouted {
            self.frames_rerouted += 1;
        }
        Some((hop, rerouted))
    }
    /// With the wire credit plane enabled: the reverse path the credit a
    /// frame from `src` consumed towards `here` must ride home, when the
    /// two sit in different sites. `None` otherwise (plane off, same
    /// site, or unknown nodes) — the in-memory return applies.
    fn credit_upstream(&self, src: NodeId, here: NodeId, net: NetworkId) -> Upstream {
        let sites = self.wire_credit_sites.as_ref()?;
        let site = |n: NodeId| sites.get(n.0 as usize).copied();
        match (site(src), site(here)) {
            (Some(a), Some(b)) if a != b => Some((src, net)),
            _ => None,
        }
    }

    /// Takes one credit towards `gw` if the pool allows it.
    fn try_consume_credit(&mut self, gw: NodeId) -> bool {
        let capacity = self.config.queue_capacity;
        let state = self.gateways.entry(gw).or_default();
        if state.credits_outstanding >= capacity {
            false
        } else {
            state.credits_outstanding += 1;
            state.stats.credits_consumed += 1;
            true
        }
    }

    /// Returns one credit to `gw`'s pool immediately (no travel latency);
    /// used when a consumed credit is undone in the same instant.
    fn release_credit_now(&mut self, gw: NodeId) {
        let state = self.gateways.entry(gw).or_default();
        debug_assert!(state.credits_outstanding > 0, "credit pool underflow");
        state.credits_outstanding = state.credits_outstanding.saturating_sub(1);
        state.stats.credits_returned += 1;
    }

    /// Mirrors the fabric's accounting into a metrics snapshot under
    /// `relay.fabric.*` and `relay.gateway.*{gw=N}`. Gateways are walked
    /// in id order so the snapshot is deterministic.
    fn collect_metrics(&self, b: &mut simnet::SnapshotBuilder) {
        b.counter("relay.fabric.frames_sent", &[], self.frames_sent);
        b.counter("relay.fabric.frames_delivered", &[], self.delivered_frames);
        b.counter("relay.fabric.delivered_bytes", &[], self.delivered_bytes);
        b.counter("relay.fabric.frames_unclaimed", &[], self.unclaimed_frames);
        b.counter("relay.fabric.frames_rerouted", &[], self.frames_rerouted);
        b.counter("relay.fabric.credit_stalls", &[], self.credit_stalls);
        b.counter("relay.fabric.credit_stall_ns", &[], self.credit_stall_ns);
        b.counter(
            "relay.fabric.parked_send_failures",
            &[],
            self.parked_send_failures,
        );
        let parked: usize = self.parked.values().map(|q| q.len()).sum();
        b.gauge("relay.fabric.parked_frames", &[], parked as i64);
        b.gauge("relay.fabric.gateways_down", &[], self.down.len() as i64);

        // BTreeMap keys iterate in NodeId order already.
        let ids: Vec<NodeId> = self.gateways.keys().copied().collect();
        for id in ids {
            let g = &self.gateways[&id];
            let gw = id.0.to_string();
            let labels: &[(&str, &str)] = &[("gw", gw.as_str())];
            let s = &g.stats;
            b.counter("relay.gateway.frames_relayed", labels, s.frames_relayed);
            b.counter("relay.gateway.bytes_relayed", labels, s.bytes_relayed);
            b.counter(
                "relay.gateway.frames_dropped_queue_full",
                labels,
                s.frames_dropped_queue_full,
            );
            b.counter(
                "relay.gateway.frames_dropped_ttl",
                labels,
                s.frames_dropped_ttl,
            );
            b.counter(
                "relay.gateway.frames_dropped_no_route",
                labels,
                s.frames_dropped_no_route,
            );
            b.counter(
                "relay.gateway.frames_dropped_fault",
                labels,
                s.frames_dropped_fault,
            );
            b.counter(
                "relay.gateway.frames_dropped_gateway_down",
                labels,
                s.frames_dropped_gateway_down,
            );
            b.counter("relay.gateway.credits_consumed", labels, s.credits_consumed);
            b.counter("relay.gateway.credits_returned", labels, s.credits_returned);
            b.gauge(
                "relay.gateway.max_queue_depth",
                labels,
                s.max_queue_depth as i64,
            );
            b.gauge("relay.gateway.queue_depth", labels, g.queue_depth as i64);
            b.gauge(
                "relay.gateway.credits_outstanding",
                labels,
                g.credits_outstanding as i64,
            );
        }
    }
}

/// The relay fabric: shared routing state plus the per-node relay agents.
#[derive(Clone)]
pub struct RelayFabric {
    inner: Rc<RefCell<FabricInner>>,
}

impl RelayFabric {
    /// Creates a relay fabric over the given routing table (flat or
    /// hierarchical; both [`RouteTable`](crate::route::RouteTable) and
    /// [`crate::hier::HierRouteTable`] convert into [`GridRoutes`]).
    pub fn new(routes: impl Into<GridRoutes>, config: RelayConfig) -> RelayFabric {
        RelayFabric {
            inner: Rc::new(RefCell::new(FabricInner {
                routes: routes.into(),
                config,
                gateways: BTreeMap::new(),
                endpoints: HashMap::new(),
                frames_sent: 0,
                delivered_frames: 0,
                delivered_bytes: 0,
                unclaimed_frames: 0,
                parked: BTreeMap::new(),
                credit_stalls: 0,
                credit_stall_ns: 0,
                parked_send_failures: 0,
                down: BTreeSet::new(),
                frames_rerouted: 0,
                reroute_cache: HashMap::new(),
                fault: None,
                metrics_registered: false,
                wire_credit_sites: None,
            })),
        }
    }

    /// Enables the wire credit plane: `site_of[node]` maps every node to
    /// its site, and from now on a credit consumed towards a gateway by a
    /// sender in a *different* site is returned as a real
    /// [`ProtoId::RELAY_CREDIT`] frame transmitted on the reverse trunk
    /// (true serialization + propagation timing) instead of the fixed
    /// [`RelayConfig::credit_return_latency`] in-memory return. Intra-site
    /// returns are unchanged.
    ///
    /// This makes inter-site credit traffic observable on the wire — the
    /// property the partitioned executor needs: with site-per-shard
    /// ownership, *every* inter-world interaction (data and credits) is a
    /// frame crossing the shard boundary, so mirror worlds stay exact.
    ///
    /// Requirement: any node that can be the inter-site upstream of a
    /// relay hop (in practice the gateways, which forward across trunks)
    /// must be [`RelayFabric::attach`]ed so the returning credit frame
    /// finds its handler. Origin senders should share a site with their
    /// first-hop gateway.
    pub fn enable_wire_credit_returns(&self, site_of: Vec<u16>) {
        self.inner.borrow_mut().wire_credit_sites = Some(site_of);
    }

    /// Replaces the routing table (after a topology change).
    pub fn set_routes(&self, routes: impl Into<GridRoutes>) {
        let mut inner = self.inner.borrow_mut();
        inner.routes = routes.into();
        inner.reroute_cache.clear();
    }

    /// Runs `f` with a borrow of the routing table.
    pub fn with_routes<R>(&self, f: impl FnOnce(&GridRoutes) -> R) -> R {
        f(&self.inner.borrow().routes)
    }

    /// Arms the deterministic fault injector: from now on each in-transit
    /// frame arriving at a gateway is discarded with probability
    /// `drop_fraction`, drawn from a [`SimRng`] seeded with `seed` (so the
    /// exact drop pattern reproduces run to run). Discards are accounted in
    /// [`GatewayStats::frames_dropped_fault`]; in credit mode the upstream
    /// credit is still returned, so faults never leak credits.
    pub fn inject_gateway_faults(&self, drop_fraction: f64, seed: u64) {
        self.inner.borrow_mut().fault = Some(FaultInjector {
            drop_fraction: drop_fraction.clamp(0.0, 1.0),
            rng: SimRng::seeded(seed),
        });
    }

    /// Disarms the fault injector.
    pub fn clear_gateway_faults(&self) {
        self.inner.borrow_mut().fault = None;
    }

    /// Fault-injects gateway `gw`: it delivers and forwards nothing from
    /// now on (frames inside it die, exactly accounted), and — with
    /// [`RelayConfig::gateway_failover`] on — every subsequent frame is
    /// re-routed through a surviving gateway of the site (counted in
    /// [`RelayFabric::frames_rerouted`]). Frames parked on `gw`'s credit
    /// pool are re-dispatched along the surviving route immediately, in
    /// their park order, so credit mode loses nothing that had not yet
    /// entered the dead gateway.
    pub fn fail_gateway(&self, world: &mut SimWorld, gw: NodeId) {
        let stranded = {
            let mut inner = self.inner.borrow_mut();
            if !inner.down.insert(gw) {
                return; // already down
            }
            inner.reroute_cache.clear();
            inner.parked.remove(&gw).unwrap_or_default()
        };
        for pf in stranded {
            self.redispatch_parked(world, pf);
        }
    }

    /// Marks a previously failed gateway as live again (a restarted
    /// gateway process; its queue starts empty).
    pub fn restore_gateway(&self, gw: NodeId) {
        let mut inner = self.inner.borrow_mut();
        inner.down.remove(&gw);
        inner.reroute_cache.clear();
    }

    /// The gateways currently marked down.
    pub fn downed_gateways(&self) -> Vec<NodeId> {
        self.inner.borrow().down.iter().copied().collect()
    }

    /// Frames whose next hop was re-routed around a down gateway.
    pub fn frames_rerouted(&self) -> u64 {
        self.inner.borrow().frames_rerouted
    }

    /// Re-dispatches one frame that was parked on a now-failed gateway's
    /// credit pool along a surviving route (or accounts its loss).
    fn redispatch_parked(&self, world: &mut SimWorld, pf: ParkedFrame) {
        let (hop, rerouted, from, credit_mode) = {
            let mut inner = self.inner.borrow_mut();
            inner.credit_stall_ns += world.now().since(pf.parked_at).as_nanos();
            let credit_mode = inner.config.backpressure == BackpressureMode::Credit;
            let route_src = pf.from.unwrap_or(pf.orig_src);
            match inner.pick_next_hop(route_src, pf.final_dst) {
                Some((hop, rerouted)) => (hop, rerouted, pf.from, credit_mode),
                None => {
                    // No surviving route: account the loss where the frame
                    // physically was (the holding gateway, or nowhere for
                    // an origin send that never entered the fabric).
                    match pf.from {
                        Some(holder) => {
                            let state = inner.gateways.entry(holder).or_default();
                            state.queue_depth = state.queue_depth.saturating_sub(1);
                            state.stats.frames_dropped_no_route += 1;
                            let holder_returns = credit_mode;
                            drop(inner);
                            if world.events.is_enabled() {
                                let now = world.now();
                                world.events.record(
                                    now,
                                    TraceEvent::RelayDropped {
                                        gateway: holder,
                                        cause: pf.cause,
                                        drop_cause: DropCause::NoRoute,
                                    },
                                );
                            }
                            if holder_returns {
                                self.schedule_credit_return_from(world, holder, pf.upstream);
                            }
                        }
                        None => inner.parked_send_failures += 1,
                    }
                    return;
                }
            }
        };
        if world.events.is_enabled() {
            let now = world.now();
            let node = from.unwrap_or(pf.orig_src);
            world.events.record(
                now,
                TraceEvent::RelayResumed {
                    node,
                    cause: pf.cause,
                },
            );
            if rerouted {
                world.events.record(
                    now,
                    TraceEvent::RelayRerouted {
                        node,
                        cause: pf.cause,
                    },
                );
            }
        }
        // Acquire the surviving hop's credit (or re-park on it) and
        // transmit, mirroring the regular send / forward paths.
        match from {
            None => {
                let mut consumed = false;
                if hop.node != pf.final_dst && credit_mode {
                    let mut inner = self.inner.borrow_mut();
                    if !inner.try_consume_credit(hop.node) {
                        inner
                            .parked
                            .entry(hop.node)
                            .or_default()
                            .push_back(ParkedFrame {
                                hop,
                                parked_at: world.now(),
                                ..pf
                            });
                        return;
                    }
                    consumed = true;
                }
                let wire = encode(
                    pf.final_dst,
                    pf.orig_src,
                    pf.port,
                    pf.ttl,
                    pf.cause,
                    &pf.payload,
                );
                if world
                    .send_frame(
                        hop.network,
                        Frame::new(pf.orig_src, hop.node, ProtoId::RELAY, wire),
                    )
                    .is_err()
                {
                    let mut inner = self.inner.borrow_mut();
                    inner.parked_send_failures += 1;
                    if consumed {
                        inner.release_credit_now(hop.node);
                    }
                }
            }
            Some(holder) => {
                // The frame still occupies `holder`'s queue; forward it on
                // the surviving hop exactly like a due store-and-forward.
                self.forward_from_gateway(
                    world,
                    holder,
                    hop,
                    pf.final_dst,
                    pf.orig_src,
                    pf.port,
                    pf.ttl,
                    pf.payload,
                    pf.cause,
                    pf.upstream,
                );
            }
        }
    }

    /// Attaches the relay agent to `node`: the node can now receive
    /// relayed frames, and will store-and-forward frames in transit that
    /// are routed through it. Must be called once for every gateway and
    /// every endpoint node participating in relayed traffic.
    pub fn attach(&self, world: &mut SimWorld, node: NodeId) {
        let register_metrics = {
            let mut inner = self.inner.borrow_mut();
            inner.gateways.entry(node).or_default();
            !std::mem::replace(&mut inner.metrics_registered, true)
        };
        if register_metrics {
            let inner = Rc::downgrade(&self.inner);
            world.metrics.register_collector(move |b| {
                let Some(inner) = inner.upgrade() else { return };
                let inner = inner.borrow();
                inner.collect_metrics(b);
            });
        }
        let fabric = self.clone();
        world.register_handler(node, ProtoId::RELAY, move |world, net, frame| {
            fabric.on_relay_frame(world, net, frame);
        });
        let fabric = self.clone();
        world.register_handler(node, ProtoId::RELAY_CREDIT, move |world, _net, frame| {
            let Some(gw) = decode_credit(&frame.payload) else {
                return; // malformed; drop silently
            };
            fabric.on_credit_returned(world, gw);
        });
    }

    /// Binds an endpoint callback for `(node, port)`; the node is attached
    /// if it was not already.
    pub fn bind(
        &self,
        world: &mut SimWorld,
        node: NodeId,
        port: u16,
        callback: impl FnMut(&mut SimWorld, RelayedMessage) + 'static,
    ) {
        self.attach(world, node);
        self.inner
            .borrow_mut()
            .endpoints
            .insert((node, port), Rc::new(RefCell::new(callback)));
    }

    /// Largest payload deliverable from `src` to `dst` (smallest MTU along
    /// the route minus the relay header), if a route exists.
    pub fn max_payload(&self, world: &SimWorld, src: NodeId, dst: NodeId) -> Option<usize> {
        let inner = self.inner.borrow();
        let info = inner.routes.path_info(world, src, dst)?;
        Some(info.min_mtu.saturating_sub(RELAY_HEADER_BYTES))
    }

    /// Sends `payload` from `src` to `(dst, port)` along the routed path,
    /// relaying through gateways as needed.
    ///
    /// In [`BackpressureMode::Credit`], a send towards a gateway whose
    /// credit pool is exhausted *parks* (the frame is accepted and
    /// transmitted later, when a credit returns) instead of risking a
    /// queue-full drop downstream; parking time is accounted in
    /// [`RelayFabric::credit_stall_ns`].
    pub fn send(
        &self,
        world: &mut SimWorld,
        src: NodeId,
        dst: NodeId,
        port: u16,
        payload: impl Into<Bytes>,
    ) -> Result<(), RelayError> {
        let payload = payload.into();
        let (first_hop, ttl) = {
            let mut inner = self.inner.borrow_mut();
            if !inner.routes.reachable(src, dst) {
                return Err(RelayError::NoRoute);
            }
            let info = inner
                .routes
                .path_info(world, src, dst)
                .ok_or(RelayError::NoRoute)?;
            let max = info.min_mtu.saturating_sub(RELAY_HEADER_BYTES);
            if payload.len() > max {
                return Err(RelayError::TooLarge {
                    size: payload.len(),
                    max,
                });
            }
            let hop = if src == dst {
                None
            } else {
                Some(inner.pick_next_hop(src, dst).ok_or(RelayError::NoRoute)?)
            };
            (hop, inner.config.ttl)
        };
        // The journey id travels in the relay header; allocated whether or
        // not the ring records, so tracing never perturbs the schedule.
        let cause = world.events.next_cause();

        match first_hop {
            None => {
                // src == dst: local delivery through the event queue.
                self.inner.borrow_mut().frames_sent += 1;
                if world.events.is_enabled() {
                    let now = world.now();
                    world
                        .events
                        .record(now, TraceEvent::RelayAccepted { node: src, cause });
                }
                let fabric = self.clone();
                let msg = RelayedMessage {
                    src,
                    port,
                    payload,
                    ttl_remaining: ttl,
                    cause,
                };
                world.schedule_after(SimDuration::ZERO, move |world| {
                    fabric.deliver(world, dst, msg);
                });
                Ok(())
            }
            Some((hop, rerouted)) => {
                if world.events.is_enabled() {
                    let now = world.now();
                    world
                        .events
                        .record(now, TraceEvent::RelayAccepted { node: src, cause });
                    if rerouted {
                        world
                            .events
                            .record(now, TraceEvent::RelayRerouted { node: src, cause });
                    }
                }
                // A first hop that is not the destination is a gateway
                // that will queue the frame: in credit mode its queue
                // space must be reserved before transmitting.
                let mut consumed = false;
                if hop.node != dst {
                    let mut inner = self.inner.borrow_mut();
                    if inner.config.backpressure == BackpressureMode::Credit {
                        if !inner.try_consume_credit(hop.node) {
                            inner
                                .parked
                                .entry(hop.node)
                                .or_default()
                                .push_back(ParkedFrame {
                                    from: None,
                                    hop,
                                    final_dst: dst,
                                    orig_src: src,
                                    port,
                                    ttl,
                                    payload,
                                    parked_at: world.now(),
                                    cause,
                                    upstream: None,
                                });
                            inner.credit_stalls += 1;
                            inner.frames_sent += 1;
                            drop(inner);
                            if world.events.is_enabled() {
                                let now = world.now();
                                world
                                    .events
                                    .record(now, TraceEvent::RelayParked { node: src, cause });
                            }
                            return Ok(());
                        }
                        consumed = true;
                    }
                }
                let wire = encode(dst, src, port, ttl, cause, &payload);
                let sent = world
                    .send_frame(hop.network, Frame::new(src, hop.node, ProtoId::RELAY, wire))
                    .map_err(RelayError::Send);
                match sent {
                    Ok(()) => self.inner.borrow_mut().frames_sent += 1,
                    Err(_) if consumed => self.inner.borrow_mut().release_credit_now(hop.node),
                    Err(_) => {}
                }
                sent
            }
        }
    }

    /// Relay agent: a `ProtoId::RELAY` frame arrived at `frame.dst` on
    /// network `net`.
    fn on_relay_frame(&self, world: &mut SimWorld, net: NetworkId, frame: Frame) {
        let here = frame.dst;
        let Some((final_dst, orig_src, port, ttl, cause)) = decode(&frame.payload) else {
            return; // malformed; drop silently
        };
        // The hop sender (`frame.src`) holds one of our credits; with the
        // wire credit plane on and the sender across a site boundary, the
        // return must ride the reverse trunk back to it.
        let upstream = self.inner.borrow().credit_upstream(frame.src, here, net);

        if final_dst == here {
            if self.inner.borrow().down.contains(&here) {
                // A failed node delivers nothing.
                let mut inner = self.inner.borrow_mut();
                let state = inner.gateways.entry(here).or_default();
                state.stats.frames_dropped_gateway_down += 1;
                drop(inner);
                if world.events.is_enabled() {
                    let now = world.now();
                    world.events.record(
                        now,
                        TraceEvent::RelayDropped {
                            gateway: here,
                            cause,
                            drop_cause: DropCause::GatewayDown,
                        },
                    );
                }
                return;
            }
            let msg = RelayedMessage {
                src: orig_src,
                port,
                payload: frame.payload.slice(RELAY_HEADER_BYTES..),
                ttl_remaining: ttl,
                cause,
            };
            self.deliver(world, here, msg);
            return;
        }

        // In transit: store-and-forward towards the destination. The
        // upstream sender held one of our credits (credit mode), which we
        // return once the frame leaves our queue — or right away if it is
        // discarded on arrival.
        let (enqueued, drop_cause, credit_mode, per_hop_latency) = {
            let mut inner = self.inner.borrow_mut();
            let credit_mode = inner.config.backpressure == BackpressureMode::Credit;
            let config_latency = inner.config.per_hop_latency;
            let capacity = inner.config.queue_capacity;
            let fault_drop = match inner.fault.as_mut() {
                Some(f) => f.rng.gen_bool(f.drop_fraction),
                None => false,
            };
            let gateway_down = inner.down.contains(&here);
            let next = if gateway_down {
                None
            } else {
                inner.pick_next_hop(here, final_dst)
            };
            let state = inner.gateways.entry(here).or_default();
            let (enqueued, drop_cause) = if gateway_down {
                // A frame arriving at a failed gateway vanishes with it.
                state.stats.frames_dropped_gateway_down += 1;
                (None, Some(DropCause::GatewayDown))
            } else if fault_drop {
                state.stats.frames_dropped_fault += 1;
                (None, Some(DropCause::Fault))
            } else if ttl == 0 {
                state.stats.frames_dropped_ttl += 1;
                (None, Some(DropCause::Ttl))
            } else if next.is_none() {
                state.stats.frames_dropped_no_route += 1;
                (None, Some(DropCause::NoRoute))
            } else if !credit_mode && state.queue_depth >= capacity {
                state.stats.frames_dropped_queue_full += 1;
                (None, Some(DropCause::QueueFull))
            } else {
                // In credit mode the upstream credit guarantees space.
                debug_assert!(
                    !credit_mode || state.queue_depth < capacity,
                    "credit-mode queue overflow at {here}"
                );
                state.queue_depth += 1;
                state.stats.max_queue_depth = state.stats.max_queue_depth.max(state.queue_depth);
                (next, None)
            };
            (enqueued, drop_cause, credit_mode, config_latency)
        };

        let Some((hop, rerouted)) = enqueued else {
            // Discarded on arrival: the credit the upstream consumed for
            // this gateway travels straight back (faults must not leak
            // credits, or the fabric would deadlock).
            if world.events.is_enabled() {
                let now = world.now();
                world.events.record(
                    now,
                    TraceEvent::RelayDropped {
                        gateway: here,
                        cause,
                        drop_cause: drop_cause.unwrap_or(DropCause::NoRoute),
                    },
                );
            }
            if credit_mode {
                self.schedule_credit_return_from(world, here, upstream);
            }
            return;
        };
        if rerouted && world.events.is_enabled() {
            let now = world.now();
            world
                .events
                .record(now, TraceEvent::RelayRerouted { node: here, cause });
        }
        let fabric = self.clone();
        let payload = frame.payload.slice(RELAY_HEADER_BYTES..);
        world.schedule_after(per_hop_latency, move |world| {
            fabric.forward_from_gateway(
                world, here, hop, final_dst, orig_src, port, ttl, payload, cause, upstream,
            );
        });
    }

    /// The store-and-forward hold of a queued frame elapsed: acquire the
    /// next hop's credit if one is needed, then transmit — or park inside
    /// this gateway's queue until the downstream pool frees.
    #[allow(clippy::too_many_arguments)]
    fn forward_from_gateway(
        &self,
        world: &mut SimWorld,
        here: NodeId,
        hop: Hop,
        final_dst: NodeId,
        orig_src: NodeId,
        port: u16,
        ttl: u8,
        payload: Bytes,
        cause: CauseId,
        upstream: Upstream,
    ) {
        let hop = {
            let mut inner = self.inner.borrow_mut();
            let credit_mode = inner.config.backpressure == BackpressureMode::Credit;
            if inner.down.contains(&here) {
                // The gateway failed while holding this frame: the frame
                // dies with it (its credit still returns upstream so the
                // fault never leaks credits).
                let state = inner.gateways.entry(here).or_default();
                state.queue_depth = state.queue_depth.saturating_sub(1);
                state.stats.frames_dropped_gateway_down += 1;
                drop(inner);
                if world.events.is_enabled() {
                    let now = world.now();
                    world.events.record(
                        now,
                        TraceEvent::RelayDropped {
                            gateway: here,
                            cause,
                            drop_cause: DropCause::GatewayDown,
                        },
                    );
                }
                if credit_mode {
                    self.schedule_credit_return_from(world, here, upstream);
                }
                return;
            }
            // The hop chosen at enqueue time may have failed during the
            // store-and-forward hold: re-route around it now.
            let hop = if hop.node != final_dst && inner.down.contains(&hop.node) {
                match inner.pick_next_hop(here, final_dst) {
                    Some((h2, _)) => {
                        if world.events.is_enabled() {
                            let now = world.now();
                            world
                                .events
                                .record(now, TraceEvent::RelayRerouted { node: here, cause });
                        }
                        h2
                    }
                    None => {
                        let state = inner.gateways.entry(here).or_default();
                        state.queue_depth = state.queue_depth.saturating_sub(1);
                        state.stats.frames_dropped_no_route += 1;
                        drop(inner);
                        if world.events.is_enabled() {
                            let now = world.now();
                            world.events.record(
                                now,
                                TraceEvent::RelayDropped {
                                    gateway: here,
                                    cause,
                                    drop_cause: DropCause::NoRoute,
                                },
                            );
                        }
                        if credit_mode {
                            self.schedule_credit_return_from(world, here, upstream);
                        }
                        return;
                    }
                }
            } else {
                hop
            };
            let needs_credit = credit_mode && hop.node != final_dst;
            if needs_credit && !inner.try_consume_credit(hop.node) {
                inner
                    .parked
                    .entry(hop.node)
                    .or_default()
                    .push_back(ParkedFrame {
                        from: Some(here),
                        hop,
                        final_dst,
                        orig_src,
                        port,
                        ttl,
                        payload,
                        parked_at: world.now(),
                        cause,
                        upstream,
                    });
                inner.credit_stalls += 1;
                drop(inner);
                if world.events.is_enabled() {
                    let now = world.now();
                    world
                        .events
                        .record(now, TraceEvent::RelayParked { node: here, cause });
                }
                // The frame stays in `here`'s queue, so `here`'s own
                // upstream credit stays withheld: the stall cascades.
                return;
            }
            hop
        };
        self.complete_forward(
            world, here, hop, final_dst, orig_src, port, ttl, payload, cause, upstream,
        );
    }

    /// Dequeues the frame at `here` and transmits it on `hop` (the next
    /// hop's credit, when one was needed, is already held). Returns
    /// `here`'s own credit to its pool after the advertisement latency.
    #[allow(clippy::too_many_arguments)]
    fn complete_forward(
        &self,
        world: &mut SimWorld,
        here: NodeId,
        hop: Hop,
        final_dst: NodeId,
        orig_src: NodeId,
        port: u16,
        ttl: u8,
        payload: Bytes,
        cause: CauseId,
        upstream: Upstream,
    ) {
        let credit_mode = {
            let mut inner = self.inner.borrow_mut();
            let state = inner.gateways.entry(here).or_default();
            state.queue_depth = state.queue_depth.saturating_sub(1);
            state.stats.frames_relayed += 1;
            state.stats.bytes_relayed += payload.len() as u64;
            inner.config.backpressure == BackpressureMode::Credit
        };
        let wire = encode(final_dst, orig_src, port, ttl - 1, cause, &payload);
        // A send failure here means the topology changed under the
        // fabric; account it as a no-route drop.
        match world.send_frame(
            hop.network,
            Frame::new(here, hop.node, ProtoId::RELAY, wire),
        ) {
            Ok(()) => {
                if world.events.is_enabled() {
                    let now = world.now();
                    world.events.record(
                        now,
                        TraceEvent::RelayForwarded {
                            gateway: here,
                            cause,
                        },
                    );
                }
            }
            Err(_) => {
                let mut inner = self.inner.borrow_mut();
                let state = inner.gateways.entry(here).or_default();
                state.stats.frames_relayed -= 1;
                state.stats.bytes_relayed -= payload.len() as u64;
                state.stats.frames_dropped_no_route += 1;
                if credit_mode && hop.node != final_dst {
                    // The next hop's reserved space will never be used.
                    inner.release_credit_now(hop.node);
                }
                drop(inner);
                if world.events.is_enabled() {
                    let now = world.now();
                    world.events.record(
                        now,
                        TraceEvent::RelayDropped {
                            gateway: here,
                            cause,
                            drop_cause: DropCause::NoRoute,
                        },
                    );
                }
            }
        }
        if credit_mode {
            self.schedule_credit_return_from(world, here, upstream);
        }
    }

    /// Schedules the return of one of `gw`'s credits after the
    /// advertisement latency; on arrival the freed credit immediately
    /// un-parks the oldest frame waiting on `gw`, if any.
    fn schedule_credit_return(&self, world: &mut SimWorld, gw: NodeId) {
        let delay = self.inner.borrow().config.credit_return_latency;
        let fabric = self.clone();
        world.schedule_after(delay, move |world| {
            fabric.on_credit_returned(world, gw);
        });
    }

    /// Returns one of `gw`'s credits along `upstream`: the in-memory
    /// fixed-latency return when `None`, a real [`ProtoId::RELAY_CREDIT`]
    /// frame on the reverse trunk when the wire credit plane routed the
    /// consumption across sites. A refused wire send (topology changed)
    /// falls back to the in-memory return so credits never leak.
    fn schedule_credit_return_from(&self, world: &mut SimWorld, gw: NodeId, upstream: Upstream) {
        match upstream {
            None => self.schedule_credit_return(world, gw),
            Some((up_node, up_net)) => {
                let frame = Frame::new(gw, up_node, ProtoId::RELAY_CREDIT, encode_credit(gw));
                if world.send_frame(up_net, frame).is_err() {
                    self.schedule_credit_return(world, gw);
                }
            }
        }
    }

    fn on_credit_returned(&self, world: &mut SimWorld, gw: NodeId) {
        let unparked = {
            let mut inner = self.inner.borrow_mut();
            inner.release_credit_now(gw);
            match inner.parked.get_mut(&gw).and_then(|q| q.pop_front()) {
                Some(pf) => {
                    // Hand the freed credit straight to the oldest waiter.
                    let took = inner.try_consume_credit(gw);
                    debug_assert!(took, "freed credit must be consumable");
                    inner.credit_stall_ns += world.now().since(pf.parked_at).as_nanos();
                    Some(pf)
                }
                None => None,
            }
        };
        let Some(pf) = unparked else { return };
        if world.events.is_enabled() {
            let now = world.now();
            world.events.record(
                now,
                TraceEvent::RelayResumed {
                    node: pf.from.unwrap_or(pf.orig_src),
                    cause: pf.cause,
                },
            );
        }
        match pf.from {
            None => {
                // A parked origin send: transmit it now.
                let wire = encode(
                    pf.final_dst,
                    pf.orig_src,
                    pf.port,
                    pf.ttl,
                    pf.cause,
                    &pf.payload,
                );
                if world
                    .send_frame(
                        pf.hop.network,
                        Frame::new(pf.orig_src, pf.hop.node, ProtoId::RELAY, wire),
                    )
                    .is_err()
                {
                    let mut inner = self.inner.borrow_mut();
                    inner.parked_send_failures += 1;
                    inner.release_credit_now(pf.hop.node);
                }
            }
            Some(from_gw) => {
                // A frame held inside `from_gw`'s queue: forward it (this
                // in turn frees one of `from_gw`'s credits — the cascade
                // unwinds upstream hop by hop).
                self.complete_forward(
                    world,
                    from_gw,
                    pf.hop,
                    pf.final_dst,
                    pf.orig_src,
                    pf.port,
                    pf.ttl,
                    pf.payload,
                    pf.cause,
                    pf.upstream,
                );
            }
        }
    }

    fn deliver(&self, world: &mut SimWorld, node: NodeId, msg: RelayedMessage) {
        let callback = {
            let mut inner = self.inner.borrow_mut();
            match inner.endpoints.get(&(node, msg.port)).cloned() {
                Some(cb) => {
                    inner.delivered_frames += 1;
                    inner.delivered_bytes += msg.payload.len() as u64;
                    Some(cb)
                }
                None => {
                    inner.unclaimed_frames += 1;
                    None
                }
            }
        };
        if world.events.is_enabled() {
            let now = world.now();
            world.events.record(
                now,
                TraceEvent::RelayDelivered {
                    node,
                    cause: msg.cause,
                },
            );
        }
        if let Some(cb) = callback {
            cb.borrow_mut()(world, msg);
        }
    }

    /// Relay accounting for one gateway node.
    pub fn gateway_stats(&self, node: NodeId) -> GatewayStats {
        self.inner
            .borrow()
            .gateways
            .get(&node)
            .map(|g| g.stats)
            .unwrap_or_default()
    }

    /// Credits currently held by senders towards `node` (credit mode).
    pub fn outstanding_credits(&self, node: NodeId) -> usize {
        self.inner
            .borrow()
            .gateways
            .get(&node)
            .map(|g| g.credits_outstanding)
            .unwrap_or(0)
    }

    /// Credits available in `node`'s pool (credit mode): the queue
    /// capacity minus the outstanding credits.
    pub fn available_credits(&self, node: NodeId) -> usize {
        let inner = self.inner.borrow();
        let outstanding = inner
            .gateways
            .get(&node)
            .map(|g| g.credits_outstanding)
            .unwrap_or(0);
        inner.config.queue_capacity.saturating_sub(outstanding)
    }

    /// Frames currently parked waiting for any gateway's credits.
    pub fn parked_frames(&self) -> usize {
        self.inner.borrow().parked.values().map(|q| q.len()).sum()
    }

    /// Times a send had to park for want of a credit.
    pub fn credit_stalls(&self) -> u64 {
        self.inner.borrow().credit_stalls
    }

    /// Total virtual time frames spent parked waiting for credits, in
    /// nanoseconds.
    pub fn credit_stall_ns(&self) -> u64 {
        self.inner.borrow().credit_stall_ns
    }

    /// Parked frames whose transmission failed once unparked.
    pub fn parked_send_failures(&self) -> u64 {
        self.inner.borrow().parked_send_failures
    }

    /// Frames accepted by [`RelayFabric::send`] (parked sends included;
    /// rejected sends — no route, too large, link down — are not).
    pub fn frames_sent(&self) -> u64 {
        self.inner.borrow().frames_sent
    }

    /// Total frames delivered to bound endpoints.
    pub fn delivered_frames(&self) -> u64 {
        self.inner.borrow().delivered_frames
    }

    /// Total payload bytes delivered to bound endpoints.
    pub fn delivered_bytes(&self) -> u64 {
        self.inner.borrow().delivered_bytes
    }

    /// Frames that reached a node with no endpoint bound on the port.
    pub fn unclaimed_frames(&self) -> u64 {
        self.inner.borrow().unclaimed_frames
    }

    /// Sum of `frames_relayed` across every gateway.
    pub fn total_relayed(&self) -> u64 {
        self.inner
            .borrow()
            .gateways
            .values()
            .map(|g| g.stats.frames_relayed)
            .sum()
    }

    /// Sum of dropped frames across every gateway.
    pub fn total_dropped(&self) -> u64 {
        self.inner
            .borrow()
            .gateways
            .values()
            .map(|g| g.stats.frames_dropped())
            .sum()
    }
}

fn encode(dst: NodeId, src: NodeId, port: u16, ttl: u8, cause: CauseId, payload: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(RELAY_HEADER_BYTES + payload.len());
    buf.put_u32(dst.0);
    buf.put_u32(src.0);
    buf.put_u16(port);
    buf.put_u8(ttl);
    buf.put_u64(cause.0);
    buf.extend_from_slice(payload);
    buf.freeze()
}

/// Wire form of a credit-return advertisement: the 4-byte id of the
/// gateway whose pool the credit re-enters.
fn encode_credit(gw: NodeId) -> Bytes {
    let mut buf = BytesMut::with_capacity(4);
    buf.put_u32(gw.0);
    buf.freeze()
}

fn decode_credit(wire: &Bytes) -> Option<NodeId> {
    if wire.len() < 4 {
        return None;
    }
    Some(NodeId(wire.slice(..4).get_u32()))
}

fn decode(wire: &Bytes) -> Option<(NodeId, NodeId, u16, u8, CauseId)> {
    if wire.len() < RELAY_HEADER_BYTES {
        return None;
    }
    let mut head = wire.slice(..RELAY_HEADER_BYTES);
    let dst = NodeId(head.get_u32());
    let src = NodeId(head.get_u32());
    let port = head.get_u16();
    let ttl = head.get_u8();
    let cause = CauseId(head.get_u64());
    Some((dst, src, port, ttl, cause))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::RouteTable;
    use simnet::NetworkSpec;
    use std::cell::Cell;

    /// a —eth— g —wan— h —eth— b with relay agents everywhere.
    fn relay_world(config: RelayConfig) -> (SimWorld, RelayFabric, [NodeId; 4]) {
        let mut w = SimWorld::new(3);
        let a = w.add_node("a");
        let g = w.add_node("g");
        let h = w.add_node("h");
        let b = w.add_node("b");
        let lan1 = w.add_network(NetworkSpec::ethernet_100());
        let wan = w.add_network(NetworkSpec::vthd_wan());
        let lan2 = w.add_network(NetworkSpec::ethernet_100());
        w.attach(a, lan1);
        w.attach(g, lan1);
        w.attach(g, wan);
        w.attach(h, wan);
        w.attach(h, lan2);
        w.attach(b, lan2);
        let routes = RouteTable::compute(&w);
        let fabric = RelayFabric::new(routes, config);
        for n in [a, g, h, b] {
            fabric.attach(&mut w, n);
        }
        (w, fabric, [a, g, h, b])
    }

    #[test]
    fn frame_crosses_two_gateways_and_is_accounted() {
        let (mut w, fabric, [a, g, h, b]) = relay_world(RelayConfig::default());
        let got: Rc<RefCell<Option<RelayedMessage>>> = Rc::new(RefCell::new(None));
        let g2 = got.clone();
        fabric.bind(&mut w, b, 9, move |_w, m| *g2.borrow_mut() = Some(m));
        fabric.send(&mut w, a, b, 9, vec![7u8; 600]).unwrap();
        w.run();
        let msg = got.borrow().clone().expect("delivered");
        assert_eq!(msg.src, a);
        assert_eq!(msg.payload, vec![7u8; 600]);
        assert_eq!(fabric.gateway_stats(g).frames_relayed, 1);
        assert_eq!(fabric.gateway_stats(h).frames_relayed, 1);
        assert_eq!(fabric.gateway_stats(g).bytes_relayed, 600);
        assert_eq!(fabric.delivered_frames(), 1);
        assert_eq!(fabric.total_dropped(), 0);
        // TTL decremented once per gateway.
        assert_eq!(msg.ttl_remaining, RelayConfig::default().ttl - 2);
    }

    #[test]
    fn relay_latency_is_charged_per_hop() {
        let (mut w, fabric, [a, _, _, b]) = relay_world(RelayConfig {
            per_hop_latency: SimDuration::from_millis(5),
            ..Default::default()
        });
        let at = Rc::new(Cell::new(simnet::SimTime::ZERO));
        let a2 = at.clone();
        fabric.bind(&mut w, b, 1, move |world, _m| a2.set(world.now()));
        fabric.send(&mut w, a, b, 1, vec![0u8; 100]).unwrap();
        w.run();
        // Two gateways, 5 ms each, plus the 8 ms WAN latency at minimum.
        assert!(
            at.get() >= simnet::SimTime::from_millis(18),
            "at {:?}",
            at.get()
        );
    }

    #[test]
    fn bounded_queue_drops_overload() {
        // Hold each frame for 1 ms at the gateway while arrivals are spaced
        // ~18 µs apart on the access LAN, so the bounded queue overflows.
        let (mut w, fabric, [a, g, _, b]) = relay_world(RelayConfig {
            per_hop_latency: SimDuration::from_millis(1),
            queue_capacity: 4,
            ..Default::default()
        });
        let received = Rc::new(Cell::new(0u32));
        let r = received.clone();
        fabric.bind(&mut w, b, 2, move |_w, _m| r.set(r.get() + 1));
        for _ in 0..32 {
            fabric.send(&mut w, a, b, 2, vec![0u8; 200]).unwrap();
        }
        w.run();
        let gs = fabric.gateway_stats(g);
        assert!(
            gs.frames_dropped_queue_full > 0,
            "expected queue drops: {gs:?}"
        );
        assert_eq!(
            gs.frames_relayed + gs.frames_dropped_queue_full,
            32,
            "every frame either relayed or dropped: {gs:?}"
        );
        assert_eq!(received.get() as u64, fabric.delivered_frames());
        assert!(gs.max_queue_depth <= 4);
    }

    #[test]
    fn credit_mode_parks_instead_of_dropping() {
        // Same overload as `bounded_queue_drops_overload`, but with the
        // credit pool: every frame must arrive, with stalls accounted.
        let (mut w, fabric, [a, g, h, b]) = relay_world(RelayConfig {
            per_hop_latency: SimDuration::from_millis(1),
            queue_capacity: 4,
            backpressure: BackpressureMode::Credit,
            ..Default::default()
        });
        let received = Rc::new(Cell::new(0u32));
        let r = received.clone();
        fabric.bind(&mut w, b, 2, move |_w, _m| r.set(r.get() + 1));
        for _ in 0..32 {
            fabric.send(&mut w, a, b, 2, vec![0u8; 200]).unwrap();
        }
        w.run();
        let gs = fabric.gateway_stats(g);
        assert_eq!(received.get(), 32, "credit mode must be lossless: {gs:?}");
        assert_eq!(fabric.total_dropped(), 0, "{gs:?}");
        assert_eq!(gs.frames_relayed, 32);
        assert!(gs.max_queue_depth <= 4, "{gs:?}");
        assert!(fabric.credit_stalls() > 0, "overload must stall senders");
        assert!(fabric.credit_stall_ns() > 0);
        assert_eq!(fabric.parked_frames(), 0, "nothing left parked");
        // Every consumed credit came back, for both gateways.
        for gw in [g, h] {
            let s = fabric.gateway_stats(gw);
            assert_eq!(s.credits_consumed, s.credits_returned, "{s:?}");
            assert_eq!(fabric.outstanding_credits(gw), 0);
            assert_eq!(fabric.available_credits(gw), 4);
        }
    }

    #[test]
    fn wire_credit_plane_returns_inter_site_credits_on_the_trunk() {
        let mut w = SimWorld::new(7);
        let a = w.add_node("a");
        let g = w.add_node("g");
        let h = w.add_node("h");
        let b = w.add_node("b");
        let lan1 = w.add_network(NetworkSpec::ethernet_100());
        let trunk = w.add_network(NetworkSpec::ethernet_100());
        let lan2 = w.add_network(NetworkSpec::ethernet_100());
        w.attach(a, lan1);
        w.attach(g, lan1);
        w.attach(g, trunk);
        w.attach(h, trunk);
        w.attach(h, lan2);
        w.attach(b, lan2);
        let fabric = RelayFabric::new(
            RouteTable::compute(&w),
            RelayConfig {
                per_hop_latency: SimDuration::from_millis(1),
                queue_capacity: 4,
                backpressure: BackpressureMode::Credit,
                ..Default::default()
            },
        );
        for n in [a, g, h, b] {
            fabric.attach(&mut w, n);
        }
        // a,g in site 0; h,b in site 1: only the g→h hop crosses sites,
        // so only h's credits ride the trunk home.
        fabric.enable_wire_credit_returns(vec![0, 0, 1, 1]);
        let received = Rc::new(Cell::new(0u32));
        let r = received.clone();
        fabric.bind(&mut w, b, 2, move |_w, _m| r.set(r.get() + 1));
        for _ in 0..32 {
            fabric.send(&mut w, a, b, 2, vec![0u8; 200]).unwrap();
        }
        w.run();
        assert_eq!(received.get(), 32, "wire credit plane must stay lossless");
        assert_eq!(fabric.parked_frames(), 0);
        assert_eq!(fabric.total_dropped(), 0);
        for gw in [g, h] {
            let s = fabric.gateway_stats(gw);
            assert_eq!(s.credits_consumed, s.credits_returned, "{s:?}");
            assert_eq!(fabric.outstanding_credits(gw), 0);
        }
        // The trunk carried every data frame g→h plus one RELAY_CREDIT
        // frame h→g per credit g consumed towards h; the intra-site
        // returns (g's pool, consumed by a) stayed in memory.
        let consumed_at_h = fabric.gateway_stats(h).credits_consumed;
        assert_eq!(consumed_at_h, 32);
        assert_eq!(w.network(trunk).stats.frames_sent, 32 + consumed_at_h);
        assert_eq!(w.network(lan1).stats.frames_sent, 32);
        assert_eq!(w.network(lan2).stats.frames_sent, 32);
    }

    #[test]
    fn credit_mode_is_deterministic() {
        let run = || {
            let (mut w, fabric, [a, _, _, b]) = relay_world(RelayConfig {
                per_hop_latency: SimDuration::from_millis(1),
                queue_capacity: 4,
                backpressure: BackpressureMode::Credit,
                ..Default::default()
            });
            let received = Rc::new(Cell::new(0u32));
            let r = received.clone();
            fabric.bind(&mut w, b, 2, move |_w, _m| r.set(r.get() + 1));
            for _ in 0..24 {
                fabric.send(&mut w, a, b, 2, vec![0u8; 200]).unwrap();
            }
            w.run();
            (received.get(), fabric.credit_stall_ns(), w.now().as_nanos())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fault_injection_is_exactly_accounted_and_returns_credits() {
        let run = |mode: BackpressureMode| {
            let (mut w, fabric, [a, g, h, b]) = relay_world(RelayConfig {
                backpressure: mode,
                ..Default::default()
            });
            fabric.inject_gateway_faults(0.4, 0xFA11);
            let received = Rc::new(Cell::new(0u64));
            let r = received.clone();
            fabric.bind(&mut w, b, 2, move |_w, _m| r.set(r.get() + 1));
            let sent = 60u64;
            for _ in 0..sent {
                fabric.send(&mut w, a, b, 2, vec![0u8; 200]).unwrap();
            }
            w.run();
            let (sg, sh) = (fabric.gateway_stats(g), fabric.gateway_stats(h));
            // Exact conservation at each gateway: everything that arrived
            // was forwarded or fault-dropped.
            assert_eq!(sg.frames_relayed + sg.frames_dropped(), sent);
            assert_eq!(sh.frames_relayed + sh.frames_dropped(), sg.frames_relayed);
            assert_eq!(received.get(), sh.frames_relayed);
            assert!(sg.frames_dropped_fault + sh.frames_dropped_fault > 0);
            if mode == BackpressureMode::Credit {
                assert_eq!(sg.frames_dropped_queue_full, 0);
                for gw in [g, h] {
                    let s = fabric.gateway_stats(gw);
                    assert_eq!(s.credits_consumed, s.credits_returned, "{s:?}");
                    assert_eq!(fabric.outstanding_credits(gw), 0);
                }
            }
            received.get()
        };
        // Deterministic in both modes, and the seeded drop pattern is
        // identical run to run.
        assert_eq!(run(BackpressureMode::Drop), run(BackpressureMode::Drop));
        assert_eq!(run(BackpressureMode::Credit), run(BackpressureMode::Credit));
    }

    /// a —lan1— g —wan— {h1, h2} —lan2— b : the destination site has a
    /// redundant gateway pair on hierarchical routes.
    fn redundant_world(config: RelayConfig) -> (SimWorld, RelayFabric, [NodeId; 5]) {
        let mut w = SimWorld::new(5);
        let a = w.add_node("a");
        let g = w.add_node("g");
        let h1 = w.add_node("h1");
        let h2 = w.add_node("h2");
        let b = w.add_node("b");
        let lan1 = w.add_network(NetworkSpec::ethernet_100());
        let wan = w.add_network(NetworkSpec::vthd_wan());
        let lan2 = w.add_network(NetworkSpec::ethernet_100());
        for n in [a, g] {
            w.attach(n, lan1);
        }
        for n in [g, h1, h2] {
            w.attach(n, wan);
        }
        for n in [h1, h2, b] {
            w.attach(n, lan2);
        }
        let mut layout = crate::hier::SiteLayout::new();
        layout.add_site(g, [a, g]);
        layout.add_site_ranked(&[h1, h2], [h1, h2, b]);
        let routes = crate::hier::HierRouteTable::try_compute(&w, &layout).unwrap();
        let fabric = RelayFabric::new(routes, config);
        for n in [a, g, h1, h2, b] {
            fabric.attach(&mut w, n);
        }
        (w, fabric, [a, g, h1, h2, b])
    }

    #[test]
    fn failed_gateway_reroutes_frames_through_the_secondary() {
        let (mut w, fabric, [a, g, h1, h2, b]) = redundant_world(RelayConfig::default());
        let received = Rc::new(Cell::new(0u64));
        let r = received.clone();
        fabric.bind(&mut w, b, 4, move |_w, _m| r.set(r.get() + 1));
        // Healthy: the primary h1 carries the route.
        fabric.send(&mut w, a, b, 4, vec![1u8; 300]).unwrap();
        w.run();
        assert_eq!(received.get(), 1);
        assert_eq!(fabric.gateway_stats(h1).frames_relayed, 1);
        assert_eq!(fabric.gateway_stats(h2).frames_relayed, 0);
        // Fail the primary: traffic shifts to the secondary.
        fabric.fail_gateway(&mut w, h1);
        for _ in 0..8 {
            fabric.send(&mut w, a, b, 4, vec![2u8; 300]).unwrap();
        }
        w.run();
        assert_eq!(received.get(), 9, "every post-fail frame arrives");
        assert_eq!(fabric.gateway_stats(h2).frames_relayed, 8);
        assert!(fabric.frames_rerouted() >= 8, "re-routes are counted");
        assert_eq!(fabric.downed_gateways(), vec![h1]);
        assert_eq!(fabric.gateway_stats(g).frames_relayed, 9);
        // Restoring brings the primary back.
        fabric.restore_gateway(h1);
        fabric.send(&mut w, a, b, 4, vec![3u8; 300]).unwrap();
        w.run();
        assert_eq!(fabric.gateway_stats(h1).frames_relayed, 2);
        assert_eq!(received.get(), 10);
    }

    #[test]
    fn failover_disabled_blackholes_the_failed_gateways_routes() {
        let (mut w, fabric, [a, _, h1, h2, b]) = redundant_world(RelayConfig {
            gateway_failover: false,
            ..Default::default()
        });
        let received = Rc::new(Cell::new(0u64));
        let r = received.clone();
        fabric.bind(&mut w, b, 4, move |_w, _m| r.set(r.get() + 1));
        fabric.fail_gateway(&mut w, h1);
        for _ in 0..4 {
            fabric.send(&mut w, a, b, 4, vec![0u8; 100]).unwrap();
        }
        w.run();
        // Without failover, routing keeps pointing into the dead primary
        // and every frame dies there, exactly accounted.
        assert_eq!(received.get(), 0);
        assert_eq!(fabric.gateway_stats(h1).frames_dropped_gateway_down, 4);
        assert_eq!(fabric.gateway_stats(h2).frames_relayed, 0);
        assert_eq!(fabric.frames_rerouted(), 0);
    }

    #[test]
    fn frames_parked_on_a_failed_gateway_redispatch_in_credit_mode() {
        // A tiny pool towards h1 parks most of the burst; failing h1
        // mid-stall must re-dispatch the parked frames through h2 without
        // losing any of them.
        let (mut w, fabric, [a, g, h1, h2, b]) = redundant_world(RelayConfig {
            per_hop_latency: SimDuration::from_millis(2),
            queue_capacity: 2,
            backpressure: BackpressureMode::Credit,
            ..Default::default()
        });
        let received = Rc::new(Cell::new(0u64));
        let r = received.clone();
        fabric.bind(&mut w, b, 6, move |_w, _m| r.set(r.get() + 1));
        let sent = 16u64;
        for _ in 0..sent {
            fabric.send(&mut w, a, b, 6, vec![5u8; 200]).unwrap();
        }
        // Let the burst reach g and stall on h1's pool, then fail h1.
        w.run_for(SimDuration::from_millis(1));
        fabric.fail_gateway(&mut w, h1);
        w.run();
        let (s1, s2) = (fabric.gateway_stats(h1), fabric.gateway_stats(h2));
        assert_eq!(
            received.get() + s1.frames_dropped(),
            sent,
            "every frame is delivered or exactly accounted as dying \
             inside the failed gateway: {s1:?} {s2:?}"
        );
        assert!(
            received.get() > 0 && s2.frames_relayed > 0,
            "the secondary carries the survivors: {s2:?}"
        );
        assert_eq!(fabric.parked_frames(), 0, "nothing left parked");
        // The origin and the surviving gateways conserve credits.
        for gw in [g, h2] {
            let s = fabric.gateway_stats(gw);
            assert_eq!(s.credits_consumed, s.credits_returned, "{s:?}");
            assert_eq!(fabric.outstanding_credits(gw), 0);
        }
    }

    #[test]
    fn no_route_is_reported() {
        let mut w = SimWorld::new(0);
        let a = w.add_node("a");
        let b = w.add_node("b");
        let lan = w.add_network(NetworkSpec::ethernet_100());
        w.attach(a, lan);
        let routes = RouteTable::compute(&w);
        let fabric = RelayFabric::new(routes, RelayConfig::default());
        fabric.attach(&mut w, a);
        assert_eq!(
            fabric.send(&mut w, a, b, 1, vec![1u8]),
            Err(RelayError::NoRoute)
        );
    }

    #[test]
    fn oversized_payload_is_rejected_with_route_mtu() {
        let (mut w, fabric, [a, _, _, b]) = relay_world(RelayConfig::default());
        let max = fabric.max_payload(&w, a, b).unwrap();
        assert_eq!(max, 1500 - RELAY_HEADER_BYTES);
        let err = fabric
            .send(&mut w, a, b, 1, vec![0u8; max + 1])
            .unwrap_err();
        assert_eq!(err, RelayError::TooLarge { size: max + 1, max });
        // At the limit it goes through.
        fabric.send(&mut w, a, b, 1, vec![0u8; max]).unwrap();
    }

    #[test]
    fn local_send_delivers_without_networks() {
        let (mut w, fabric, [a, ..]) = relay_world(RelayConfig::default());
        let hits = Rc::new(Cell::new(0u32));
        let h2 = hits.clone();
        fabric.bind(&mut w, a, 5, move |_w, _m| h2.set(h2.get() + 1));
        fabric.send(&mut w, a, a, 5, vec![0u8; 10]).unwrap();
        w.run();
        assert_eq!(hits.get(), 1);
    }

    #[test]
    fn unbound_port_counts_unclaimed() {
        let (mut w, fabric, [a, _, _, b]) = relay_world(RelayConfig::default());
        fabric.send(&mut w, a, b, 42, vec![0u8; 10]).unwrap();
        w.run();
        assert_eq!(fabric.unclaimed_frames(), 1);
        assert_eq!(fabric.delivered_frames(), 0);
    }
}
