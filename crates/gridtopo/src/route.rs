//! Multi-hop route computation over the attachment graph of a
//! [`SimWorld`].
//!
//! The seed simulator could only connect nodes that share a network
//! fabric. Real grids are federations of clusters joined by WAN backbones,
//! where most node pairs share *no* network and traffic must be relayed by
//! gateway nodes that straddle several fabrics. This module computes, for
//! every ordered node pair, the cheapest multi-hop route by Dijkstra over
//! per-link costs, with fully deterministic tie-breaking so a given
//! topology always yields bit-identical routing tables.

// simlint: allow-file(D4, reason = "process-wide monotonic fallback counter plus a warn-once latch; Relaxed ops, no cross-thread ordering, no effect on simulation state")
use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering as AtomicOrdering};

use simnet::{NetworkClass, NetworkId, NodeId, SimDuration, SimWorld};

use crate::hier::SiteLayout;

/// Reference transfer size used to fold bandwidth into the link cost: the
/// cost of a link is its latency plus the serialization time of this many
/// bytes, plus a fixed per-hop relay penalty.
const REFERENCE_BYTES: u64 = 1024;

/// Fixed per-hop penalty (nanoseconds) so that, all else equal, routes
/// with fewer store-and-forward hops win.
const HOP_PENALTY_NS: u64 = 1_000;

/// One step of a route: cross `network` to reach `node`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// The network fabric this step crosses.
    pub network: NetworkId,
    /// The node reached by this step (a gateway, or the final
    /// destination on the last hop).
    pub node: NodeId,
}

/// A complete route between two nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// The hops, in order; the last hop's node is `dst`. Empty only when
    /// `src == dst`.
    pub hops: Vec<Hop>,
}

impl Route {
    /// Number of networks the route crosses.
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// Whether the route needs at least one store-and-forward relay.
    pub fn is_relayed(&self) -> bool {
        self.hops.len() > 1
    }

    /// The first hop, if any.
    pub fn first_hop(&self) -> Option<Hop> {
        self.hops.first().copied()
    }

    /// The intermediate relay (gateway) nodes, excluding the endpoints.
    ///
    /// Borrows from the route instead of allocating: routing hot paths
    /// (the selector, the relay fabric) call this per decision, so it must
    /// not build a fresh `Vec` each time. Collect only when ownership is
    /// actually needed.
    pub fn relays(&self) -> impl Iterator<Item = NodeId> + '_ {
        let end = self.hops.len().saturating_sub(1);
        self.hops[..end].iter().map(|h| h.node)
    }
}

/// Aggregate characteristics of a route, for route-aware adapter
/// selection.
#[derive(Debug, Clone, PartialEq)]
pub struct PathInfo {
    /// Number of networks crossed.
    pub hop_count: usize,
    /// Gateway nodes that store-and-forward along the way.
    pub relays: Vec<NodeId>,
    /// The networks crossed, in order.
    pub networks: Vec<NetworkId>,
    /// Sum of one-way link latencies along the path.
    pub total_latency: SimDuration,
    /// The narrowest link bandwidth along the path, bytes/second.
    pub bottleneck_bytes_per_sec: f64,
    /// The smallest MTU along the path.
    pub min_mtu: usize,
    /// The "most distributed" network class crossed (SAN < LAN < WAN <
    /// Internet); selector policies for the whole path key off this.
    pub worst_class: NetworkClass,
    /// The additive route cost used by Dijkstra (nanosecond scale).
    pub cost: u64,
}

impl PathInfo {
    /// Aggregates the characteristics of `route` over `world`'s network
    /// specs; `cost` is the route's additive Dijkstra cost. Shared by
    /// every route-table implementation so a given route always yields the
    /// same `PathInfo` no matter which resolver produced it.
    pub fn for_route(world: &SimWorld, route: &Route, cost: u64) -> PathInfo {
        let mut total_latency = SimDuration::ZERO;
        let mut bottleneck = f64::INFINITY;
        let mut min_mtu = usize::MAX;
        let mut worst = NetworkClass::Loopback;
        let mut networks = Vec::with_capacity(route.hops.len());
        for hop in &route.hops {
            let spec = &world.network(hop.network).spec;
            total_latency += spec.latency;
            bottleneck = bottleneck.min(spec.bytes_per_sec);
            min_mtu = min_mtu.min(spec.mtu);
            worst = worst.max(spec.class);
            networks.push(hop.network);
        }
        PathInfo {
            hop_count: route.hop_count(),
            relays: route.relays().collect(),
            networks,
            total_latency,
            bottleneck_bytes_per_sec: bottleneck,
            min_mtu,
            worst_class: worst,
            cost,
        }
    }
}

/// Per-source shortest-path state used for deterministic tie-breaking:
/// lower cost wins, then fewer hops, then the smaller (network, node)
/// pair discovered the entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    cost: u64,
    hops: u32,
    network: u32,
    node: u32,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the smallest entry pops
        // first.
        (other.cost, other.hops, other.network, other.node).cmp(&(
            self.cost,
            self.hops,
            self.network,
            self.node,
        ))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// All-pairs next-hop routing tables for a world, computed by Dijkstra
/// over per-link costs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RouteTable {
    /// `(src, dst) -> next hop` for every reachable ordered pair with
    /// `src != dst`.
    next: HashMap<(NodeId, NodeId), Hop>,
    /// Total path cost per ordered pair.
    cost: HashMap<(NodeId, NodeId), u64>,
}

/// Cost of crossing one network fabric, in nanoseconds.
pub fn link_cost(world: &SimWorld, network: NetworkId) -> u64 {
    let spec = &world.network(network).spec;
    let latency_ns = spec.latency.as_nanos();
    let ser_ns = spec.serialization(REFERENCE_BYTES).as_nanos();
    latency_ns + ser_ns + HOP_PENALTY_NS
}

/// All-pairs Dijkstra restricted to a subgraph: only `nodes` are routable,
/// only `networks` contribute edges (members outside `nodes` are ignored),
/// and only `sources` are expanded. Next hops and path costs land in the
/// two maps. This is the single Dijkstra core shared by the flat
/// [`RouteTable`] (whole world, every source) and the hierarchical
/// [`crate::hier::HierRouteTable`] (one call per site subgraph plus one for
/// the gateway backbone), with identical deterministic tie-breaking.
pub(crate) fn dijkstra_subgraph(
    world: &SimWorld,
    nodes: &[NodeId],
    networks: &[NetworkId],
    sources: &[NodeId],
    next: &mut HashMap<(NodeId, NodeId), Hop>,
    cost: &mut HashMap<(NodeId, NodeId), u64>,
) {
    let n = nodes.len();
    // Dense node index. NodeIds are allocated contiguously from 0 in
    // practice, but the map keeps this correct for any id scheme (and for
    // site subgraphs, whose node ids are not contiguous).
    let index: HashMap<NodeId, usize> = nodes.iter().enumerate().map(|(i, &id)| (id, i)).collect();

    // Clique expansion of every network, built once and shared by all
    // sources: node index -> [(neighbour index, network, link cost)],
    // in (network, neighbour) creation order for determinism.
    let mut adj: Vec<Vec<(usize, NetworkId, u64)>> = vec![Vec::new(); n];
    for &net in networks {
        let c = link_cost(world, net);
        let members = world.network(net).members();
        for &u in members {
            let Some(&ui) = index.get(&u) else { continue };
            for &v in members {
                if u != v {
                    if let Some(&vi) = index.get(&v) {
                        adj[ui].push((vi, net, c));
                    }
                }
            }
        }
    }

    // Per-source scratch, reallocated once per source (flat vectors, no
    // hashing on the hot relaxation path).
    for &src in sources {
        let si = index[&src];
        let mut best: Vec<Option<Entry>> = vec![None; n];
        // Predecessor hop on the best path: index -> (prev index, hop).
        let mut prev: Vec<Option<(usize, Hop)>> = vec![None; n];
        let mut heap: BinaryHeap<(Entry, usize)> = BinaryHeap::new();
        let start = Entry {
            cost: 0,
            hops: 0,
            network: 0,
            node: src.0,
        };
        best[si] = Some(start);
        heap.push((start, si));

        while let Some((entry, ui)) = heap.pop() {
            if best[ui] != Some(entry) {
                continue; // stale heap entry
            }
            for &(vi, net, link) in &adj[ui] {
                let cand = Entry {
                    cost: entry.cost + link,
                    hops: entry.hops + 1,
                    network: net.0,
                    node: nodes[ui].0,
                };
                let better = match best[vi] {
                    None => true,
                    Some(cur) => {
                        (cand.cost, cand.hops, cand.network, cand.node)
                            < (cur.cost, cur.hops, cur.network, cur.node)
                    }
                };
                if better {
                    best[vi] = Some(cand);
                    prev[vi] = Some((
                        ui,
                        Hop {
                            network: net,
                            node: nodes[vi],
                        },
                    ));
                    heap.push((cand, vi));
                }
            }
        }

        for (di, entry) in best.iter().enumerate() {
            let Some(entry) = entry else { continue };
            if di == si {
                continue;
            }
            let dst = nodes[di];
            cost.insert((src, dst), entry.cost);
            // Walk predecessors back to the first hop out of `src`.
            let mut at = di;
            let mut first = None;
            while at != si {
                let (p, hop) = prev[at].expect("non-src node has a predecessor");
                first = Some(hop);
                at = p;
            }
            next.insert((src, dst), first.expect("non-src node has a predecessor"));
        }
    }
}

/// Estimated resident bytes of hash maps holding `entries` (key, value)
/// pairs: payload plus one control byte per slot, over the table's maximum
/// load factor. An estimate of the *payload* footprint, deliberately
/// ignoring allocator slack, so flat/hierarchical comparisons are
/// apples-to-apples.
pub(crate) fn map_bytes(entries: usize, key_val_bytes: usize) -> usize {
    ((entries as f64) * ((key_val_bytes + 1) as f64) / 0.875) as usize
}

impl RouteTable {
    /// Computes routes between every pair of nodes in `world`.
    ///
    /// Deterministic: the same topology (same creation order of nodes and
    /// networks) always produces the same table, regardless of seed.
    ///
    /// The clique-expanded adjacency list is built once, with dense node
    /// indices, and reused across every Dijkstra source; the per-source
    /// state lives in flat vectors instead of hash maps. On an `S`-site
    /// grid this turns the `O(sites × nodes × edges × hash)` seed
    /// computation into one adjacency pass plus index-addressed relaxation.
    pub fn compute(world: &SimWorld) -> RouteTable {
        let nodes = world.node_ids();
        let networks = world.network_ids();
        let mut table = RouteTable::default();
        dijkstra_subgraph(
            world,
            &nodes,
            &networks,
            &nodes,
            &mut table.next,
            &mut table.cost,
        );
        table
    }

    /// Computes routes from the given `sources` only (to every node of the
    /// world), with the exact same algorithm and tie-breaking as
    /// [`RouteTable::compute`]. Restricting the source set makes the flat
    /// table usable as a *sampled oracle* at node counts where the full
    /// all-pairs table would not fit in memory: the per-source work is
    /// identical, so build time extrapolates linearly and per-pair costs
    /// are exact for every sampled source.
    pub fn compute_from_sources(world: &SimWorld, sources: &[NodeId]) -> RouteTable {
        let nodes = world.node_ids();
        let networks = world.network_ids();
        let mut table = RouteTable::default();
        dijkstra_subgraph(
            world,
            &nodes,
            &networks,
            sources,
            &mut table.next,
            &mut table.cost,
        );
        table
    }

    /// The seed's per-source hash-map implementation, kept as the
    /// reference model: [`RouteTable::compute`] must match it bit for bit.
    #[cfg(test)]
    fn compute_reference(world: &SimWorld) -> RouteTable {
        let nodes = world.node_ids();
        let mut adj: HashMap<NodeId, Vec<(NodeId, NetworkId, u64)>> = HashMap::new();
        for net in world.network_ids() {
            let cost = link_cost(world, net);
            let members = world.network(net).members();
            for &u in members {
                for &v in members {
                    if u != v {
                        adj.entry(u).or_default().push((v, net, cost));
                    }
                }
            }
        }

        let mut table = RouteTable::default();
        for &src in &nodes {
            let mut best: HashMap<NodeId, Entry> = HashMap::new();
            let mut prev: HashMap<NodeId, (NodeId, Hop)> = HashMap::new();
            let mut heap: BinaryHeap<(Entry, NodeId)> = BinaryHeap::new();
            let start = Entry {
                cost: 0,
                hops: 0,
                network: 0,
                node: src.0,
            };
            best.insert(src, start);
            heap.push((start, src));

            while let Some((entry, u)) = heap.pop() {
                if best.get(&u) != Some(&entry) {
                    continue; // stale heap entry
                }
                let Some(edges) = adj.get(&u) else { continue };
                for &(v, net, link) in edges {
                    let cand = Entry {
                        cost: entry.cost + link,
                        hops: entry.hops + 1,
                        network: net.0,
                        node: u.0,
                    };
                    let better = match best.get(&v) {
                        None => true,
                        Some(cur) => {
                            (cand.cost, cand.hops, cand.network, cand.node)
                                < (cur.cost, cur.hops, cur.network, cur.node)
                        }
                    };
                    if better {
                        best.insert(v, cand);
                        prev.insert(
                            v,
                            (
                                u,
                                Hop {
                                    network: net,
                                    node: v,
                                },
                            ),
                        );
                        heap.push((cand, v));
                    }
                }
            }

            for (&dst, entry) in &best {
                if dst == src {
                    continue;
                }
                table.cost.insert((src, dst), entry.cost);
                let mut at = dst;
                let mut first = None;
                while at != src {
                    let (p, hop) = prev[&at];
                    first = Some(hop);
                    at = p;
                }
                table
                    .next
                    .insert((src, dst), first.expect("non-src node has a predecessor"));
            }
        }
        table
    }

    /// Inserts the route `src -> dst` whose first step is `hop`, with the
    /// given additive path cost.
    ///
    /// This is the escape hatch for worlds whose routes are known by
    /// construction (a star segment bridged by one gateway, a fixed
    /// chain): callers insert exactly the pairs their traffic resolves and
    /// skip the all-pairs Dijkstra, whose clique expansion is quadratic in
    /// segment width *per source*. The caller owns the chaining invariant
    /// that [`RouteTable::route`] relies on: if `hop.node != dst`, an
    /// entry for `(hop.node, dst)` must also be inserted, and the chain
    /// must terminate at `dst`. Costs should follow [`link_cost`] sums so
    /// a hand-built table stays bit-compatible with a computed one on the
    /// pairs it covers.
    pub fn insert(&mut self, src: NodeId, dst: NodeId, hop: Hop, cost: u64) {
        debug_assert_ne!(src, dst, "self-routes are implicit, never stored");
        self.next.insert((src, dst), hop);
        self.cost.insert((src, dst), cost);
    }

    /// The next hop from `src` towards `dst`, if a route exists.
    pub fn next_hop(&self, src: NodeId, dst: NodeId) -> Option<Hop> {
        if src == dst {
            return None;
        }
        self.next.get(&(src, dst)).copied()
    }

    /// Whether any route (direct or relayed) exists from `src` to `dst`.
    pub fn reachable(&self, src: NodeId, dst: NodeId) -> bool {
        src == dst || self.next.contains_key(&(src, dst))
    }

    /// The full route from `src` to `dst`, if reachable.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Option<Route> {
        if src == dst {
            return Some(Route {
                src,
                dst,
                hops: Vec::new(),
            });
        }
        let mut hops = Vec::new();
        let mut at = src;
        while at != dst {
            let hop = self.next.get(&(at, dst)).copied()?;
            hops.push(hop);
            at = hop.node;
            assert!(
                hops.len() <= self.next.len() + 1,
                "routing loop from {src} to {dst}"
            );
        }
        Some(Route { src, dst, hops })
    }

    /// Aggregate path characteristics for the route from `src` to `dst`.
    pub fn path_info(&self, world: &SimWorld, src: NodeId, dst: NodeId) -> Option<PathInfo> {
        let route = self.route(src, dst)?;
        let cost = self.cost.get(&(src, dst)).copied().unwrap_or(0);
        Some(PathInfo::for_route(world, &route, cost))
    }

    /// The additive path cost from `src` to `dst` (0 for `src == dst`),
    /// if a route exists.
    pub fn cost(&self, src: NodeId, dst: NodeId) -> Option<u64> {
        if src == dst {
            return Some(0);
        }
        self.cost.get(&(src, dst)).copied()
    }

    /// Number of ordered, distinct reachable pairs in the table.
    pub fn reachable_pairs(&self) -> usize {
        self.next.len()
    }

    /// Estimated resident bytes of the table (next-hop map + cost map).
    pub fn table_bytes(&self) -> usize {
        use std::mem::size_of;
        map_bytes(
            self.next.len(),
            size_of::<(NodeId, NodeId)>() + size_of::<Hop>(),
        ) + map_bytes(
            self.cost.len(),
            size_of::<(NodeId, NodeId)>() + size_of::<u64>(),
        )
    }
}

/// The routing table installed on a grid: either the flat all-pairs
/// [`RouteTable`] (the seed behaviour, kept as the correctness oracle) or
/// the two-level [`HierRouteTable`](crate::hier::HierRouteTable). The two
/// are *cost-equal* on every reachable pair of a gateway-isolated grid —
/// paths may differ where ties allow, but never their additive cost — so
/// callers can treat the enum as one resolver.
///
/// The equivalence covers the grid's own nodes: a hierarchical table only
/// knows the nodes of its [`SiteLayout`] (a node
/// outside it is unreachable, even from itself), while a flat table
/// computed over the same world also answers for world nodes outside the
/// grid (and reports every node self-reachable at cost 0).
#[derive(Debug, Clone, PartialEq)]
// One GridRoutes exists per grid (shared behind an Rc by every runtime);
// boxing the larger variant would buy nothing and break every matcher.
#[allow(clippy::large_enum_variant)]
pub enum GridRoutes {
    /// Flat all-pairs Dijkstra over the clique-expanded world graph:
    /// O(N·E log N) build, O(N²) storage. Exact oracle, infeasible at
    /// production scale.
    Flat(RouteTable),
    /// Two-level hierarchy: per-site tables + a gateway backbone table,
    /// composed lazily per lookup. O(Σ site work + G·E_wan log G) build,
    /// O(Σ site² + G²) storage.
    Hier(crate::hier::HierRouteTable),
}

/// Times [`GridRoutes::compute_auto`] fell back to the flat oracle
/// because the world violated gateway isolation (process-wide, monotonic).
static HIER_FALLBACKS: AtomicU64 = AtomicU64::new(0);
/// The fallback warning is printed once per process, not per rebuild.
static HIER_FALLBACK_WARNED: AtomicBool = AtomicBool::new(false);

/// Times the hierarchical route computation fell back to the flat oracle
/// on a non-gateway-isolated world (see [`GridRoutes::compute_auto`]).
pub fn hier_fallbacks() -> u64 {
    HIER_FALLBACKS.load(AtomicOrdering::Relaxed)
}

impl GridRoutes {
    /// Computes routes for `world` under `layout`: hierarchical two-level
    /// tables when the world is gateway-isolated, otherwise — instead of
    /// panicking, which older revisions did — the flat all-pairs oracle,
    /// with a one-time warning and the process-wide [`hier_fallbacks`]
    /// counter incremented. Every builder and recomputation path goes
    /// through here, so a site-bridging direct link degrades routing
    /// performance, never correctness.
    pub fn compute_auto(world: &SimWorld, layout: &SiteLayout) -> GridRoutes {
        match crate::hier::HierRouteTable::try_compute(world, layout) {
            Ok(hier) => GridRoutes::Hier(hier),
            Err(violation) => {
                HIER_FALLBACKS.fetch_add(1, AtomicOrdering::Relaxed);
                if !HIER_FALLBACK_WARNED.swap(true, AtomicOrdering::Relaxed) {
                    eprintln!(
                        "warning: world is not gateway-isolated ({violation}); falling back \
                         to the flat O(N²) route oracle — further fallbacks are counted in \
                         gridtopo::hier_fallbacks() without repeating this warning"
                    );
                }
                GridRoutes::Flat(RouteTable::compute(world))
            }
        }
    }

    /// Short label for logs and bench output.
    pub fn kind(&self) -> &'static str {
        match self {
            GridRoutes::Flat(_) => "flat",
            GridRoutes::Hier(_) => "hier",
        }
    }

    /// Whether any route (direct or relayed) exists from `src` to `dst`.
    pub fn reachable(&self, src: NodeId, dst: NodeId) -> bool {
        match self {
            GridRoutes::Flat(t) => t.reachable(src, dst),
            GridRoutes::Hier(t) => t.reachable(src, dst),
        }
    }

    /// The next hop from `src` towards `dst`, if a route exists.
    pub fn next_hop(&self, src: NodeId, dst: NodeId) -> Option<Hop> {
        match self {
            GridRoutes::Flat(t) => t.next_hop(src, dst),
            GridRoutes::Hier(t) => t.next_hop(src, dst),
        }
    }

    /// The full route from `src` to `dst`, if reachable.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Option<Route> {
        match self {
            GridRoutes::Flat(t) => t.route(src, dst),
            GridRoutes::Hier(t) => t.route(src, dst),
        }
    }

    /// The additive path cost from `src` to `dst`, if reachable.
    pub fn cost(&self, src: NodeId, dst: NodeId) -> Option<u64> {
        match self {
            GridRoutes::Flat(t) => t.cost(src, dst),
            GridRoutes::Hier(t) => t.cost(src, dst),
        }
    }

    /// Aggregate path characteristics for the route from `src` to `dst`.
    pub fn path_info(&self, world: &SimWorld, src: NodeId, dst: NodeId) -> Option<PathInfo> {
        match self {
            GridRoutes::Flat(t) => t.path_info(world, src, dst),
            GridRoutes::Hier(t) => t.path_info(world, src, dst),
        }
    }

    /// The full route from `src` to `dst` that avoids every gateway in
    /// `down` — the failover lookup. A hierarchical table re-composes the
    /// route through any surviving gateway of each site; the flat oracle
    /// has no alternative paths precomputed, so it returns its normal
    /// route when clean and `None` when that route crosses a down node
    /// (honest failure instead of routing into a dead gateway).
    pub fn route_avoiding(
        &self,
        src: NodeId,
        dst: NodeId,
        down: &BTreeSet<NodeId>,
    ) -> Option<Route> {
        match self {
            GridRoutes::Hier(t) => t.route_avoiding(src, dst, down),
            GridRoutes::Flat(t) => {
                let route = t.route(src, dst)?;
                let blocked = route.hops[..route.hops.len().saturating_sub(1)]
                    .iter()
                    .any(|h| down.contains(&h.node));
                (!blocked).then_some(route)
            }
        }
    }

    /// The next hop of [`GridRoutes::route_avoiding`]'s route.
    pub fn next_hop_avoiding(
        &self,
        src: NodeId,
        dst: NodeId,
        down: &BTreeSet<NodeId>,
    ) -> Option<Hop> {
        if down.is_empty() {
            return self.next_hop(src, dst);
        }
        match self {
            GridRoutes::Hier(t) => t.next_hop_avoiding(src, dst, down),
            GridRoutes::Flat(_) => self.route_avoiding(src, dst, down)?.first_hop(),
        }
    }

    /// The additive cost of [`GridRoutes::route_avoiding`]'s route.
    pub fn cost_avoiding(&self, src: NodeId, dst: NodeId, down: &BTreeSet<NodeId>) -> Option<u64> {
        if down.is_empty() {
            return self.cost(src, dst);
        }
        match self {
            GridRoutes::Hier(t) => t.cost_avoiding(src, dst, down),
            GridRoutes::Flat(t) => {
                let _ = self.route_avoiding(src, dst, down)?;
                t.cost(src, dst)
            }
        }
    }

    /// Estimated resident bytes of the installed tables.
    pub fn table_bytes(&self) -> usize {
        match self {
            GridRoutes::Flat(t) => t.table_bytes(),
            GridRoutes::Hier(t) => t.table_bytes(),
        }
    }
}

impl From<RouteTable> for GridRoutes {
    fn from(t: RouteTable) -> GridRoutes {
        GridRoutes::Flat(t)
    }
}

impl From<crate::hier::HierRouteTable> for GridRoutes {
    fn from(t: crate::hier::HierRouteTable) -> GridRoutes {
        GridRoutes::Hier(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::NetworkSpec;

    /// a —eth— g —wan— h —eth— b : classic two-gateway chain.
    fn chain_world() -> (SimWorld, [NodeId; 4], [NetworkId; 3]) {
        let mut w = SimWorld::new(1);
        let a = w.add_node("a");
        let g = w.add_node("g");
        let h = w.add_node("h");
        let b = w.add_node("b");
        let lan1 = w.add_network(NetworkSpec::ethernet_100());
        let wan = w.add_network(NetworkSpec::vthd_wan());
        let lan2 = w.add_network(NetworkSpec::ethernet_100());
        w.attach(a, lan1);
        w.attach(g, lan1);
        w.attach(g, wan);
        w.attach(h, wan);
        w.attach(h, lan2);
        w.attach(b, lan2);
        (w, [a, g, h, b], [lan1, wan, lan2])
    }

    #[test]
    fn direct_pair_routes_in_one_hop() {
        let (w, [a, g, ..], [lan1, ..]) = chain_world();
        let t = RouteTable::compute(&w);
        let r = t.route(a, g).unwrap();
        assert_eq!(
            r.hops,
            vec![Hop {
                network: lan1,
                node: g
            }]
        );
        assert!(!r.is_relayed());
    }

    #[test]
    fn disjoint_endpoints_route_through_both_gateways() {
        let (w, [a, g, h, b], [lan1, wan, lan2]) = chain_world();
        let t = RouteTable::compute(&w);
        let r = t.route(a, b).unwrap();
        assert_eq!(
            r.hops,
            vec![
                Hop {
                    network: lan1,
                    node: g
                },
                Hop {
                    network: wan,
                    node: h
                },
                Hop {
                    network: lan2,
                    node: b
                },
            ]
        );
        assert!(r.is_relayed());
        assert_eq!(r.relays().collect::<Vec<_>>(), vec![g, h]);
        let info = t.path_info(&w, a, b).unwrap();
        assert_eq!(info.hop_count, 3);
        assert_eq!(info.worst_class, NetworkClass::Wan);
        assert_eq!(info.min_mtu, 1500);
        assert_eq!(info.bottleneck_bytes_per_sec, 12.5e6);
    }

    #[test]
    fn self_route_is_empty() {
        let (w, [a, ..], _) = chain_world();
        let t = RouteTable::compute(&w);
        let r = t.route(a, a).unwrap();
        assert!(r.hops.is_empty());
        assert!(t.reachable(a, a));
    }

    #[test]
    fn unreachable_island_has_no_route() {
        let mut w = SimWorld::new(0);
        let a = w.add_node("a");
        let b = w.add_node("b");
        let lan = w.add_network(NetworkSpec::ethernet_100());
        w.attach(a, lan);
        // b attached nowhere.
        let t = RouteTable::compute(&w);
        assert!(t.route(a, b).is_none());
        assert!(!t.reachable(a, b));
    }

    #[test]
    fn faster_network_wins_between_parallel_links() {
        let mut w = SimWorld::new(0);
        let a = w.add_node("a");
        let b = w.add_node("b");
        let san = w.add_network(NetworkSpec::myrinet_2000());
        let lan = w.add_network(NetworkSpec::ethernet_100());
        for n in [a, b] {
            w.attach(n, san);
            w.attach(n, lan);
        }
        let t = RouteTable::compute(&w);
        assert_eq!(t.route(a, b).unwrap().hops[0].network, san);
    }

    #[test]
    fn equal_cost_ties_break_on_lower_network_id() {
        let mut w = SimWorld::new(0);
        let a = w.add_node("a");
        let b = w.add_node("b");
        let n1 = w.add_network(NetworkSpec::ethernet_100());
        let n2 = w.add_network(NetworkSpec::ethernet_100());
        for n in [a, b] {
            w.attach(n, n1);
            w.attach(n, n2);
        }
        let t = RouteTable::compute(&w);
        assert_eq!(t.route(a, b).unwrap().hops[0].network, n1);
    }

    #[test]
    fn recomputation_is_deterministic() {
        let (w, _, _) = chain_world();
        let t1 = RouteTable::compute(&w);
        let t2 = RouteTable::compute(&w);
        assert_eq!(t1, t2);
        let (w2, _, _) = chain_world();
        assert_eq!(t1, RouteTable::compute(&w2));
    }

    /// A hand-inserted table must agree with the Dijkstra oracle —
    /// next hops, walked routes, costs, and `PathInfo` — on every pair it
    /// covers, so bypassing `compute` never changes relay behaviour.
    #[test]
    fn manual_insertion_matches_computed_oracle_on_covered_pairs() {
        // One gateway bridging two segments: the full-stack ring site.
        let mut w = SimWorld::new(3);
        let gw = w.add_node("gw");
        let near = w.add_network(NetworkSpec::ethernet_100());
        let far = w.add_network(NetworkSpec::ethernet_100());
        w.attach(gw, near);
        w.attach(gw, far);
        let a: Vec<NodeId> = (0..4)
            .map(|i| {
                let n = w.add_node(&format!("a{i}"));
                w.attach(n, near);
                n
            })
            .collect();
        let b: Vec<NodeId> = (0..4)
            .map(|i| {
                let n = w.add_node(&format!("b{i}"));
                w.attach(n, far);
                n
            })
            .collect();

        let oracle = RouteTable::compute(&w);
        let mut manual = RouteTable::default();
        let (near_cost, far_cost) = (link_cost(&w, near), link_cost(&w, far));
        for i in 0..4 {
            manual.insert(
                a[i],
                b[i],
                Hop {
                    network: near,
                    node: gw,
                },
                near_cost + far_cost,
            );
            manual.insert(
                gw,
                b[i],
                Hop {
                    network: far,
                    node: b[i],
                },
                far_cost,
            );
        }

        for i in 0..4 {
            for (src, dst) in [(a[i], b[i]), (gw, b[i])] {
                assert!(manual.reachable(src, dst));
                assert_eq!(manual.next_hop(src, dst), oracle.next_hop(src, dst));
                assert_eq!(manual.route(src, dst), oracle.route(src, dst));
                assert_eq!(manual.cost(src, dst), oracle.cost(src, dst));
                assert_eq!(
                    manual.path_info(&w, src, dst),
                    oracle.path_info(&w, src, dst)
                );
            }
        }
        // Pairs never inserted stay honestly unreachable.
        assert!(!manual.reachable(a[0], a[1]));
        assert!(manual.next_hop(b[0], a[0]).is_none());
    }

    /// The shared-adjacency implementation must produce tables bit-for-bit
    /// identical to the seed's per-source reference implementation.
    #[test]
    fn compute_matches_reference_bit_for_bit() {
        // The two-gateway chain.
        let (w, _, _) = chain_world();
        assert_eq!(RouteTable::compute(&w), RouteTable::compute_reference(&w));

        // A denser topology with parallel equal-cost links and an island.
        let mut w = SimWorld::new(9);
        let nodes: Vec<NodeId> = (0..8).map(|i| w.add_node(&format!("n{i}"))).collect();
        let san = w.add_network(NetworkSpec::myrinet_2000());
        let lan1 = w.add_network(NetworkSpec::ethernet_100());
        let lan2 = w.add_network(NetworkSpec::ethernet_100());
        let wan = w.add_network(NetworkSpec::vthd_wan());
        for &n in &nodes[0..3] {
            w.attach(n, san);
            w.attach(n, lan1);
        }
        for &n in &nodes[2..5] {
            w.attach(n, lan2);
        }
        w.attach(nodes[4], wan);
        w.attach(nodes[5], wan);
        w.attach(nodes[6], lan1);
        // nodes[7] stays an island.
        let fast = RouteTable::compute(&w);
        let reference = RouteTable::compute_reference(&w);
        assert_eq!(fast, reference);
        assert!(fast.reachable(nodes[0], nodes[5]));
        assert!(!fast.reachable(nodes[0], nodes[7]));
    }
}
