//! Builders for hierarchical grid topologies: federations of SAN+LAN
//! cluster *sites* joined by WAN/Internet backbones through dedicated
//! gateway nodes.
//!
//! Unlike the flat [`simnet::topology`] helpers (where every node attaches
//! straight to the WAN), only each site's *gateway* touches the backbone
//! here — exactly the multi-site virtual-organization shape of real grids.
//! Cross-site traffic therefore shares no network end-to-end and must be
//! relayed, which is what the [`crate::route`] and [`crate::gateway`]
//! layers provide.

use simnet::{NetworkId, NetworkSpec, NodeId, SimWorld};

use crate::hier::{BackboneDelta, IsolationViolation, ReconvergeStats, SiteLayout};
use crate::route::GridRoutes;

/// Description of one site to build.
#[derive(Debug, Clone)]
pub struct SiteSpec {
    /// Site name, used as the node-name prefix.
    pub name: String,
    /// Number of nodes, including the gateways.
    pub nodes: usize,
    /// Number of gateway nodes (the first `gateways` nodes of the site,
    /// attached to the backbone in rank order — the first is the primary,
    /// the rest are redundant failover gateways).
    pub gateways: usize,
    /// SAN fabric for the site, if it has one.
    pub san: Option<NetworkSpec>,
    /// LAN fabric for the site.
    pub lan: NetworkSpec,
}

impl SiteSpec {
    /// A SAN-equipped PC cluster (Myrinet-2000 + Ethernet-100), the
    /// paper's standard site.
    pub fn san_cluster(name: impl Into<String>, nodes: usize) -> SiteSpec {
        SiteSpec {
            name: name.into(),
            nodes,
            gateways: 1,
            san: Some(NetworkSpec::myrinet_2000()),
            lan: NetworkSpec::ethernet_100(),
        }
    }

    /// A commodity site with only switched Ethernet.
    pub fn lan_cluster(name: impl Into<String>, nodes: usize) -> SiteSpec {
        SiteSpec {
            name: name.into(),
            nodes,
            gateways: 1,
            san: None,
            lan: NetworkSpec::ethernet_100(),
        }
    }

    /// Gives the site `gateways` redundant gateways instead of one (they
    /// are the site's first `gateways` nodes, primary first).
    pub fn with_gateways(mut self, gateways: usize) -> SiteSpec {
        assert!(gateways >= 1, "a site needs at least one gateway");
        self.gateways = gateways;
        self
    }
}

/// One built site.
#[derive(Debug, Clone)]
pub struct Site {
    /// Site name.
    pub name: String,
    /// The site's nodes, gateways first (in rank order).
    pub nodes: Vec<NodeId>,
    /// The site SAN, if any.
    pub san: Option<NetworkId>,
    /// The site LAN.
    pub lan: NetworkId,
    /// The primary gateway node (== `nodes[0]`).
    pub gateway: NodeId,
    /// Every gateway of the site in rank order (primary first) — the only
    /// nodes also attached to the backbone.
    pub gateways: Vec<NodeId>,
}

impl Site {
    /// Node of the given rank within the site.
    pub fn node(&self, rank: usize) -> NodeId {
        self.nodes[rank]
    }

    /// Number of nodes in the site.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the site has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// A built hierarchical grid: sites, backbone networks and the routing
/// table over the whole attachment graph.
#[derive(Debug, Clone)]
pub struct GridTopology {
    /// The sites, in build order.
    pub sites: Vec<Site>,
    /// The backbone (inter-site) networks, in build order.
    pub backbones: Vec<NetworkId>,
    /// Site membership metadata (node → site, gateway per site), the input
    /// of the hierarchical route computation.
    pub layout: SiteLayout,
    /// Routes between every pair of nodes of the grid. Hierarchical by
    /// default (per-site tables + a gateway backbone, cost-equal to the
    /// flat all-pairs oracle); see [`GridRoutes`].
    pub routes: GridRoutes,
}

impl GridTopology {
    /// Builds a star-of-sites: one shared backbone network to which every
    /// site's gateway attaches.
    pub fn star(world: &mut SimWorld, specs: &[SiteSpec], backbone: NetworkSpec) -> GridTopology {
        let sites: Vec<Site> = specs.iter().map(|s| build_site(world, s)).collect();
        let bb = world.add_network(backbone);
        for site in &sites {
            for &gw in &site.gateways {
                world.attach(gw, bb);
            }
        }
        finish(world, sites, vec![bb])
    }

    /// Builds a backbone ring: site `i`'s gateway is joined to site
    /// `i + 1 (mod n)`'s gateway by a dedicated point-to-point backbone
    /// network. Needs at least three sites for a genuine ring (two sites
    /// would create a redundant pair of links; use [`GridTopology::star`]).
    pub fn ring(world: &mut SimWorld, specs: &[SiteSpec], link: NetworkSpec) -> GridTopology {
        assert!(specs.len() >= 3, "a backbone ring needs at least 3 sites");
        let sites: Vec<Site> = specs.iter().map(|s| build_site(world, s)).collect();
        let mut backbones = Vec::with_capacity(sites.len());
        for i in 0..sites.len() {
            let j = (i + 1) % sites.len();
            let seg = world.add_network(link.clone());
            for &gw in &sites[i].gateways {
                world.attach(gw, seg);
            }
            for &gw in &sites[j].gateways {
                world.attach(gw, seg);
            }
            backbones.push(seg);
        }
        finish(world, sites, backbones)
    }

    /// Builds a cluster-of-clusters: sites are grouped into regions; the
    /// gateways of each region share a regional network, and the first
    /// gateway of each region (the regional head) additionally attaches to
    /// a global backbone. Traffic between regions crosses up to three
    /// backbone-level hops (site gateway → regional head → remote head →
    /// remote gateway).
    pub fn cluster_of_clusters(
        world: &mut SimWorld,
        regions: &[Vec<SiteSpec>],
        regional: NetworkSpec,
        backbone: NetworkSpec,
    ) -> GridTopology {
        assert!(!regions.is_empty(), "need at least one region");
        let mut sites = Vec::new();
        let mut backbones = Vec::new();
        let mut heads = Vec::new();
        for region in regions {
            assert!(!region.is_empty(), "regions must have at least one site");
            let first_site = sites.len();
            for spec in region {
                sites.push(build_site(world, spec));
            }
            let regional_net = world.add_network(regional.clone());
            for site in &sites[first_site..] {
                for &gw in &site.gateways {
                    world.attach(gw, regional_net);
                }
            }
            backbones.push(regional_net);
            // Every gateway of the head site joins the global backbone, so
            // a redundant head site keeps its redundancy region-to-region.
            heads.push(sites[first_site].gateways.clone());
        }
        if heads.len() > 1 {
            let global = world.add_network(backbone);
            for head in heads.into_iter().flatten() {
                world.attach(head, global);
            }
            backbones.push(global);
        }
        finish(world, sites, backbones)
    }

    /// Convenience: the canonical two-site grid of the paper's deployment
    /// discussion — two Myrinet clusters whose gateways meet on a VTHD-like
    /// WAN.
    pub fn two_sites(world: &mut SimWorld, nodes_per_site: usize) -> GridTopology {
        GridTopology::star(
            world,
            &[
                SiteSpec::san_cluster("a", nodes_per_site),
                SiteSpec::san_cluster("b", nodes_per_site),
            ],
            NetworkSpec::vthd_wan(),
        )
    }

    /// The site at `index`.
    pub fn site(&self, index: usize) -> &Site {
        &self.sites[index]
    }

    /// Every node of every site, in build order.
    pub fn all_nodes(&self) -> Vec<NodeId> {
        self.sites
            .iter()
            .flat_map(|s| s.nodes.iter().copied())
            .collect()
    }

    /// Every primary gateway, in site order.
    pub fn gateways(&self) -> Vec<NodeId> {
        self.sites.iter().map(|s| s.gateway).collect()
    }

    /// Every gateway of every site (primaries and secondaries), in site
    /// order then rank order.
    pub fn all_gateways(&self) -> Vec<NodeId> {
        self.sites
            .iter()
            .flat_map(|s| s.gateways.iter().copied())
            .collect()
    }

    /// The conservative lookahead this grid affords a sharded executor:
    /// the minimum latency of any backbone segment. Every cross-site
    /// frame rides a backbone (gateway isolation), so its delivery is at
    /// least this far in the future — the window the simulator can
    /// execute sites independently within.
    pub fn shard_lookahead(&self, world: &SimWorld) -> simnet::SimDuration {
        self.backbones
            .iter()
            .map(|&id| world.network(id).spec.latency)
            .min()
            .unwrap_or_default()
    }

    /// Per-trunk conservative lookahead windows for the partitioned
    /// executor (shard `s` hosting site `s`): one directed edge per
    /// ordered pair of sites sharing a backbone network, whose window is
    /// the smallest latency of any backbone joining the two. This
    /// replaces the single global-minimum window of
    /// [`GridTopology::shard_lookahead`] with the actual latency of each
    /// trunk: a shard adjacent only to slow trunks may run far ahead of
    /// its neighbours even while some other pair of sites is joined by a
    /// fast segment. Site pairs with no shared backbone get no edge —
    /// relayed traffic between them crosses the intermediate sites'
    /// declared edges hop by hop, so no direct frame ever skips a window.
    pub fn trunk_lookaheads(&self, world: &SimWorld) -> simnet::TrunkLookahead {
        let site_of = self.site_of_nodes();
        let mut trunks = simnet::TrunkLookahead::new();
        for &bb in &self.backbones {
            let net = world.network(bb);
            let lat = net.spec.latency;
            if lat == simnet::SimDuration::ZERO {
                continue; // a zero-latency trunk affords no window
            }
            let mut sites: Vec<u16> = net
                .members()
                .iter()
                .filter_map(|&n| site_of.get(n.0 as usize).copied())
                .filter(|&s| s != u16::MAX)
                .collect();
            sites.sort_unstable();
            sites.dedup();
            for (k, &i) in sites.iter().enumerate() {
                for &j in &sites[k + 1..] {
                    trunks.set(i, j, lat);
                    trunks.set(j, i, lat);
                }
            }
        }
        trunks
    }

    /// Node → site map in dense node-id order (a node outside every site
    /// — impossible for builder-made grids — maps to `u16::MAX`). This is
    /// the shared input of mirror-world ownership
    /// ([`simnet::SimWorld::set_mirror_owners`]) and the relay fabric's
    /// wire credit plane
    /// ([`crate::gateway::RelayFabric::enable_wire_credit_returns`]).
    pub fn site_of_nodes(&self) -> Vec<u16> {
        let max = self
            .sites
            .iter()
            .flat_map(|s| s.nodes.iter())
            .map(|n| n.0)
            .max();
        let mut map = vec![u16::MAX; max.map_or(0, |m| m as usize + 1)];
        for (i, site) in self.sites.iter().enumerate() {
            for &n in &site.nodes {
                map[n.0 as usize] = i as u16;
            }
        }
        map
    }

    /// Builds the site-partitioning metadata for
    /// [`SimWorld::enable_sharding`]: every node of site `i` goes to
    /// shard lane `i + 1` (lane 0 stays the control lane for top-level
    /// driving and nodes admitted after the map was built), with the
    /// lookahead from [`GridTopology::shard_lookahead`].
    pub fn shard_map(&self, world: &SimWorld) -> simnet::ShardMap {
        let sites = self.layout.site_count();
        let mut map = simnet::ShardMap::new((sites + 1) as u16, self.shard_lookahead(world));
        for site in 0..sites {
            for &node in self.layout.site_nodes(site) {
                map.assign(node, (site + 1) as u16);
            }
        }
        map
    }

    /// Recomputes the routing table (after manual topology edits). A grid
    /// on hierarchical routes recomputes through
    /// [`GridRoutes::compute_auto`] — if the edit broke gateway isolation,
    /// this falls back to the flat oracle (counted in
    /// [`crate::route::hier_fallbacks`]) instead of panicking; a grid
    /// already on flat routes stays flat.
    pub fn recompute_routes(&mut self, world: &SimWorld) {
        self.routes = match &self.routes {
            GridRoutes::Hier(_) => GridRoutes::compute_auto(world, &self.layout),
            GridRoutes::Flat(_) => GridRoutes::Flat(crate::route::RouteTable::compute(world)),
        };
    }

    /// Swaps the installed routes for the flat all-pairs oracle (exact
    /// same costs on gateway-isolated grids; O(N²) storage — ablation and
    /// oracle checks only).
    pub fn use_flat_routes(&mut self, world: &SimWorld) {
        self.routes = GridRoutes::Flat(crate::route::RouteTable::compute(world));
    }

    /// Applies one churn delta to the grid's routes and layout. A grid on
    /// hierarchical routes reconverges incrementally
    /// ([`crate::hier::HierRouteTable::apply_delta`]); a grid on the flat
    /// oracle has no delta machinery, so it updates the layout for
    /// join/leave and recomputes the full table (link/gateway masks are
    /// modeled upstream by the selector's down set there).
    pub fn apply_delta(
        &mut self,
        world: &SimWorld,
        delta: &BackboneDelta,
    ) -> Result<ReconvergeStats, IsolationViolation> {
        match &mut self.routes {
            GridRoutes::Hier(hier) => {
                let stats = hier.apply_delta(world, delta)?;
                self.layout = hier.layout().clone();
                Ok(stats)
            }
            GridRoutes::Flat(_) => {
                match delta {
                    BackboneDelta::SiteJoin { gateways, nodes } => {
                        self.layout.add_site_ranked(gateways, nodes.iter().copied());
                    }
                    BackboneDelta::SiteLeave(site) => {
                        self.layout.remove_site(*site);
                    }
                    _ => {}
                }
                self.routes = GridRoutes::Flat(crate::route::RouteTable::compute(world));
                Ok(ReconvergeStats::default())
            }
        }
    }

    /// Builds `spec` into the *running* world and admits it as a new
    /// site: its gateways are spliced onto `backbones` (every existing
    /// backbone network when `None` — the star convention) and the
    /// routing table reconverges via a [`BackboneDelta::SiteJoin`].
    /// Returns the new site's index and the reconvergence receipt.
    pub fn admit_site(
        &mut self,
        world: &mut SimWorld,
        spec: &SiteSpec,
        backbones: Option<&[NetworkId]>,
    ) -> Result<(usize, ReconvergeStats), IsolationViolation> {
        let site = build_site(world, spec);
        let splice: Vec<NetworkId> = match backbones {
            Some(list) => list.to_vec(),
            None => self.backbones.clone(),
        };
        for &bb in &splice {
            for &gw in &site.gateways {
                world.attach(gw, bb);
            }
        }
        let delta = BackboneDelta::SiteJoin {
            gateways: site.gateways.clone(),
            nodes: site.nodes.clone(),
        };
        self.sites.push(site);
        let index = self.sites.len() - 1;
        let stats = self.apply_delta(world, &delta)?;
        Ok((index, stats))
    }

    /// Drains the site at `index` out of the grid: routes reconverge via
    /// a [`BackboneDelta::SiteLeave`] and the site record is tombstoned
    /// (its slot stays so other site indices remain stable). The caller
    /// owns the runtime-level quiesce (see `core`'s drain path); this is
    /// the topology/routing half.
    pub fn drain_site(
        &mut self,
        world: &SimWorld,
        index: usize,
    ) -> Result<ReconvergeStats, IsolationViolation> {
        let stats = self.apply_delta(world, &BackboneDelta::SiteLeave(index))?;
        self.sites[index].nodes.clear();
        self.sites[index].gateways.clear();
        Ok(stats)
    }
}

fn build_site(world: &mut SimWorld, spec: &SiteSpec) -> Site {
    assert!(
        spec.gateways >= 1 && spec.nodes >= spec.gateways,
        "a site needs at least its gateway nodes"
    );
    let san = spec.san.as_ref().map(|s| world.add_network(s.clone()));
    let lan = world.add_network(spec.lan.clone());
    let mut nodes = Vec::with_capacity(spec.nodes);
    for i in 0..spec.nodes {
        let name = if i == 0 {
            format!("{}-gw", spec.name)
        } else if i < spec.gateways {
            format!("{}-gw{}", spec.name, i + 1)
        } else {
            format!("{}{}", spec.name, i)
        };
        let node = world.add_node(&name);
        if let Some(san) = san {
            world.attach(node, san);
        }
        world.attach(node, lan);
        nodes.push(node);
    }
    Site {
        name: spec.name.clone(),
        gateway: nodes[0],
        gateways: nodes[..spec.gateways].to_vec(),
        nodes,
        san,
        lan,
    }
}

fn finish(world: &SimWorld, sites: Vec<Site>, backbones: Vec<NetworkId>) -> GridTopology {
    let mut layout = SiteLayout::new();
    for site in &sites {
        layout.add_site_ranked(&site.gateways, site.nodes.iter().copied());
    }
    let routes = GridRoutes::compute_auto(world, &layout);
    GridTopology {
        sites,
        backbones,
        layout,
        routes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::NetworkClass;

    #[test]
    fn star_isolates_sites_behind_gateways() {
        let mut w = SimWorld::new(1);
        let g = GridTopology::two_sites(&mut w, 4);
        let a1 = g.site(0).node(1);
        let b1 = g.site(1).node(1);
        // Non-gateway nodes across sites share no network…
        assert!(w.networks_between(a1, b1).is_empty());
        // …but a route exists, through both gateways.
        let route = g.routes.route(a1, b1).unwrap();
        assert_eq!(
            route.relays().collect::<Vec<_>>(),
            vec![g.site(0).gateway, g.site(1).gateway]
        );
        assert_eq!(route.hop_count(), 3);
        // Intra-site pairs still reach each other directly over the SAN.
        let a2 = g.site(0).node(2);
        let intra = g.routes.route(a1, a2).unwrap();
        assert!(!intra.is_relayed());
        assert_eq!(
            w.network(intra.hops[0].network).spec.class,
            NetworkClass::San
        );
    }

    #[test]
    fn gateways_reach_backbone_directly() {
        let mut w = SimWorld::new(1);
        let g = GridTopology::two_sites(&mut w, 2);
        let gw_a = g.site(0).gateway;
        let gw_b = g.site(1).gateway;
        let r = g.routes.route(gw_a, gw_b).unwrap();
        assert_eq!(r.hop_count(), 1);
        assert_eq!(r.hops[0].network, g.backbones[0]);
    }

    #[test]
    fn ring_routes_take_the_short_way_round() {
        let mut w = SimWorld::new(1);
        let specs: Vec<SiteSpec> = (0..4)
            .map(|i| SiteSpec::lan_cluster(format!("s{i}"), 2))
            .collect();
        let g = GridTopology::ring(&mut w, &specs, NetworkSpec::vthd_wan());
        assert_eq!(g.backbones.len(), 4);
        // Adjacent sites: one backbone segment between the gateways.
        let r = g
            .routes
            .route(g.site(0).gateway, g.site(1).gateway)
            .unwrap();
        assert_eq!(r.hop_count(), 1);
        // Opposite sites: two segments, through one intermediate gateway.
        let r = g
            .routes
            .route(g.site(0).gateway, g.site(2).gateway)
            .unwrap();
        assert_eq!(r.hop_count(), 2);
        assert_eq!(r.relays().count(), 1);
    }

    #[test]
    fn cluster_of_clusters_spans_three_backbone_levels() {
        let mut w = SimWorld::new(1);
        let regions = vec![
            vec![
                SiteSpec::san_cluster("eu-a", 2),
                SiteSpec::san_cluster("eu-b", 2),
            ],
            vec![
                SiteSpec::san_cluster("us-a", 2),
                SiteSpec::san_cluster("us-b", 2),
            ],
        ];
        let g = GridTopology::cluster_of_clusters(
            &mut w,
            &regions,
            NetworkSpec::vthd_wan(),
            NetworkSpec::lossy_internet(),
        );
        // 2 regional networks + 1 global backbone.
        assert_eq!(g.backbones.len(), 3);
        // A worker in eu-b to a worker in us-b crosses: eu-b LAN, the EU
        // regional net, the global backbone, the US regional net, us-b LAN.
        let src = g.site(1).node(1);
        let dst = g.site(3).node(1);
        let info = g.routes.path_info(&w, src, dst).unwrap();
        assert_eq!(info.hop_count, 5);
        assert_eq!(info.worst_class, NetworkClass::Internet);
        assert_eq!(info.relays.len(), 4);
    }

    #[test]
    fn multi_gateway_site_exposes_ranked_gateways() {
        let mut w = SimWorld::new(1);
        let g = GridTopology::star(
            &mut w,
            &[
                SiteSpec::san_cluster("a", 4).with_gateways(2),
                SiteSpec::san_cluster("b", 3),
            ],
            NetworkSpec::vthd_wan(),
        );
        let site = g.site(0);
        assert_eq!(site.gateways.len(), 2);
        assert_eq!(site.gateway, site.gateways[0], "primary is rank 0");
        assert_eq!(site.gateways, site.nodes[..2].to_vec());
        // Both gateways touch the backbone; plain workers do not.
        for &gw in &site.gateways {
            assert!(w.network(g.backbones[0]).members().contains(&gw));
        }
        assert!(!w.network(g.backbones[0]).members().contains(&site.node(2)));
        assert_eq!(g.all_gateways().len(), 3);
        assert_eq!(g.gateways().len(), 2, "one primary per site");
        assert_eq!(g.layout.site_gateways(0), &site.gateways[..]);
        assert!(g.layout.is_gateway(site.gateways[1]));
        assert!(!g.layout.is_gateway(site.node(3)));
    }

    /// Regression: a site-bridging direct link (gateway isolation broken)
    /// must fall back to the flat oracle — with routes still correct —
    /// instead of panicking as older revisions did.
    #[test]
    fn broken_isolation_falls_back_to_flat_without_panicking() {
        let mut w = SimWorld::new(9);
        let mut g = GridTopology::two_sites(&mut w, 3);
        assert_eq!(g.routes.kind(), "hier");
        let before = crate::route::hier_fallbacks();
        // A direct LAN between two plain workers bridges the sites.
        let a1 = g.site(0).node(1);
        let b1 = g.site(1).node(1);
        let shortcut = w.add_network(NetworkSpec::ethernet_100());
        w.attach(a1, shortcut);
        w.attach(b1, shortcut);
        g.recompute_routes(&w);
        assert_eq!(g.routes.kind(), "flat", "fallback to the oracle");
        assert!(crate::route::hier_fallbacks() > before);
        // The flat table knows the shortcut.
        let r = g.routes.route(a1, b1).unwrap();
        assert_eq!(r.hop_count(), 1);
        assert_eq!(r.hops[0].network, shortcut);
    }

    #[test]
    fn trunk_lookaheads_follow_the_backbone_shape() {
        // Star: every site pair shares the one backbone.
        let mut w = SimWorld::new(1);
        let g = GridTopology::two_sites(&mut w, 3);
        let t = g.trunk_lookaheads(&w);
        let wan_latency = w.network(g.backbones[0]).spec.latency;
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(0, 1), Some(wan_latency));
        assert_eq!(t.get(1, 0), Some(wan_latency));
        assert_eq!(g.shard_lookahead(&w), wan_latency);

        // Ring: only adjacent sites share a segment.
        let mut w = SimWorld::new(2);
        let specs: Vec<SiteSpec> = (0..4)
            .map(|i| SiteSpec::lan_cluster(format!("s{i}"), 2))
            .collect();
        let g = GridTopology::ring(&mut w, &specs, NetworkSpec::vthd_wan());
        let t = g.trunk_lookaheads(&w);
        assert_eq!(t.len(), 8, "4 segments, both directions");
        assert!(t.get(0, 1).is_some() && t.get(3, 0).is_some());
        assert_eq!(t.get(0, 2), None, "opposite sites share no trunk");

        // The node → site map covers every node exactly once.
        let site_of = g.site_of_nodes();
        for (i, site) in g.sites.iter().enumerate() {
            for &n in &site.nodes {
                assert_eq!(site_of[n.0 as usize], i as u16);
            }
        }
    }

    #[test]
    fn same_build_sequence_yields_identical_routes() {
        let build = || {
            let mut w = SimWorld::new(99);
            let g = GridTopology::two_sites(&mut w, 3);
            g.routes
        };
        assert_eq!(build(), build());
    }
}
