//! Two-level hierarchical routing: per-site tables + a gateway backbone.
//!
//! The flat [`RouteTable`](crate::route::RouteTable) runs Dijkstra from
//! every node over the whole clique-expanded world — O(N·E log N) build
//! time and O(N²) next-hop storage, which caps it around 10³ nodes. Real
//! grids are not flat: fast homogeneous networks live *inside* a site,
//! slow heterogeneous WANs *between* sites, and every cross-site path is
//! forced through the site gateways. [`HierRouteTable`] exploits exactly
//! that structure:
//!
//! 1. **intra-site tables** — all-pairs Dijkstra computed per site, over
//!    that site's local subgraph only (its nodes, its SAN/LAN fabrics);
//! 2. **a backbone table** — one node per gateway, edges from the
//!    WAN/backbone networks, its own small all-pairs Dijkstra;
//! 3. **a composed resolver** — `source → local gateway → backbone gateway
//!    path → destination gateway → destination`, materialized lazily per
//!    lookup (and memoized by the selector's route cache upstream).
//!
//! Build cost collapses from O(N·E log N) to O(Σ per-site work +
//! G·E_wan log G) and storage from O(N²) to O(Σ site² + G²). On a
//! gateway-isolated grid (only gateways touch inter-site networks — what
//! every [`crate::builder::GridTopology`] builder produces) the composed
//! routes are **cost-equal** to the flat oracle on every reachable pair:
//! any flat path between different sites must cross both gateways, its
//! intra-site prefix/suffix cannot beat the site-local shortest path (the
//! only exit is the gateway itself), and its gateway-to-gateway middle
//! visits only gateway nodes, i.e. lives entirely in the backbone graph.

use std::collections::HashMap;
use std::mem::size_of;

use simnet::{NetworkId, NodeId, SimWorld};

use crate::route::{dijkstra_subgraph, map_bytes, Hop, PathInfo, Route};

/// Site membership metadata of a hierarchical grid: which site each node
/// belongs to and which node is each site's gateway. Produced by the
/// [`crate::builder::GridTopology`] builders; hand-built layouts are
/// supported through [`SiteLayout::add_site`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SiteLayout {
    /// Node → site index.
    site_of: HashMap<NodeId, usize>,
    /// Per site: the member nodes, in registration order.
    sites: Vec<Vec<NodeId>>,
    /// Per site: the gateway node (the only member allowed on inter-site
    /// networks).
    gateways: Vec<NodeId>,
}

impl SiteLayout {
    /// An empty layout.
    pub fn new() -> SiteLayout {
        SiteLayout::default()
    }

    /// Registers one site from its gateway and member nodes (the gateway
    /// must be among the members). Returns the site index.
    pub fn add_site(&mut self, gateway: NodeId, nodes: impl IntoIterator<Item = NodeId>) -> usize {
        let index = self.sites.len();
        let nodes: Vec<NodeId> = nodes.into_iter().collect();
        assert!(
            nodes.contains(&gateway),
            "site gateway {gateway} must be one of the site's nodes"
        );
        for &n in &nodes {
            let prev = self.site_of.insert(n, index);
            assert!(prev.is_none(), "node {n} registered in two sites");
        }
        self.sites.push(nodes);
        self.gateways.push(gateway);
        index
    }

    /// The site `node` belongs to, if registered.
    pub fn site_of(&self, node: NodeId) -> Option<usize> {
        self.site_of.get(&node).copied()
    }

    /// The gateway of site `site`.
    pub fn gateway(&self, site: usize) -> NodeId {
        self.gateways[site]
    }

    /// Every gateway, in site order.
    pub fn gateways(&self) -> &[NodeId] {
        &self.gateways
    }

    /// The member nodes of site `site`, in registration order.
    pub fn site_nodes(&self, site: usize) -> &[NodeId] {
        &self.sites[site]
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Total number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.site_of.len()
    }
}

/// Two-level hierarchical routing tables: per-site next hops plus a
/// gateway-level backbone, composed lazily per lookup. See the module
/// docs for the cost model and the cost-equality argument.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HierRouteTable {
    layout: SiteLayout,
    /// Next hop / cost for ordered pairs *within* one site (pairs across
    /// sites never appear here, so one map serves every site).
    intra_next: HashMap<(NodeId, NodeId), Hop>,
    intra_cost: HashMap<(NodeId, NodeId), u64>,
    /// Next hop / cost for ordered *gateway* pairs over the backbone
    /// graph.
    bb_next: HashMap<(NodeId, NodeId), Hop>,
    bb_cost: HashMap<(NodeId, NodeId), u64>,
}

impl HierRouteTable {
    /// Computes the two-level tables for `world` under `layout`.
    ///
    /// Networks are classified by membership: a network whose members all
    /// belong to one site is part of that site's local subgraph; a network
    /// spanning several sites is a backbone link and **must** touch only
    /// gateway nodes (the gateway-isolated invariant every
    /// [`crate::builder::GridTopology`] builder maintains — violating it
    /// panics, because the two-level decomposition would silently return
    /// wrong costs). Networks with members outside the layout are ignored:
    /// the hierarchical table covers the grid's own nodes only.
    ///
    /// Deterministic: same creation order in, bit-identical tables out.
    pub fn compute(world: &SimWorld, layout: &SiteLayout) -> HierRouteTable {
        let mut site_nets: Vec<Vec<NetworkId>> = vec![Vec::new(); layout.site_count()];
        let mut backbone_nets: Vec<NetworkId> = Vec::new();
        'nets: for net in world.network_ids() {
            let members = world.network(net).members();
            let mut seen_site: Option<usize> = None;
            let mut spans_sites = false;
            for &m in members {
                let Some(site) = layout.site_of(m) else {
                    // A member outside the layout: the network is not part
                    // of the grid; skip it entirely.
                    continue 'nets;
                };
                match seen_site {
                    None => seen_site = Some(site),
                    Some(s) if s != site => spans_sites = true,
                    Some(_) => {}
                }
            }
            if spans_sites {
                for &m in members {
                    let site = layout.site_of(m).expect("checked above");
                    assert!(
                        layout.gateway(site) == m,
                        "hierarchical routing requires gateway-isolated sites: network \
                         {net} spans sites but node {m} is not its site's gateway"
                    );
                }
                backbone_nets.push(net);
            } else if let Some(site) = seen_site {
                site_nets[site].push(net);
            }
        }

        let mut table = HierRouteTable {
            layout: layout.clone(),
            ..Default::default()
        };
        for (site, nets) in site_nets.iter().enumerate() {
            let nodes = layout.site_nodes(site);
            dijkstra_subgraph(
                world,
                nodes,
                nets,
                nodes,
                &mut table.intra_next,
                &mut table.intra_cost,
            );
        }
        dijkstra_subgraph(
            world,
            layout.gateways(),
            &backbone_nets,
            layout.gateways(),
            &mut table.bb_next,
            &mut table.bb_cost,
        );
        table
    }

    /// The site layout the table was computed under.
    pub fn layout(&self) -> &SiteLayout {
        &self.layout
    }

    /// Decomposes the `src → dst` lookup into its up-to-three legs:
    /// `(intra src→gw_s, backbone gw_s→gw_d, intra gw_d→dst)`, where the
    /// endpoints of an empty leg coincide. Returns `None` when either node
    /// is outside the layout or any leg is unreachable.
    #[allow(clippy::type_complexity)]
    fn legs(
        &self,
        src: NodeId,
        dst: NodeId,
    ) -> Option<(
        Option<(NodeId, NodeId)>,
        Option<(NodeId, NodeId)>,
        Option<(NodeId, NodeId)>,
    )> {
        let ss = self.layout.site_of(src)?;
        let ds = self.layout.site_of(dst)?;
        if ss == ds {
            if src == dst {
                return Some((None, None, None));
            }
            return self.intra_cost.contains_key(&(src, dst)).then_some((
                Some((src, dst)),
                None,
                None,
            ));
        }
        let gs = self.layout.gateway(ss);
        let gd = self.layout.gateway(ds);
        let up = if src == gs {
            None
        } else {
            if !self.intra_cost.contains_key(&(src, gs)) {
                return None;
            }
            Some((src, gs))
        };
        if !self.bb_cost.contains_key(&(gs, gd)) {
            return None;
        }
        let down = if gd == dst {
            None
        } else {
            if !self.intra_cost.contains_key(&(gd, dst)) {
                return None;
            }
            Some((gd, dst))
        };
        Some((up, Some((gs, gd)), down))
    }

    /// Whether any route (direct or relayed) exists from `src` to `dst`.
    pub fn reachable(&self, src: NodeId, dst: NodeId) -> bool {
        self.legs(src, dst).is_some()
    }

    /// The additive path cost from `src` to `dst` (0 for `src == dst`),
    /// if a route exists. Cost-equal to the flat oracle on every
    /// reachable pair of a gateway-isolated grid.
    pub fn cost(&self, src: NodeId, dst: NodeId) -> Option<u64> {
        let (up, bb, down) = self.legs(src, dst)?;
        let leg = |m: &HashMap<(NodeId, NodeId), u64>, l: Option<(NodeId, NodeId)>| {
            l.map_or(0, |pair| m[&pair])
        };
        Some(leg(&self.intra_cost, up) + leg(&self.bb_cost, bb) + leg(&self.intra_cost, down))
    }

    /// The next hop from `src` towards `dst`, if a route exists. O(1):
    /// the composed route is never materialized.
    pub fn next_hop(&self, src: NodeId, dst: NodeId) -> Option<Hop> {
        let (up, bb, down) = self.legs(src, dst)?;
        if let Some(pair) = up {
            return self.intra_next.get(&pair).copied();
        }
        if let Some(pair) = bb {
            return self.bb_next.get(&pair).copied();
        }
        let pair = down?;
        self.intra_next.get(&pair).copied()
    }

    /// The full route from `src` to `dst`, materialized lazily from the
    /// three legs (the selector's route cache memoizes the result).
    pub fn route(&self, src: NodeId, dst: NodeId) -> Option<Route> {
        let (up, bb, down) = self.legs(src, dst)?;
        let mut hops = Vec::new();
        if let Some(pair) = up {
            self.walk(&self.intra_next, pair, &mut hops)?;
        }
        if let Some(pair) = bb {
            self.walk(&self.bb_next, pair, &mut hops)?;
        }
        if let Some(pair) = down {
            self.walk(&self.intra_next, pair, &mut hops)?;
        }
        Some(Route { src, dst, hops })
    }

    /// Aggregate path characteristics for the route from `src` to `dst`.
    pub fn path_info(&self, world: &SimWorld, src: NodeId, dst: NodeId) -> Option<PathInfo> {
        let route = self.route(src, dst)?;
        let cost = self.cost(src, dst)?;
        Some(PathInfo::for_route(world, &route, cost))
    }

    /// Appends the hops of one leg by walking its next-hop map.
    fn walk(
        &self,
        next: &HashMap<(NodeId, NodeId), Hop>,
        (from, to): (NodeId, NodeId),
        hops: &mut Vec<Hop>,
    ) -> Option<()> {
        let mut at = from;
        while at != to {
            let hop = next.get(&(at, to)).copied()?;
            hops.push(hop);
            at = hop.node;
            assert!(
                hops.len() <= next.len() + 1,
                "routing loop from {from} to {to}"
            );
        }
        Some(())
    }

    /// Number of stored table entries (intra-site pairs + backbone pairs)
    /// — the O(Σ site² + G²) that replaces the flat table's O(N²).
    pub fn table_entries(&self) -> usize {
        self.intra_next.len() + self.bb_next.len()
    }

    /// Estimated resident bytes of the tables (same estimator as
    /// [`crate::route::RouteTable::table_bytes`]).
    pub fn table_bytes(&self) -> usize {
        let hop_entry = size_of::<(NodeId, NodeId)>() + size_of::<Hop>();
        let cost_entry = size_of::<(NodeId, NodeId)>() + size_of::<u64>();
        map_bytes(self.intra_next.len() + self.bb_next.len(), hop_entry)
            + map_bytes(self.intra_cost.len() + self.bb_cost.len(), cost_entry)
            + self.layout.node_count() * (size_of::<NodeId>() + size_of::<usize>() + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{GridTopology, SiteSpec};
    use crate::route::RouteTable;
    use simnet::NetworkSpec;

    /// Flat oracle comparison over every ordered pair of the grid.
    fn assert_cost_equal(world: &SimWorld, grid: &GridTopology) {
        let flat = RouteTable::compute(world);
        let hier = match &grid.routes {
            crate::route::GridRoutes::Hier(h) => h.clone(),
            other => panic!("builders must default to hierarchical routes, got {other:?}"),
        };
        let nodes = grid.all_nodes();
        for &a in &nodes {
            for &b in &nodes {
                assert_eq!(
                    flat.reachable(a, b),
                    hier.reachable(a, b),
                    "reachability of {a} -> {b}"
                );
                assert_eq!(flat.cost(a, b), hier.cost(a, b), "cost of {a} -> {b}");
                // The composed route, when it exists, must be a valid
                // walk whose per-hop costs sum to the claimed total.
                if let Some(route) = hier.route(a, b) {
                    let mut at = a;
                    let mut sum = 0;
                    for hop in &route.hops {
                        assert!(world.network(hop.network).members().contains(&at));
                        assert!(world.network(hop.network).members().contains(&hop.node));
                        sum += crate::route::link_cost(world, hop.network);
                        at = hop.node;
                    }
                    assert_eq!(at, b);
                    assert_eq!(Some(sum), hier.cost(a, b));
                }
            }
        }
    }

    #[test]
    fn star_grid_matches_flat_oracle() {
        let mut w = SimWorld::new(1);
        let grid = GridTopology::star(
            &mut w,
            &[
                SiteSpec::san_cluster("a", 4),
                SiteSpec::lan_cluster("b", 3),
                SiteSpec::san_cluster("c", 2),
            ],
            NetworkSpec::vthd_wan(),
        );
        assert_cost_equal(&w, &grid);
    }

    #[test]
    fn ring_grid_matches_flat_oracle() {
        let mut w = SimWorld::new(2);
        let specs: Vec<SiteSpec> = (0..5)
            .map(|i| SiteSpec::lan_cluster(format!("s{i}"), 1 + i % 3))
            .collect();
        let grid = GridTopology::ring(&mut w, &specs, NetworkSpec::vthd_wan());
        assert_cost_equal(&w, &grid);
    }

    #[test]
    fn cluster_of_clusters_matches_flat_oracle() {
        let mut w = SimWorld::new(3);
        let regions = vec![
            vec![
                SiteSpec::san_cluster("eu-a", 3),
                SiteSpec::lan_cluster("eu-b", 2),
            ],
            vec![
                SiteSpec::san_cluster("us-a", 2),
                SiteSpec::san_cluster("us-b", 3),
            ],
        ];
        let grid = GridTopology::cluster_of_clusters(
            &mut w,
            &regions,
            NetworkSpec::vthd_wan(),
            NetworkSpec::lossy_internet(),
        );
        assert_cost_equal(&w, &grid);
    }

    #[test]
    fn next_hop_chain_reaches_the_destination() {
        let mut w = SimWorld::new(4);
        let grid = GridTopology::two_sites(&mut w, 3);
        let hier = match &grid.routes {
            crate::route::GridRoutes::Hier(h) => h.clone(),
            _ => unreachable!(),
        };
        let src = grid.site(0).node(1);
        let dst = grid.site(1).node(2);
        // Walking next_hop hop by hop (what the relay fabric does) must
        // converge on the destination along the composed route.
        let route = hier.route(src, dst).unwrap();
        let mut at = src;
        let mut walked = Vec::new();
        while at != dst {
            let hop = hier.next_hop(at, dst).expect("chain stays reachable");
            walked.push(hop);
            at = hop.node;
            assert!(walked.len() <= 16, "next-hop chain must terminate");
        }
        assert_eq!(walked, route.hops);
    }

    #[test]
    fn nodes_outside_the_layout_are_unreachable() {
        let mut w = SimWorld::new(5);
        let grid = GridTopology::two_sites(&mut w, 2);
        let island = w.add_node("island");
        let hier = HierRouteTable::compute(&w, &grid.layout);
        assert!(!hier.reachable(grid.site(0).node(1), island));
        assert!(hier.cost(island, grid.site(0).gateway).is_none());
        assert!(hier.route(island, island).is_none());
    }

    #[test]
    #[should_panic(expected = "gateway-isolated")]
    fn non_gateway_on_a_backbone_network_is_refused() {
        let mut w = SimWorld::new(6);
        let grid = GridTopology::two_sites(&mut w, 3);
        // Attach a plain worker of site 0 straight to the backbone.
        w.attach(grid.site(0).node(1), grid.backbones[0]);
        let _ = HierRouteTable::compute(&w, &grid.layout);
    }

    #[test]
    fn recomputation_is_deterministic() {
        let build = || {
            let mut w = SimWorld::new(7);
            let grid = GridTopology::two_sites(&mut w, 3);
            HierRouteTable::compute(&w, &grid.layout)
        };
        assert_eq!(build(), build());
    }
}
