//! Two-level hierarchical routing: per-site tables + a gateway backbone,
//! with multiple (ranked) gateways per site and failover-aware lookups.
//!
//! The flat [`RouteTable`](crate::route::RouteTable) runs Dijkstra from
//! every node over the whole clique-expanded world — O(N·E log N) build
//! time and O(N²) next-hop storage, which caps it around 10³ nodes. Real
//! grids are not flat: fast homogeneous networks live *inside* a site,
//! slow heterogeneous WANs *between* sites, and every cross-site path is
//! forced through the site gateways. [`HierRouteTable`] exploits exactly
//! that structure:
//!
//! 1. **intra-site tables** — all-pairs Dijkstra computed per site, over
//!    that site's local subgraph only (its nodes, its SAN/LAN fabrics);
//! 2. **a backbone table** — one node per gateway, edges from the
//!    WAN/backbone networks *plus* virtual intra-site edges between the
//!    gateways of one site (weighted by the site-local shortest path), its
//!    own small all-pairs Dijkstra;
//! 3. **a composed resolver** — `source → exit gateway → backbone gateway
//!    path → entry gateway → destination`, minimized over every (exit,
//!    entry) gateway pair of the two sites, materialized lazily per lookup
//!    (and memoized by the selector's route cache upstream).
//!
//! Build cost collapses from O(N·E log N) to O(Σ per-site work +
//! G·E_wan log G) and storage from O(N²) to O(Σ site² + G²). On a
//! gateway-isolated grid (only gateways touch inter-site networks — what
//! every [`crate::builder::GridTopology`] builder produces) the composed
//! routes are **cost-equal** to the flat oracle on every reachable pair:
//! any flat path decomposes into maximal within-site segments and backbone
//! hops; every within-site segment starts and ends at a gateway of that
//! site (the only nodes with backbone attachments) or at the endpoints, so
//! it cannot beat the site-local shortest path, and the gateway-waypoint
//! skeleton of the path lives entirely in the backbone graph (whose
//! virtual intra edges cover paths that cut *through* a site between two
//! of its gateways).
//!
//! With more than one gateway per site the ranking is deterministic:
//! registration order (the builders register the primary first). Lookups
//! can exclude a set of *down* gateways ([`HierRouteTable::route_avoiding`]
//! and friends), which is what gateway failover uses to re-route around a
//! fault-injected gateway through any surviving one.

// simlint: allow-file(D4, reason = "process-wide monotonic counters (full_recomputes / delta_reconvergences) read by benches and smoke tests; Relaxed loads/adds, no cross-thread ordering, no effect on simulation state")
use std::collections::{BTreeSet, HashMap};
use std::mem::size_of;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

use simnet::{NetworkId, NodeId, SimWorld};

use crate::route::{dijkstra_subgraph, map_bytes, Hop, PathInfo, Route};

/// Full-table builds ([`HierRouteTable::try_compute`]) since process
/// start. Together with [`delta_reconvergences`] this is how benches and
/// smoke tests prove churn was absorbed *without* full recomputation.
static FULL_RECOMPUTES: AtomicU64 = AtomicU64::new(0);
/// Incremental reconvergences ([`HierRouteTable::apply_delta`]) since
/// process start.
static DELTA_RECONVERGENCES: AtomicU64 = AtomicU64::new(0);

/// Times a hierarchical table was built from scratch (process-wide,
/// monotonic).
pub fn full_recomputes() -> u64 {
    FULL_RECOMPUTES.load(AtomicOrdering::Relaxed)
}

/// Times a hierarchical table absorbed a [`BackboneDelta`] incrementally
/// (process-wide, monotonic).
pub fn delta_reconvergences() -> u64 {
    DELTA_RECONVERGENCES.load(AtomicOrdering::Relaxed)
}

/// A world that violates the gateway-isolation invariant: `network` spans
/// several sites but `node` — one of its members — is not a gateway of its
/// site. Hierarchical decomposition would silently return wrong costs on
/// such a world, so [`HierRouteTable::try_compute`] refuses it and
/// [`crate::route::GridRoutes::compute_auto`] falls back to the flat
/// oracle instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IsolationViolation {
    /// The inter-site network with a non-gateway member.
    pub network: NetworkId,
    /// The offending non-gateway member.
    pub node: NodeId,
}

impl std::fmt::Display for IsolationViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "network {} spans sites but node {} is not one of its site's gateways",
            self.network, self.node
        )
    }
}

impl std::error::Error for IsolationViolation {}

/// One event of the churn stream: a topology change that
/// [`HierRouteTable::apply_delta`] absorbs by *incremental* backbone
/// reconvergence — the per-site intra tables are carried over untouched
/// (except for a site the delta itself names), and only the small
/// gateway-level backbone Dijkstra is re-run.
///
/// Link and gateway up/down deltas are masks over retained state:
/// replaying flap deltas on *distinct* elements in any order reaches the
/// same fixpoint table, and a down/up round trip on one element restores
/// the table bit for bit (deltas on the same element keep their relative
/// order, like any event log). Site join/leave deltas mutate the layout
/// (join appends a site slot, leave tombstones one), so their order is
/// part of the schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackboneDelta {
    /// `network` went down: it contributes no edges until a matching
    /// [`BackboneDelta::LinkUp`]. Works on backbone links (the usual
    /// case) and on site-local fabrics (which triggers that one site's
    /// intra recompute).
    LinkDown(NetworkId),
    /// `network` came (back) up. A network the table has never seen is
    /// classified against the current layout and admitted — this is how a
    /// freshly-dialed trunk between existing sites joins the backbone.
    LinkUp(NetworkId),
    /// `node` stopped relaying: every backbone edge through it is masked
    /// until a matching [`BackboneDelta::GatewayUp`]. Intra-site
    /// connectivity is deliberately untouched — a gateway that lost its
    /// WAN role still forwards on the site fabric.
    GatewayDown(NodeId),
    /// `node` resumed its backbone role.
    GatewayUp(NodeId),
    /// A new site joined the grid live: `gateways` ranked primary-first,
    /// all of them members of `nodes`. Only the new site's intra table is
    /// computed; existing sites are recomputed only if the join changed
    /// their network classification (a fabric they share with the
    /// newcomer becoming a backbone link).
    SiteJoin {
        /// Ranked gateway list of the joining site (primary first).
        gateways: Vec<NodeId>,
        /// Every member node of the joining site (gateways included).
        nodes: Vec<NodeId>,
    },
    /// The site at this index left the grid: its intra entries are
    /// stripped, its gateways drop out of the backbone, and its slot is
    /// tombstoned so other site indices stay stable.
    SiteLeave(usize),
}

/// What one [`HierRouteTable::apply_delta`] call actually recomputed —
/// the receipt proving the reconvergence was incremental.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReconvergeStats {
    /// Sites whose intra tables were (re)computed by this delta (0 for
    /// pure backbone flaps).
    pub sites_recomputed: usize,
    /// Intra-site table entries carried over untouched.
    pub intra_entries_retained: usize,
    /// Gateway sources the backbone Dijkstra re-ran from (the whole
    /// backbone graph is this small).
    pub bb_sources: usize,
}

/// Site membership metadata of a hierarchical grid: which site each node
/// belongs to and which nodes are each site's gateways (ranked, primary
/// first). Produced by the [`crate::builder::GridTopology`] builders;
/// hand-built layouts are supported through [`SiteLayout::add_site`] /
/// [`SiteLayout::add_site_ranked`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SiteLayout {
    /// Node → site index.
    site_of: HashMap<NodeId, usize>,
    /// Per site: the member nodes, in registration order.
    sites: Vec<Vec<NodeId>>,
    /// Per site: the gateway nodes in rank order (primary first) — the
    /// only members allowed on inter-site networks.
    gateways: Vec<Vec<NodeId>>,
}

impl SiteLayout {
    /// An empty layout.
    pub fn new() -> SiteLayout {
        SiteLayout::default()
    }

    /// Registers one single-gateway site from its gateway and member nodes
    /// (the gateway must be among the members). Returns the site index.
    pub fn add_site(&mut self, gateway: NodeId, nodes: impl IntoIterator<Item = NodeId>) -> usize {
        self.add_site_ranked(&[gateway], nodes)
    }

    /// Registers one site with its ranked gateway list (primary first; all
    /// gateways must be among the members). Returns the site index.
    pub fn add_site_ranked(
        &mut self,
        gateways: &[NodeId],
        nodes: impl IntoIterator<Item = NodeId>,
    ) -> usize {
        let index = self.sites.len();
        let nodes: Vec<NodeId> = nodes.into_iter().collect();
        assert!(!gateways.is_empty(), "a site needs at least one gateway");
        for &gw in gateways {
            assert!(
                nodes.contains(&gw),
                "site gateway {gw} must be one of the site's nodes"
            );
        }
        for &n in &nodes {
            let prev = self.site_of.insert(n, index);
            assert!(prev.is_none(), "node {n} registered in two sites");
        }
        self.sites.push(nodes);
        self.gateways.push(gateways.to_vec());
        index
    }

    /// Removes site `site` from the layout and returns its former
    /// members. The slot is tombstoned (left empty) rather than spliced
    /// out, so every other site keeps its index — the stability churn
    /// deltas rely on.
    pub fn remove_site(&mut self, site: usize) -> Vec<NodeId> {
        let nodes = std::mem::take(&mut self.sites[site]);
        self.gateways[site].clear();
        for n in &nodes {
            self.site_of.remove(n);
        }
        nodes
    }

    /// Whether the site slot still has members (a tombstoned slot from
    /// [`SiteLayout::remove_site`] does not).
    pub fn site_is_live(&self, site: usize) -> bool {
        !self.sites[site].is_empty()
    }

    /// The site `node` belongs to, if registered.
    pub fn site_of(&self, node: NodeId) -> Option<usize> {
        self.site_of.get(&node).copied()
    }

    /// The primary gateway of site `site`.
    pub fn gateway(&self, site: usize) -> NodeId {
        self.gateways[site][0]
    }

    /// The gateways of site `site`, in rank order (primary first).
    pub fn site_gateways(&self, site: usize) -> &[NodeId] {
        &self.gateways[site]
    }

    /// Whether `node` is a gateway of its site.
    pub fn is_gateway(&self, node: NodeId) -> bool {
        self.site_of(node)
            .is_some_and(|s| self.gateways[s].contains(&node))
    }

    /// Every gateway of every site, in site order then rank order.
    pub fn gateways(&self) -> Vec<NodeId> {
        self.gateways.iter().flatten().copied().collect()
    }

    /// The member nodes of site `site`, in registration order.
    pub fn site_nodes(&self, site: usize) -> &[NodeId] {
        &self.sites[site]
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Total number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.site_of.len()
    }
}

/// One step of a backbone-graph route: either a real hop across an
/// inter-site network, or a virtual edge that cuts *through* a site
/// between two of its gateways (expanded through the intra-site table
/// when the route is materialized).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BbHop {
    /// Cross `0.network` to reach gateway `0.node`.
    Net(Hop),
    /// Traverse the site interior to the same-site gateway.
    Intra(NodeId),
}

/// The decomposition of one lookup, chosen by gateway-pair minimization.
enum Composed {
    /// Same-site (or same-node) pair served by the intra table alone;
    /// `None` when `src == dst`.
    Local(Option<(NodeId, NodeId)>),
    /// `src →intra→ exit →backbone→ entry →intra→ dst`; an absent leg
    /// means its endpoints coincide.
    Via {
        up: Option<(NodeId, NodeId)>,
        bb: (NodeId, NodeId),
        down: Option<(NodeId, NodeId)>,
    },
}

/// Two-level hierarchical routing tables: per-site next hops plus a
/// gateway-level backbone, composed lazily per lookup. See the module
/// docs for the cost model and the cost-equality argument.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HierRouteTable {
    layout: SiteLayout,
    /// Next hop / cost for ordered pairs *within* one site (pairs across
    /// sites never appear here, so one map serves every site).
    intra_next: HashMap<(NodeId, NodeId), Hop>,
    intra_cost: HashMap<(NodeId, NodeId), u64>,
    /// Next hop / cost for ordered *gateway* pairs over the backbone
    /// graph (inter-site networks plus virtual intra-site gateway edges).
    bb_next: HashMap<(NodeId, NodeId), BbHop>,
    bb_cost: HashMap<(NodeId, NodeId), u64>,
    /// Every gateway in site-then-rank order, and the retained backbone
    /// adjacency `(to index, cost, tie tag, hop)` — kept so failover
    /// lookups can run a fresh Dijkstra that *excludes* down gateways
    /// (the precomputed `bb_next` paths cannot avoid intermediates).
    gw_list: Vec<NodeId>,
    gw_index: HashMap<NodeId, usize>,
    bb_adj: Vec<Vec<(usize, u64, u32, BbHop)>>,
    /// Retained churn state: the per-site / backbone network
    /// classification from the last (re)build, and the currently-masked
    /// elements, kept so [`HierRouteTable::apply_delta`] can reconverge
    /// the backbone without reclassifying the world or recomputing any
    /// untouched site's intra table.
    site_nets: Vec<Vec<NetworkId>>,
    backbone_nets: Vec<NetworkId>,
    down_links: BTreeSet<NetworkId>,
    down_gateways: BTreeSet<NodeId>,
}

/// Classifies every network of `world` against `layout`: site-local nets
/// per site, spanning nets as backbone links (gateway isolation
/// enforced). Nets with fewer than two in-layout members contribute no
/// edges and are dropped. With `strict_islands`, any member outside the
/// layout disqualifies the whole network (the original
/// [`HierRouteTable::try_compute`] island rule); without it, unknown
/// members are individually ignored — the churn rule, where a departed
/// site's gateway may still be attached to a shared backbone. A net in
/// `sticky_backbone` that no longer spans sites (a ring segment left
/// dangling by a departed neighbour) stays a backbone link instead of
/// being demoted to a site fabric, so a clean leave never forces a
/// surviving site's intra recompute.
#[allow(clippy::type_complexity)]
fn classify(
    world: &SimWorld,
    layout: &SiteLayout,
    strict_islands: bool,
    sticky_backbone: &[NetworkId],
) -> Result<(Vec<Vec<NetworkId>>, Vec<NetworkId>), IsolationViolation> {
    let mut site_nets: Vec<Vec<NetworkId>> = vec![Vec::new(); layout.site_count()];
    let mut backbone_nets: Vec<NetworkId> = Vec::new();
    'nets: for net in world.network_ids() {
        let members = world.network(net).members();
        let mut seen_site: Option<usize> = None;
        let mut spans_sites = false;
        let mut known = 0usize;
        for &m in members {
            let Some(site) = layout.site_of(m) else {
                if strict_islands {
                    // A member outside the layout: the network is not part
                    // of the grid; skip it entirely.
                    continue 'nets;
                }
                continue;
            };
            known += 1;
            match seen_site {
                None => seen_site = Some(site),
                Some(s) if s != site => spans_sites = true,
                Some(_) => {}
            }
        }
        if known < 2 {
            continue; // no possible edge among in-layout members
        }
        if spans_sites || sticky_backbone.contains(&net) {
            for &m in members {
                if layout.site_of(m).is_some() && !layout.is_gateway(m) {
                    return Err(IsolationViolation {
                        network: net,
                        node: m,
                    });
                }
            }
            backbone_nets.push(net);
        } else if let Some(site) = seen_site {
            site_nets[site].push(net);
        }
    }
    Ok((site_nets, backbone_nets))
}

impl HierRouteTable {
    /// Computes the two-level tables for `world` under `layout`, refusing
    /// worlds that violate gateway isolation (see [`IsolationViolation`]).
    ///
    /// Networks are classified by membership: a network whose members all
    /// belong to one site is part of that site's local subgraph; a network
    /// spanning several sites is a backbone link and must touch only
    /// gateway nodes (the invariant every
    /// [`crate::builder::GridTopology`] builder maintains — the two-level
    /// decomposition would silently return wrong costs otherwise, so a
    /// violating world is returned as `Err` instead of a wrong table;
    /// [`crate::route::GridRoutes::compute_auto`] turns that `Err` into a
    /// flat-oracle fallback). Networks with members outside the layout are
    /// ignored: the hierarchical table covers the grid's own nodes only.
    ///
    /// Deterministic: same creation order in, bit-identical tables out.
    pub fn try_compute(
        world: &SimWorld,
        layout: &SiteLayout,
    ) -> Result<HierRouteTable, IsolationViolation> {
        let (site_nets, backbone_nets) = classify(world, layout, true, &[])?;
        let mut table = HierRouteTable {
            layout: layout.clone(),
            site_nets,
            backbone_nets,
            ..Default::default()
        };
        for site in 0..table.layout.site_count() {
            let nodes = layout.site_nodes(site);
            dijkstra_subgraph(
                world,
                nodes,
                &table.site_nets[site],
                nodes,
                &mut table.intra_next,
                &mut table.intra_cost,
            );
        }
        table.rebuild_backbone(world);
        FULL_RECOMPUTES.fetch_add(1, AtomicOrdering::Relaxed);
        Ok(table)
    }

    /// Absorbs one churn event by incremental reconvergence: the retained
    /// network classification and every untouched site's intra table are
    /// carried over, and only the gateway-level backbone Dijkstra is
    /// re-run (plus the intra table of a site the delta itself names — a
    /// joining site, or the owner of a flapped site-local fabric).
    ///
    /// Deterministic, and for link/gateway flaps *commutative*: the same
    /// multiset of flap deltas reaches the same fixpoint in any order,
    /// and a down/up round trip restores the table bit for bit. `Err`
    /// only when a delta admits a network that violates gateway
    /// isolation; the table is left unchanged in that case.
    pub fn apply_delta(
        &mut self,
        world: &SimWorld,
        delta: &BackboneDelta,
    ) -> Result<ReconvergeStats, IsolationViolation> {
        let before_intra = self.intra_next.len();
        let mut sites_recomputed = 0usize;
        let mut stripped = 0usize;
        match delta {
            BackboneDelta::LinkDown(net) => {
                self.down_links.insert(*net);
                if let Some(site) = self.site_of_net(*net) {
                    stripped += self.recompute_site_intra(world, site);
                    sites_recomputed += 1;
                }
            }
            BackboneDelta::LinkUp(net) => {
                if !self.down_links.remove(net) {
                    self.admit_link(world, *net)?;
                }
                if let Some(site) = self.site_of_net(*net) {
                    stripped += self.recompute_site_intra(world, site);
                    sites_recomputed += 1;
                }
            }
            BackboneDelta::GatewayDown(node) => {
                self.down_gateways.insert(*node);
            }
            BackboneDelta::GatewayUp(node) => {
                self.down_gateways.remove(node);
            }
            BackboneDelta::SiteJoin { gateways, nodes } => {
                self.layout.add_site_ranked(gateways, nodes.iter().copied());
                let (recomputed, s) = self.reclassify_and_recompute(world)?;
                sites_recomputed += recomputed;
                stripped += s;
            }
            BackboneDelta::SiteLeave(site) => {
                let removed = self.layout.remove_site(*site);
                let gone: BTreeSet<NodeId> = removed.into_iter().collect();
                let before = self.intra_next.len();
                // simlint: allow(D1, reason = "pure key predicate over a ~GB-scale table; the survivor set is visit-order independent and lookups never iterate; a BTreeMap here would regress the events/s floors")
                self.intra_next
                    .retain(|(a, b), _| !gone.contains(a) && !gone.contains(b));
                // simlint: allow(D1, reason = "pure key predicate over a ~GB-scale table; the survivor set is visit-order independent and lookups never iterate; a BTreeMap here would regress the events/s floors")
                self.intra_cost
                    .retain(|(a, b), _| !gone.contains(a) && !gone.contains(b));
                stripped += before - self.intra_next.len();
                self.down_gateways.retain(|g| !gone.contains(g));
                let (recomputed, s) = self.reclassify_and_recompute(world)?;
                sites_recomputed += recomputed;
                stripped += s;
            }
        }
        self.rebuild_backbone(world);
        DELTA_RECONVERGENCES.fetch_add(1, AtomicOrdering::Relaxed);
        Ok(ReconvergeStats {
            sites_recomputed,
            intra_entries_retained: before_intra.saturating_sub(stripped),
            bb_sources: self.gw_list.len(),
        })
    }

    /// Applies a batch of deltas, returning the summed receipts. The
    /// backbone is rebuilt per delta (each step is a consistent table —
    /// what the transient checker inspects), so prefer batching only
    /// where intermediate tables are not observed.
    pub fn apply_deltas(
        &mut self,
        world: &SimWorld,
        deltas: &[BackboneDelta],
    ) -> Result<ReconvergeStats, IsolationViolation> {
        let mut total = ReconvergeStats::default();
        for delta in deltas {
            let s = self.apply_delta(world, delta)?;
            total.sites_recomputed += s.sites_recomputed;
            total.intra_entries_retained = s.intra_entries_retained;
            total.bb_sources = s.bb_sources;
        }
        Ok(total)
    }

    /// Links currently masked by [`BackboneDelta::LinkDown`].
    pub fn down_links(&self) -> &BTreeSet<NetworkId> {
        &self.down_links
    }

    /// Gateways currently masked by [`BackboneDelta::GatewayDown`].
    pub fn down_gateways(&self) -> &BTreeSet<NodeId> {
        &self.down_gateways
    }

    /// The retained per-site network classification (the transient
    /// checker's oracle builds over exactly the nets the table knows).
    pub(crate) fn site_nets(&self) -> &[Vec<NetworkId>] {
        &self.site_nets
    }

    /// The retained backbone-network classification.
    pub(crate) fn backbone_nets(&self) -> &[NetworkId] {
        &self.backbone_nets
    }

    /// The site whose local subgraph `net` belongs to, per the retained
    /// classification.
    fn site_of_net(&self, net: NetworkId) -> Option<usize> {
        self.site_nets.iter().position(|nets| nets.contains(&net))
    }

    /// Classifies a network the table has never seen against the current
    /// layout and admits it (backbone link, or a site-local fabric — the
    /// latter triggers that site's intra recompute via the caller's
    /// [`HierRouteTable::site_of_net`] lookup).
    fn admit_link(&mut self, world: &SimWorld, net: NetworkId) -> Result<(), IsolationViolation> {
        if self.backbone_nets.contains(&net) || self.site_of_net(net).is_some() {
            return Ok(());
        }
        let members = world.network(net).members();
        let mut seen_site: Option<usize> = None;
        let mut spans_sites = false;
        let mut known = 0usize;
        for &m in members {
            let Some(site) = self.layout.site_of(m) else {
                continue;
            };
            known += 1;
            match seen_site {
                None => seen_site = Some(site),
                Some(s) if s != site => spans_sites = true,
                Some(_) => {}
            }
        }
        if known < 2 {
            return Ok(());
        }
        if spans_sites {
            for &m in members {
                if self.layout.site_of(m).is_some() && !self.layout.is_gateway(m) {
                    return Err(IsolationViolation {
                        network: net,
                        node: m,
                    });
                }
            }
            self.backbone_nets.push(net);
        } else if let Some(site) = seen_site {
            self.site_nets[site].push(net);
        }
        Ok(())
    }

    /// Re-runs the classification after a layout change and recomputes
    /// the intra table of exactly those sites whose site-local network
    /// list changed (for a clean join: the new site only). Returns
    /// `(sites recomputed, intra entries stripped)`.
    fn reclassify_and_recompute(
        &mut self,
        world: &SimWorld,
    ) -> Result<(usize, usize), IsolationViolation> {
        let (site_nets, backbone_nets) = classify(world, &self.layout, false, &self.backbone_nets)?;
        let mut recomputed = 0usize;
        let mut stripped = 0usize;
        let changed: Vec<usize> = (0..self.layout.site_count())
            .filter(|&s| {
                self.layout.site_is_live(s)
                    && self.site_nets.get(s).map(Vec::as_slice) != Some(site_nets[s].as_slice())
            })
            .collect();
        self.site_nets = site_nets;
        self.backbone_nets = backbone_nets;
        for site in changed {
            stripped += self.recompute_site_intra(world, site);
            recomputed += 1;
        }
        Ok((recomputed, stripped))
    }

    /// Strips and recomputes one site's intra table over its current
    /// site-local networks minus the down links. Returns the number of
    /// entries stripped.
    fn recompute_site_intra(&mut self, world: &SimWorld, site: usize) -> usize {
        let before = self.intra_next.len();
        let layout = &self.layout;
        // simlint: allow(D1, reason = "pure key predicate over a ~GB-scale table; the survivor set is visit-order independent and lookups never iterate; a BTreeMap here would regress the events/s floors")
        self.intra_next
            .retain(|(a, _), _| layout.site_of(*a) != Some(site));
        // simlint: allow(D1, reason = "pure key predicate over a ~GB-scale table; the survivor set is visit-order independent and lookups never iterate; a BTreeMap here would regress the events/s floors")
        self.intra_cost
            .retain(|(a, _), _| layout.site_of(*a) != Some(site));
        let stripped = before - self.intra_next.len();
        let nodes: Vec<NodeId> = self.layout.site_nodes(site).to_vec();
        let nets: Vec<NetworkId> = self.site_nets[site]
            .iter()
            .copied()
            .filter(|n| !self.down_links.contains(n))
            .collect();
        dijkstra_subgraph(
            world,
            &nodes,
            &nets,
            &nodes,
            &mut self.intra_next,
            &mut self.intra_cost,
        );
        stripped
    }

    /// All-pairs Dijkstra over the backbone graph: nodes are the
    /// gateways; edges are the clique expansion of every inter-site
    /// network plus one virtual edge per ordered same-site gateway pair,
    /// weighted by the site-local shortest path. Deterministic
    /// tie-breaking mirrors the flat table's (cost, hops, edge tag,
    /// expanding node); virtual edges tag as `u32::MAX` so they sort after
    /// every real network on ties.
    ///
    /// Masked elements contribute nothing: a down link spawns no edges, a
    /// down gateway neither sources nor receives any (so no backbone path
    /// transits it). This is the one piece churn re-runs per delta — its
    /// cost is O(G·E_bb log G), independent of the site interiors.
    fn rebuild_backbone(&mut self, world: &SimWorld) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        self.bb_next.clear();
        self.bb_cost.clear();

        let gws = self.layout.gateways();
        let n = gws.len();
        let index: HashMap<NodeId, usize> = gws.iter().enumerate().map(|(i, &g)| (g, i)).collect();

        // (to, cost, tag, hop) per gateway, in deterministic build order.
        let mut adj: Vec<Vec<(usize, u64, u32, BbHop)>> = vec![Vec::new(); n];
        for &net in &self.backbone_nets {
            if self.down_links.contains(&net) {
                continue;
            }
            let c = crate::route::link_cost(world, net);
            let members = world.network(net).members();
            for &u in members {
                let Some(&ui) = index.get(&u) else { continue };
                if self.down_gateways.contains(&u) {
                    continue;
                }
                for &v in members {
                    if u != v && !self.down_gateways.contains(&v) {
                        if let Some(&vi) = index.get(&v) {
                            adj[ui].push((
                                vi,
                                c,
                                net.0,
                                BbHop::Net(Hop {
                                    network: net,
                                    node: v,
                                }),
                            ));
                        }
                    }
                }
            }
        }
        for site in 0..self.layout.site_count() {
            let site_gws = self.layout.site_gateways(site);
            for &g1 in site_gws {
                if self.down_gateways.contains(&g1) {
                    continue;
                }
                for &g2 in site_gws {
                    if g1 != g2 && !self.down_gateways.contains(&g2) {
                        if let Some(&c) = self.intra_cost.get(&(g1, g2)) {
                            adj[index[&g1]].push((index[&g2], c, u32::MAX, BbHop::Intra(g2)));
                        }
                    }
                }
            }
        }

        self.gw_index = index;
        self.bb_adj = adj;
        self.gw_list = gws;
        let gws = &self.gw_list;
        let adj = &self.bb_adj;

        for (si, &src) in gws.iter().enumerate() {
            // (cost, hops, tag, expanding node) with the same ordering
            // discipline as the flat table's Entry.
            type Key = (u64, u32, u32, u32);
            let mut best: Vec<Option<Key>> = vec![None; n];
            let mut prev: Vec<Option<(usize, BbHop)>> = vec![None; n];
            let mut heap: BinaryHeap<Reverse<(Key, usize)>> = BinaryHeap::new();
            let start: Key = (0, 0, 0, src.0);
            best[si] = Some(start);
            heap.push(Reverse((start, si)));
            while let Some(Reverse((key, ui))) = heap.pop() {
                if best[ui] != Some(key) {
                    continue;
                }
                for &(vi, c, tag, hop) in &adj[ui] {
                    let cand: Key = (key.0 + c, key.1 + 1, tag, gws[ui].0);
                    if best[vi].is_none() || cand < best[vi].unwrap() {
                        best[vi] = Some(cand);
                        prev[vi] = Some((ui, hop));
                        heap.push(Reverse((cand, vi)));
                    }
                }
            }
            for (di, key) in best.iter().enumerate() {
                let Some(key) = key else { continue };
                if di == si {
                    continue;
                }
                let dst = gws[di];
                self.bb_cost.insert((src, dst), key.0);
                let mut at = di;
                let mut first = None;
                while at != si {
                    let (p, hop) = prev[at].expect("non-src gateway has a predecessor");
                    first = Some(hop);
                    at = p;
                }
                self.bb_next.insert(
                    (src, dst),
                    first.expect("non-src gateway has a predecessor"),
                );
            }
        }
    }

    /// The site layout the table was computed under.
    pub fn layout(&self) -> &SiteLayout {
        &self.layout
    }

    /// Chooses the cheapest decomposition of the `src → dst` lookup,
    /// minimizing over every (exit, entry) gateway pair (ties break on
    /// the lower exit then entry node id — the deterministic
    /// primary/secondary ranking). Same-site pairs compare
    /// the direct intra path against out-and-back gateway compositions,
    /// so costs stay equal to the flat oracle even on worlds where the
    /// backbone shortcuts a site's interior. Returns the decomposition
    /// and its additive cost, or `None` when either node is outside the
    /// layout or no surviving composition exists.
    fn compose(&self, src: NodeId, dst: NodeId) -> Option<(Composed, u64)> {
        let ss = self.layout.site_of(src)?;
        let ds = self.layout.site_of(dst)?;
        let up_gws = self.layout.site_gateways(ss);
        let down_gws = self.layout.site_gateways(ds);

        let mut best: Option<(u64, Composed, (u32, u32))> = None;
        let mut offer = |cost: u64, composed: Composed, tie: (u32, u32)| match &best {
            Some((c, _, t)) if (*c, *t) <= (cost, tie) => {}
            _ => best = Some((cost, composed, tie)),
        };

        if ss == ds {
            if src == dst {
                return Some((Composed::Local(None), 0));
            }
            if let Some(&c) = self.intra_cost.get(&(src, dst)) {
                offer(c, Composed::Local(Some((src, dst))), (0, 0));
            }
        }
        for &gs in up_gws {
            let up_cost = if src == gs {
                Some(0)
            } else {
                self.intra_cost.get(&(src, gs)).copied()
            };
            let Some(up_cost) = up_cost else { continue };
            for &gd in down_gws {
                if gs == gd {
                    continue;
                }
                let Some(&bb) = self.bb_cost.get(&(gs, gd)) else {
                    continue;
                };
                let down_cost = if gd == dst {
                    Some(0)
                } else {
                    self.intra_cost.get(&(gd, dst)).copied()
                };
                let Some(down_cost) = down_cost else { continue };
                offer(
                    up_cost + bb + down_cost,
                    Composed::Via {
                        up: (src != gs).then_some((src, gs)),
                        bb: (gs, gd),
                        down: (gd != dst).then_some((gd, dst)),
                    },
                    (gs.0 + 1, gd.0 + 1),
                );
            }
        }
        best.map(|(c, composed, _)| (composed, c))
    }

    /// Whether any route (direct or relayed) exists from `src` to `dst`.
    pub fn reachable(&self, src: NodeId, dst: NodeId) -> bool {
        self.compose(src, dst).is_some()
    }

    /// The additive path cost from `src` to `dst` (0 for `src == dst`),
    /// if a route exists. Cost-equal to the flat oracle on every
    /// reachable pair of a gateway-isolated grid.
    pub fn cost(&self, src: NodeId, dst: NodeId) -> Option<u64> {
        self.compose(src, dst).map(|(_, c)| c)
    }

    /// The next hop from `src` towards `dst`, if a route exists.
    pub fn next_hop(&self, src: NodeId, dst: NodeId) -> Option<Hop> {
        self.next_hop_of(self.compose(src, dst)?.0)
    }

    fn next_hop_of(&self, composed: Composed) -> Option<Hop> {
        match composed {
            Composed::Local(leg) => {
                let pair = leg?;
                self.intra_next.get(&pair).copied()
            }
            Composed::Via { up, bb, .. } => {
                if let Some(pair) = up {
                    return self.intra_next.get(&pair).copied();
                }
                // No up leg: src is the exit gateway, so the first hop is
                // the backbone leg's (a virtual intra edge expands through
                // the site-local table).
                match self.bb_next.get(&bb).copied()? {
                    BbHop::Net(h) => Some(h),
                    BbHop::Intra(g2) => self.intra_next.get(&(bb.0, g2)).copied(),
                }
            }
        }
    }

    /// The full route from `src` to `dst`, materialized lazily from the
    /// composed legs (the selector's route cache memoizes the result).
    pub fn route(&self, src: NodeId, dst: NodeId) -> Option<Route> {
        let (composed, _) = self.compose(src, dst)?;
        self.materialize(src, dst, composed)
    }

    /// Like [`HierRouteTable::route`], but excluding the `down` gateways:
    /// no down gateway may serve as exit or entry, nor appear anywhere
    /// along the materialized path — *including* as an intermediate of
    /// the backbone leg, which is re-solved by a fresh Dijkstra over the
    /// retained backbone adjacency with the down gateways removed (the
    /// precomputed tables cannot avoid intermediates). This is the
    /// failover lookup: with the primary gateway down, the composition
    /// shifts to the surviving gateways, on rings and multi-level
    /// backbones too.
    pub fn route_avoiding(
        &self,
        src: NodeId,
        dst: NodeId,
        down: &BTreeSet<NodeId>,
    ) -> Option<Route> {
        self.resolve_avoiding(src, dst, down).map(|(r, _)| r)
    }

    /// The additive cost of [`HierRouteTable::route_avoiding`]'s route.
    pub fn cost_avoiding(&self, src: NodeId, dst: NodeId, down: &BTreeSet<NodeId>) -> Option<u64> {
        self.resolve_avoiding(src, dst, down).map(|(_, c)| c)
    }

    /// The next hop of [`HierRouteTable::route_avoiding`]'s route.
    pub fn next_hop_avoiding(
        &self,
        src: NodeId,
        dst: NodeId,
        down: &BTreeSet<NodeId>,
    ) -> Option<Hop> {
        if down.is_empty() {
            return self.next_hop(src, dst);
        }
        self.route_avoiding(src, dst, down)?.first_hop()
    }

    /// The cheapest route (and its cost) from `src` to `dst` that avoids
    /// every gateway in `down`, or `None` when none survives.
    fn resolve_avoiding(
        &self,
        src: NodeId,
        dst: NodeId,
        down: &BTreeSet<NodeId>,
    ) -> Option<(Route, u64)> {
        if down.is_empty() {
            let route = self.route(src, dst)?;
            let cost = self.cost(src, dst)?;
            return Some((route, cost));
        }
        let ss = self.layout.site_of(src)?;
        let ds = self.layout.site_of(dst)?;
        let verify = |route: Route| -> Option<Route> {
            let end = route.hops.len().saturating_sub(1);
            (!route.hops[..end].iter().any(|h| down.contains(&h.node))).then_some(route)
        };

        let mut best: Option<(u64, (u32, u32), Route)> = None;
        let mut offer = |cost: u64, tie: (u32, u32), route: Route| match &best {
            Some((c, t, _)) if (*c, *t) <= (cost, tie) => {}
            _ => best = Some((cost, tie, route)),
        };

        if ss == ds {
            if src == dst {
                return Some((
                    Route {
                        src,
                        dst,
                        hops: Vec::new(),
                    },
                    0,
                ));
            }
            if let Some(&c) = self.intra_cost.get(&(src, dst)) {
                let mut hops = Vec::new();
                if self.walk_intra((src, dst), &mut hops).is_some() {
                    if let Some(r) = verify(Route { src, dst, hops }) {
                        offer(c, (0, 0), r);
                    }
                }
            }
        }
        // One avoiding Dijkstra per live exit gateway of the source site
        // (the backbone graph is tiny — one node per gateway), composed
        // with the precomputed intra legs and verified hop by hop.
        for &gs in self.layout.site_gateways(ss) {
            if down.contains(&gs) {
                continue;
            }
            let up_cost = if src == gs {
                Some(0)
            } else {
                self.intra_cost.get(&(src, gs)).copied()
            };
            let Some(up_cost) = up_cost else { continue };
            let (dist, prev) = self.bb_paths_avoiding(gs, down);
            for &gd in self.layout.site_gateways(ds) {
                if gs == gd || down.contains(&gd) {
                    continue;
                }
                let Some(&gdi) = self.gw_index.get(&gd) else {
                    continue;
                };
                let Some(bb_cost) = dist[gdi] else { continue };
                let down_cost = if gd == dst {
                    Some(0)
                } else {
                    self.intra_cost.get(&(gd, dst)).copied()
                };
                let Some(down_cost) = down_cost else { continue };
                let mut hops = Vec::new();
                if src != gs && self.walk_intra((src, gs), &mut hops).is_none() {
                    continue;
                }
                if self.walk_bb_prev(gs, gd, &prev, &mut hops).is_none() {
                    continue;
                }
                if gd != dst && self.walk_intra((gd, dst), &mut hops).is_none() {
                    continue;
                }
                if let Some(r) = verify(Route { src, dst, hops }) {
                    offer(up_cost + bb_cost.0 + down_cost, (gs.0 + 1, gd.0 + 1), r);
                }
            }
        }
        best.map(|(c, _, r)| (r, c))
    }

    /// Single-source Dijkstra over the retained backbone adjacency from
    /// `gs`, skipping every edge into a `down` gateway. Same tie-breaking
    /// discipline as [`HierRouteTable::compute_backbone`]. Returns
    /// per-gateway-index `(cost key, predecessor)` for walk
    /// reconstruction.
    #[allow(clippy::type_complexity)]
    fn bb_paths_avoiding(
        &self,
        gs: NodeId,
        down: &BTreeSet<NodeId>,
    ) -> (
        Vec<Option<(u64, u32, u32, u32)>>,
        Vec<Option<(usize, BbHop)>>,
    ) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        type Key = (u64, u32, u32, u32);
        let n = self.gw_list.len();
        let mut best: Vec<Option<Key>> = vec![None; n];
        let mut prev: Vec<Option<(usize, BbHop)>> = vec![None; n];
        let Some(&si) = self.gw_index.get(&gs) else {
            return (best, prev);
        };
        let mut heap: BinaryHeap<Reverse<(Key, usize)>> = BinaryHeap::new();
        let start: Key = (0, 0, 0, gs.0);
        best[si] = Some(start);
        heap.push(Reverse((start, si)));
        while let Some(Reverse((key, ui))) = heap.pop() {
            if best[ui] != Some(key) {
                continue;
            }
            for &(vi, c, tag, hop) in &self.bb_adj[ui] {
                if down.contains(&self.gw_list[vi]) {
                    continue;
                }
                let cand: Key = (key.0 + c, key.1 + 1, tag, self.gw_list[ui].0);
                if best[vi].is_none() || cand < best[vi].unwrap() {
                    best[vi] = Some(cand);
                    prev[vi] = Some((ui, hop));
                    heap.push(Reverse((cand, vi)));
                }
            }
        }
        (best, prev)
    }

    /// Expands the backbone walk `gs → gd` from an avoiding Dijkstra's
    /// predecessor chain (virtual intra edges expand through the
    /// site-local tables).
    fn walk_bb_prev(
        &self,
        gs: NodeId,
        gd: NodeId,
        prev: &[Option<(usize, BbHop)>],
        hops: &mut Vec<Hop>,
    ) -> Option<()> {
        let mut chain = Vec::new();
        let mut at = *self.gw_index.get(&gd)?;
        let si = *self.gw_index.get(&gs)?;
        while at != si {
            let (p, hop) = prev[at]?;
            chain.push(hop);
            at = p;
            if chain.len() > prev.len() {
                return None; // corrupt chain; refuse rather than loop
            }
        }
        let mut from = gs;
        for hop in chain.into_iter().rev() {
            match hop {
                BbHop::Net(h) => {
                    hops.push(h);
                    from = h.node;
                }
                BbHop::Intra(g2) => {
                    self.walk_intra((from, g2), hops)?;
                    from = g2;
                }
            }
        }
        Some(())
    }

    fn materialize(&self, src: NodeId, dst: NodeId, composed: Composed) -> Option<Route> {
        let mut hops = Vec::new();
        match composed {
            Composed::Local(leg) => {
                if let Some(pair) = leg {
                    self.walk_intra(pair, &mut hops)?;
                }
            }
            Composed::Via { up, bb, down } => {
                if let Some(pair) = up {
                    self.walk_intra(pair, &mut hops)?;
                }
                self.walk_bb(bb, &mut hops)?;
                if let Some(pair) = down {
                    self.walk_intra(pair, &mut hops)?;
                }
            }
        }
        Some(Route { src, dst, hops })
    }

    /// Aggregate path characteristics for the route from `src` to `dst`.
    pub fn path_info(&self, world: &SimWorld, src: NodeId, dst: NodeId) -> Option<PathInfo> {
        let route = self.route(src, dst)?;
        let cost = self.cost(src, dst)?;
        Some(PathInfo::for_route(world, &route, cost))
    }

    /// Appends the hops of one intra-site leg by walking its next-hop map.
    fn walk_intra(&self, (from, to): (NodeId, NodeId), hops: &mut Vec<Hop>) -> Option<()> {
        let mut at = from;
        while at != to {
            let hop = self.intra_next.get(&(at, to)).copied()?;
            hops.push(hop);
            at = hop.node;
            assert!(
                hops.len() <= self.intra_next.len() + self.bb_next.len() + 1,
                "routing loop from {from} to {to}"
            );
        }
        Some(())
    }

    /// Appends the hops of one backbone leg, expanding virtual intra-site
    /// gateway edges through the intra tables.
    fn walk_bb(&self, (from, to): (NodeId, NodeId), hops: &mut Vec<Hop>) -> Option<()> {
        let mut at = from;
        while at != to {
            match self.bb_next.get(&(at, to)).copied()? {
                BbHop::Net(hop) => {
                    hops.push(hop);
                    at = hop.node;
                }
                BbHop::Intra(g2) => {
                    self.walk_intra((at, g2), hops)?;
                    at = g2;
                }
            }
            assert!(
                hops.len() <= self.intra_next.len() + self.bb_next.len() + 1,
                "routing loop from {from} to {to}"
            );
        }
        Some(())
    }

    /// Number of stored table entries (intra-site pairs + backbone pairs)
    /// — the O(Σ site² + G²) that replaces the flat table's O(N²).
    pub fn table_entries(&self) -> usize {
        self.intra_next.len() + self.bb_next.len()
    }

    /// Estimated resident bytes of the tables (same estimator as
    /// [`crate::route::RouteTable::table_bytes`]).
    pub fn table_bytes(&self) -> usize {
        let hop_entry = size_of::<(NodeId, NodeId)>() + size_of::<Hop>();
        let bb_entry = size_of::<(NodeId, NodeId)>() + size_of::<BbHop>();
        let cost_entry = size_of::<(NodeId, NodeId)>() + size_of::<u64>();
        map_bytes(self.intra_next.len(), hop_entry)
            + map_bytes(self.bb_next.len(), bb_entry)
            + map_bytes(self.intra_cost.len() + self.bb_cost.len(), cost_entry)
            + self.layout.node_count() * (size_of::<NodeId>() + size_of::<usize>() + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{GridTopology, SiteSpec};
    use crate::route::RouteTable;
    use simnet::NetworkSpec;

    /// Flat oracle comparison over every ordered pair of the grid.
    fn assert_cost_equal(world: &SimWorld, grid: &GridTopology) {
        let flat = RouteTable::compute(world);
        let hier = match &grid.routes {
            crate::route::GridRoutes::Hier(h) => h.clone(),
            other => panic!("builders must default to hierarchical routes, got {other:?}"),
        };
        let nodes = grid.all_nodes();
        for &a in &nodes {
            for &b in &nodes {
                assert_eq!(
                    flat.reachable(a, b),
                    hier.reachable(a, b),
                    "reachability of {a} -> {b}"
                );
                assert_eq!(flat.cost(a, b), hier.cost(a, b), "cost of {a} -> {b}");
                // The composed route, when it exists, must be a valid
                // walk whose per-hop costs sum to the claimed total.
                if let Some(route) = hier.route(a, b) {
                    let mut at = a;
                    let mut sum = 0;
                    for hop in &route.hops {
                        assert!(world.network(hop.network).members().contains(&at));
                        assert!(world.network(hop.network).members().contains(&hop.node));
                        sum += crate::route::link_cost(world, hop.network);
                        at = hop.node;
                    }
                    assert_eq!(at, b);
                    assert_eq!(Some(sum), hier.cost(a, b));
                }
            }
        }
    }

    #[test]
    fn star_grid_matches_flat_oracle() {
        let mut w = SimWorld::new(1);
        let grid = GridTopology::star(
            &mut w,
            &[
                SiteSpec::san_cluster("a", 4),
                SiteSpec::lan_cluster("b", 3),
                SiteSpec::san_cluster("c", 2),
            ],
            NetworkSpec::vthd_wan(),
        );
        assert_cost_equal(&w, &grid);
    }

    #[test]
    fn multi_gateway_star_matches_flat_oracle() {
        let mut w = SimWorld::new(11);
        let grid = GridTopology::star(
            &mut w,
            &[
                SiteSpec::san_cluster("a", 4).with_gateways(2),
                SiteSpec::lan_cluster("b", 5).with_gateways(3),
                SiteSpec::san_cluster("c", 2),
            ],
            NetworkSpec::vthd_wan(),
        );
        assert_cost_equal(&w, &grid);
    }

    #[test]
    fn multi_gateway_cluster_of_clusters_matches_flat_oracle() {
        let mut w = SimWorld::new(12);
        let regions = vec![
            vec![
                SiteSpec::san_cluster("eu-a", 3).with_gateways(2),
                SiteSpec::lan_cluster("eu-b", 2),
            ],
            vec![SiteSpec::san_cluster("us-a", 4).with_gateways(2)],
        ];
        let grid = GridTopology::cluster_of_clusters(
            &mut w,
            &regions,
            NetworkSpec::vthd_wan(),
            NetworkSpec::lossy_internet(),
        );
        assert_cost_equal(&w, &grid);
    }

    #[test]
    fn ring_grid_matches_flat_oracle() {
        let mut w = SimWorld::new(2);
        let specs: Vec<SiteSpec> = (0..5)
            .map(|i| SiteSpec::lan_cluster(format!("s{i}"), 1 + i % 3))
            .collect();
        let grid = GridTopology::ring(&mut w, &specs, NetworkSpec::vthd_wan());
        assert_cost_equal(&w, &grid);
    }

    #[test]
    fn cluster_of_clusters_matches_flat_oracle() {
        let mut w = SimWorld::new(3);
        let regions = vec![
            vec![
                SiteSpec::san_cluster("eu-a", 3),
                SiteSpec::lan_cluster("eu-b", 2),
            ],
            vec![
                SiteSpec::san_cluster("us-a", 2),
                SiteSpec::san_cluster("us-b", 3),
            ],
        ];
        let grid = GridTopology::cluster_of_clusters(
            &mut w,
            &regions,
            NetworkSpec::vthd_wan(),
            NetworkSpec::lossy_internet(),
        );
        assert_cost_equal(&w, &grid);
    }

    #[test]
    fn next_hop_chain_reaches_the_destination() {
        let mut w = SimWorld::new(4);
        let grid = GridTopology::two_sites(&mut w, 3);
        let hier = match &grid.routes {
            crate::route::GridRoutes::Hier(h) => h.clone(),
            _ => unreachable!(),
        };
        let src = grid.site(0).node(1);
        let dst = grid.site(1).node(2);
        // Walking next_hop hop by hop (what the relay fabric does) must
        // converge on the destination along the composed route.
        let route = hier.route(src, dst).unwrap();
        let mut at = src;
        let mut walked = Vec::new();
        while at != dst {
            let hop = hier.next_hop(at, dst).expect("chain stays reachable");
            walked.push(hop);
            at = hop.node;
            assert!(walked.len() <= 16, "next-hop chain must terminate");
        }
        assert_eq!(walked, route.hops);
    }

    #[test]
    fn nodes_outside_the_layout_are_unreachable() {
        let mut w = SimWorld::new(5);
        let grid = GridTopology::two_sites(&mut w, 2);
        let island = w.add_node("island");
        let hier = HierRouteTable::try_compute(&w, &grid.layout).unwrap();
        assert!(!hier.reachable(grid.site(0).node(1), island));
        assert!(hier.cost(island, grid.site(0).gateway).is_none());
        assert!(hier.route(island, island).is_none());
    }

    #[test]
    fn non_gateway_on_a_backbone_network_is_refused_as_err() {
        let mut w = SimWorld::new(6);
        let grid = GridTopology::two_sites(&mut w, 3);
        // Attach a plain worker of site 0 straight to the backbone.
        let worker = grid.site(0).node(1);
        w.attach(worker, grid.backbones[0]);
        let err = HierRouteTable::try_compute(&w, &grid.layout).unwrap_err();
        assert_eq!(err.network, grid.backbones[0]);
        assert_eq!(err.node, worker);
        assert!(err.to_string().contains("not one of its site's gateways"));
    }

    #[test]
    fn avoiding_the_primary_routes_through_the_secondary() {
        let mut w = SimWorld::new(8);
        let grid = GridTopology::star(
            &mut w,
            &[
                SiteSpec::san_cluster("a", 3).with_gateways(2),
                SiteSpec::san_cluster("b", 3).with_gateways(2),
            ],
            NetworkSpec::vthd_wan(),
        );
        let hier = match &grid.routes {
            crate::route::GridRoutes::Hier(h) => h.clone(),
            _ => unreachable!(),
        };
        let src = grid.site(0).node(2);
        let dst = grid.site(1).node(2);
        // Default composition uses the primaries (deterministic ranking).
        let route = hier.route(src, dst).unwrap();
        let relays: Vec<NodeId> = route.relays().collect();
        assert_eq!(
            relays,
            vec![grid.site(0).gateway, grid.site(1).gateway],
            "ties resolve to the primary gateways"
        );
        // With both primaries down, the secondaries carry the route at
        // the same cost (the star backbone reaches every gateway).
        let down: BTreeSet<NodeId> = [grid.site(0).gateway, grid.site(1).gateway]
            .into_iter()
            .collect();
        let alt = hier.route_avoiding(src, dst, &down).unwrap();
        let alt_relays: Vec<NodeId> = alt.relays().collect();
        assert_eq!(
            alt_relays,
            vec![grid.site(0).gateways[1], grid.site(1).gateways[1]],
            "failover shifts to the next-ranked gateways"
        );
        assert_eq!(
            hier.cost_avoiding(src, dst, &down),
            hier.cost(src, dst),
            "a symmetric secondary is cost-equal"
        );
        assert_eq!(
            hier.next_hop_avoiding(src, dst, &down).unwrap(),
            alt.hops[0]
        );
        // Downing every gateway of one site severs the pair.
        let all_down: BTreeSet<NodeId> = grid.site(1).gateways.iter().copied().collect();
        assert!(hier.route_avoiding(src, dst, &all_down).is_none());
    }

    #[test]
    fn avoiding_a_down_intermediate_backbone_gateway_reroutes() {
        // Ring of four 2-gateway sites: the route from site 0 to site 2
        // transits an intermediate site's gateway. Downing that gateway
        // must re-solve the backbone leg through a surviving one (the
        // intermediate site's secondary, or the other way round the
        // ring) — the precomputed per-pair walks alone cannot do this.
        let mut w = SimWorld::new(13);
        let specs: Vec<SiteSpec> = (0..4)
            .map(|i| SiteSpec::lan_cluster(format!("s{i}"), 3).with_gateways(2))
            .collect();
        let grid = GridTopology::ring(&mut w, &specs, NetworkSpec::vthd_wan());
        let hier = match &grid.routes {
            crate::route::GridRoutes::Hier(h) => h.clone(),
            _ => unreachable!(),
        };
        let src = grid.site(0).node(2);
        let dst = grid.site(2).node(2);
        let route = hier.route(src, dst).unwrap();
        let endpoint_gws: Vec<NodeId> = grid
            .site(0)
            .gateways
            .iter()
            .chain(&grid.site(2).gateways)
            .copied()
            .collect();
        let intermediate = route
            .relays()
            .find(|g| !endpoint_gws.contains(g))
            .expect("a 4-site ring route transits an intermediate gateway");
        let down: BTreeSet<NodeId> = [intermediate].into_iter().collect();
        let alt = hier
            .route_avoiding(src, dst, &down)
            .expect("redundancy must survive a down intermediate");
        assert!(
            alt.relays().all(|g| g != intermediate),
            "the re-solved route avoids the corpse"
        );
        assert!(
            hier.cost_avoiding(src, dst, &down).unwrap() >= hier.cost(src, dst).unwrap(),
            "a detour can never beat the unconstrained optimum"
        );
        assert_eq!(
            hier.next_hop_avoiding(src, dst, &down).unwrap(),
            alt.hops[0]
        );
    }

    #[test]
    fn recomputation_is_deterministic() {
        let build = || {
            let mut w = SimWorld::new(7);
            let grid = GridTopology::two_sites(&mut w, 3);
            HierRouteTable::try_compute(&w, &grid.layout).unwrap()
        };
        assert_eq!(build(), build());
    }

    // ------------------------------------------------------------------ //
    // Incremental reconvergence (BackboneDelta)
    // ------------------------------------------------------------------ //

    /// A 4-site ring with two gateways per site: enough redundancy that
    /// any single link or gateway flap leaves every pair reachable.
    fn churn_ring(seed: u64) -> (SimWorld, GridTopology) {
        let mut w = SimWorld::new(seed);
        let specs: Vec<SiteSpec> = (0..4)
            .map(|i| SiteSpec::lan_cluster(format!("s{i}"), 3).with_gateways(2))
            .collect();
        let grid = GridTopology::ring(&mut w, &specs, NetworkSpec::vthd_wan());
        (w, grid)
    }

    #[test]
    fn link_flap_round_trip_restores_the_table_bit_for_bit() {
        let (w, grid) = churn_ring(20);
        let mut hier = HierRouteTable::try_compute(&w, &grid.layout).unwrap();
        let pristine = hier.clone();
        let link = grid.backbones[0];
        let stats = hier
            .apply_delta(&w, &BackboneDelta::LinkDown(link))
            .unwrap();
        assert_eq!(stats.sites_recomputed, 0, "a backbone flap touches no site");
        assert_eq!(
            stats.intra_entries_retained,
            pristine.intra_next.len(),
            "every intra entry is carried over"
        );
        assert_ne!(hier, pristine, "the mask must change the backbone");
        // The ring routes the long way round; nothing is blackholed.
        for &a in &grid.all_nodes() {
            for &b in &grid.all_nodes() {
                assert_eq!(
                    pristine.reachable(a, b),
                    hier.reachable(a, b),
                    "ring redundancy keeps {a} -> {b} reachable"
                );
            }
        }
        hier.apply_delta(&w, &BackboneDelta::LinkUp(link)).unwrap();
        assert_eq!(hier, pristine, "a down/up round trip is lossless");
    }

    #[test]
    fn gateway_down_delta_is_cost_equal_to_route_avoiding() {
        let (w, grid) = churn_ring(21);
        let mut hier = HierRouteTable::try_compute(&w, &grid.layout).unwrap();
        let pristine = hier.clone();
        let victim = grid.site(1).gateway;
        hier.apply_delta(&w, &BackboneDelta::GatewayDown(victim))
            .unwrap();
        let down: BTreeSet<NodeId> = [victim].into_iter().collect();
        for &a in &grid.all_nodes() {
            for &b in &grid.all_nodes() {
                if a == victim || b == victim {
                    continue;
                }
                assert_eq!(
                    hier.cost(a, b),
                    pristine.cost_avoiding(a, b, &down),
                    "table-level reconvergence must match the per-lookup \
                     failover for {a} -> {b}"
                );
            }
        }
        hier.apply_delta(&w, &BackboneDelta::GatewayUp(victim))
            .unwrap();
        assert_eq!(hier, pristine);
    }

    #[test]
    fn flap_deltas_commute_to_the_same_fixpoint() {
        let (w, grid) = churn_ring(22);
        let base = HierRouteTable::try_compute(&w, &grid.layout).unwrap();
        let deltas = [
            BackboneDelta::LinkDown(grid.backbones[0]),
            BackboneDelta::GatewayDown(grid.site(2).gateway),
            BackboneDelta::LinkDown(grid.backbones[2]),
            BackboneDelta::GatewayDown(grid.site(1).gateways[1]),
        ];
        let mut forward = base.clone();
        forward.apply_deltas(&w, &deltas).unwrap();
        let mut reversed = base.clone();
        for d in deltas.iter().rev() {
            reversed.apply_delta(&w, d).unwrap();
        }
        assert_eq!(
            forward, reversed,
            "flap deltas on distinct elements are masks: any ordering \
             reaches the same fixpoint"
        );
    }

    #[test]
    fn site_join_matches_a_full_recompute() {
        let mut w = SimWorld::new(23);
        let mut grid = GridTopology::star(
            &mut w,
            &[
                SiteSpec::san_cluster("a", 3).with_gateways(2),
                SiteSpec::lan_cluster("b", 2),
            ],
            NetworkSpec::vthd_wan(),
        );
        let mut hier = match &grid.routes {
            crate::route::GridRoutes::Hier(h) => h.clone(),
            _ => unreachable!(),
        };
        // Build a third site into the running world and splice it onto
        // the existing star backbone.
        let spec = SiteSpec::lan_cluster("c", 3).with_gateways(2);
        let (site_index, stats) = grid.admit_site(&mut w, &spec, None).unwrap();
        assert_eq!(site_index, 2);
        let site = grid.site(site_index);
        let stats2 = hier
            .apply_delta(
                &w,
                &BackboneDelta::SiteJoin {
                    gateways: site.gateways.clone(),
                    nodes: site.nodes.clone(),
                },
            )
            .unwrap();
        assert_eq!(
            stats2.sites_recomputed, 1,
            "a clean join computes the new site's intra table only"
        );
        assert_eq!(stats.sites_recomputed, 1);
        // The incrementally-reconverged table is bit-identical to a fresh
        // full build under the same layout.
        let fresh = HierRouteTable::try_compute(&w, hier.layout()).unwrap();
        assert_eq!(hier, fresh, "delta join == full recompute");
        assert_eq!(
            grid.routes,
            crate::route::GridRoutes::Hier(fresh),
            "the grid's own delta path agrees"
        );
    }

    #[test]
    fn site_leave_strips_the_site_and_keeps_survivors_cost_equal() {
        let (w, grid) = churn_ring(24);
        let mut grid = grid;
        let mut hier = match &grid.routes {
            crate::route::GridRoutes::Hier(h) => h.clone(),
            _ => unreachable!(),
        };
        let pristine = hier.clone();
        let leaving = 3usize;
        let gone: Vec<NodeId> = grid.site(leaving).nodes.clone();
        hier.apply_delta(&w, &BackboneDelta::SiteLeave(leaving))
            .unwrap();
        let stats = grid.drain_site(&w, leaving).unwrap();
        assert_eq!(
            stats.sites_recomputed, 0,
            "a clean leave recomputes nothing"
        );
        for &g in &gone {
            assert!(!hier.reachable(g, g), "departed nodes drop out entirely");
            assert!(hier.layout().site_of(g).is_none());
        }
        // Survivors re-route around the hole (ring: the long way) and
        // never *through* the departed gateways.
        let departed: BTreeSet<NodeId> = gone.iter().copied().collect();
        for s in 0..3usize {
            for d in 0..3usize {
                let a = grid.site(s).node(1);
                let b = grid.site(d).node(2);
                assert_eq!(
                    hier.cost(a, b),
                    pristine.cost_avoiding(a, b, &departed),
                    "survivor pair {a} -> {b}"
                );
                if let Some(route) = hier.route(a, b) {
                    assert!(
                        route.relays().all(|r| !departed.contains(&r)),
                        "no route may transit the departed site"
                    );
                }
            }
        }
    }
}
