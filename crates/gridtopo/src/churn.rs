//! Seeded churn schedules and the transient-safety checker.
//!
//! Incremental reconvergence ([`crate::hier::HierRouteTable::apply_delta`])
//! is only worth trusting if the table is *safe at every step of the
//! transition*, not just at the fixpoint — the Chameleon lesson from
//! transient-safe BGP reconfiguration. This module provides both halves
//! of that verification:
//!
//! * [`inject_link_churn`] — a seeded, replayable schedule of link and
//!   gateway flaps (every down paired with a later up), with
//!   [`ChurnSchedule::shuffled`] producing order-randomized replays of
//!   the same flap multiset;
//! * [`check_transients`] — asserts, against a masked shortest-path
//!   oracle rebuilt from the table's own retained classification, that
//!   the current routing state has **no loops** (every next-hop chain
//!   terminates), **no blackholes** (every pair the oracle can reach is
//!   routed, end to end, over usable links only) and **no phantom or
//!   mispriced routes** (everything the table routes exists in the
//!   masked world at exactly the oracle's cost);
//! * [`replay_churn`] — replays a schedule delta by delta, running the
//!   checker at every reconvergence step.

use std::collections::{BTreeSet, BinaryHeap, HashMap, VecDeque};

use simnet::{NetworkId, NodeId, SimRng, SimWorld};

use crate::builder::GridTopology;
use crate::hier::{BackboneDelta, IsolationViolation, ReconvergeStats};
use crate::route::{link_cost, GridRoutes};

/// A seeded, replayable schedule of churn deltas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnSchedule {
    /// The deltas, in injection order.
    pub deltas: Vec<BackboneDelta>,
}

impl ChurnSchedule {
    /// How many down flaps the schedule carries.
    pub fn downs(&self) -> usize {
        self.deltas
            .iter()
            .filter(|d| {
                matches!(
                    d,
                    BackboneDelta::LinkDown(_) | BackboneDelta::GatewayDown(_)
                )
            })
            .count()
    }

    /// A seeded reordering of the same flap multiset. Per-element order
    /// is preserved (an element's up stays after its down — anything
    /// else would change the *meaning*, not just the order), while the
    /// interleaving across elements is randomized. Flap deltas on
    /// distinct elements commute, so every such ordering must reach the
    /// same fixpoint — which is exactly what the randomized-interleaving
    /// property test asserts.
    pub fn shuffled(&self, seed: u64) -> ChurnSchedule {
        let mut rng = SimRng::seeded(seed);
        // One FIFO queue per flapped element; draining queues in random
        // order preserves per-element causality.
        let mut queues: Vec<(ChurnElement, VecDeque<BackboneDelta>)> = Vec::new();
        for delta in &self.deltas {
            let elem = ChurnElement::of(delta);
            match queues.iter_mut().find(|(e, _)| *e == elem) {
                Some((_, q)) => q.push_back(delta.clone()),
                None => {
                    let mut q = VecDeque::new();
                    q.push_back(delta.clone());
                    queues.push((elem, q));
                }
            }
        }
        let mut deltas = Vec::with_capacity(self.deltas.len());
        while !queues.is_empty() {
            let pick = rng.gen_range(0, queues.len() as u64) as usize;
            let (_, q) = &mut queues[pick];
            deltas.push(q.pop_front().expect("nonempty queue"));
            if q.is_empty() {
                queues.remove(pick);
            }
        }
        ChurnSchedule { deltas }
    }
}

/// The element a flap delta acts on (sites are never flapped — joins and
/// leaves go through the admit/drain lifecycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChurnElement {
    Link(NetworkId),
    Gateway(NodeId),
}

impl ChurnElement {
    fn of(delta: &BackboneDelta) -> ChurnElement {
        match delta {
            BackboneDelta::LinkDown(n) | BackboneDelta::LinkUp(n) => ChurnElement::Link(*n),
            BackboneDelta::GatewayDown(g) | BackboneDelta::GatewayUp(g) => {
                ChurnElement::Gateway(*g)
            }
            BackboneDelta::SiteJoin { .. } | BackboneDelta::SiteLeave(_) => {
                unreachable!("churn schedules carry flap deltas only")
            }
        }
    }
}

/// Generates a seeded flap schedule over the grid's redundant elements:
/// backbone links (only when the grid has more than one, so a flap
/// degrades the backbone instead of partitioning it) and redundant
/// gateways (rank ≥ 1 — every site keeps its primary, so no site loses
/// its last ingress). Each down is paired with a later up, and downs/ups
/// interleave pseudo-randomly, so the grid passes through partially
/// degraded intermediate states — the states the transient checker
/// exists for. Deterministic in `(grid, seed, flaps)`.
pub fn inject_link_churn(grid: &GridTopology, seed: u64, flaps: usize) -> ChurnSchedule {
    let mut rng = SimRng::seeded(seed);
    let mut pool: Vec<ChurnElement> = Vec::new();
    if grid.backbones.len() > 1 {
        pool.extend(grid.backbones.iter().map(|&n| ChurnElement::Link(n)));
    }
    for site in &grid.sites {
        pool.extend(
            site.gateways
                .iter()
                .skip(1)
                .map(|&g| ChurnElement::Gateway(g)),
        );
    }
    let mut deltas = Vec::with_capacity(flaps * 2);
    let mut pending_up: Vec<ChurnElement> = Vec::new();
    let mut remaining = flaps;
    while remaining > 0 || !pending_up.is_empty() {
        let up: Vec<&ChurnElement> = pool.iter().filter(|e| !pending_up.contains(e)).collect();
        let emit_down =
            remaining > 0 && !up.is_empty() && (pending_up.is_empty() || rng.gen_bool(0.6));
        if emit_down {
            let victim = *up[rng.gen_range(0, up.len() as u64) as usize];
            deltas.push(match victim {
                ChurnElement::Link(n) => BackboneDelta::LinkDown(n),
                ChurnElement::Gateway(g) => BackboneDelta::GatewayDown(g),
            });
            pending_up.push(victim);
            remaining -= 1;
        } else if !pending_up.is_empty() {
            let pick = rng.gen_range(0, pending_up.len() as u64) as usize;
            deltas.push(match pending_up.remove(pick) {
                ChurnElement::Link(n) => BackboneDelta::LinkUp(n),
                ChurnElement::Gateway(g) => BackboneDelta::GatewayUp(g),
            });
        } else {
            break; // nothing flappable at all
        }
    }
    ChurnSchedule { deltas }
}

/// One transient-invariant violation found by [`check_transients`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransientViolation {
    /// A next-hop chain revisited a node.
    RoutingLoop {
        /// Pair whose chain looped.
        src: NodeId,
        /// Destination being walked towards.
        dst: NodeId,
    },
    /// The masked oracle reaches the pair but the table does not, or the
    /// table's chain dead-ends before the destination.
    Blackhole {
        /// Source of the lost pair.
        src: NodeId,
        /// Unreached destination.
        dst: NodeId,
    },
    /// The table routes a pair over a link or relay the masked world
    /// cannot carry (a down link, a down gateway used as a relay, or a
    /// pair the oracle cannot reach at all).
    PhantomRoute {
        /// Source of the phantom pair.
        src: NodeId,
        /// Its claimed destination.
        dst: NodeId,
    },
    /// Table and oracle disagree on the shortest-path cost.
    CostMismatch {
        /// Source of the mispriced pair.
        src: NodeId,
        /// Its destination.
        dst: NodeId,
        /// What the table charges.
        table: u64,
        /// What the masked oracle computes.
        oracle: u64,
    },
}

/// Min-heap entry for the oracle Dijkstra (cost only — the oracle
/// compares *costs*, which are unique minima regardless of tie-breaks).
#[derive(PartialEq, Eq)]
struct OracleEntry(u64, NodeId);

impl Ord for OracleEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.cmp(&self.0).then(other.1 .0.cmp(&self.1 .0))
    }
}

impl PartialOrd for OracleEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Checks the grid's current routing state against a masked
/// shortest-path oracle, returning every transient-invariant violation
/// (empty means the step is safe: no loops, no blackholes, no phantom
/// routes, costs exact).
///
/// The oracle is rebuilt per call from the table's own retained
/// classification with the table's masks applied to the *physical*
/// graph: down links contribute no edges, and a down gateway keeps its
/// intra-site attachments but none on backbone networks (its WAN role is
/// down, its site fabric is not) — exactly the semantics
/// [`crate::hier::HierRouteTable::apply_delta`] promises. A grid on flat
/// routes is checked against the unmasked world (the flat path
/// recomputes fully and models no masks).
pub fn check_transients(world: &SimWorld, grid: &GridTopology) -> Vec<TransientViolation> {
    // Node and network scope plus masks, by table kind.
    let (nodes, nets, down_links, down_gateways): (
        Vec<NodeId>,
        Vec<NetworkId>,
        BTreeSet<NetworkId>,
        BTreeSet<NodeId>,
    ) = match &grid.routes {
        GridRoutes::Hier(hier) => {
            let layout = hier.layout();
            let nodes: Vec<NodeId> = (0..layout.site_count())
                .filter(|&s| layout.site_is_live(s))
                .flat_map(|s| layout.site_nodes(s).iter().copied())
                .collect();
            let nets: Vec<NetworkId> = hier
                .site_nets()
                .iter()
                .flatten()
                .chain(hier.backbone_nets())
                .copied()
                .collect();
            (
                nodes,
                nets,
                hier.down_links().clone(),
                hier.down_gateways().clone(),
            )
        }
        GridRoutes::Flat(_) => {
            let nodes = grid.all_nodes();
            let nets = world.network_ids();
            (nodes, nets, BTreeSet::new(), BTreeSet::new())
        }
    };
    let backbone: BTreeSet<NetworkId> = match &grid.routes {
        GridRoutes::Hier(hier) => hier.backbone_nets().iter().copied().collect(),
        GridRoutes::Flat(_) => BTreeSet::new(),
    };
    let in_scope: BTreeSet<NodeId> = nodes.iter().copied().collect();

    // Masked physical adjacency: clique-expand each usable net over its
    // usable members.
    let mut adj: HashMap<NodeId, Vec<(NodeId, u64)>> = HashMap::new();
    for &net in &nets {
        if down_links.contains(&net) {
            continue;
        }
        let cost = link_cost(world, net);
        let usable: Vec<NodeId> = world
            .network(net)
            .members()
            .iter()
            .copied()
            .filter(|m| {
                in_scope.contains(m) && !(backbone.contains(&net) && down_gateways.contains(m))
            })
            .collect();
        for &a in &usable {
            for &b in &usable {
                if a != b {
                    adj.entry(a).or_default().push((b, cost));
                }
            }
        }
    }

    let mut violations = Vec::new();
    let max_walk = nodes.len() + 2;
    for &src in &nodes {
        // Oracle single-source shortest paths from `src`.
        let mut dist: HashMap<NodeId, u64> = HashMap::new();
        let mut heap = BinaryHeap::new();
        dist.insert(src, 0);
        heap.push(OracleEntry(0, src));
        while let Some(OracleEntry(cost, node)) = heap.pop() {
            if dist.get(&node).is_some_and(|&d| d < cost) {
                continue;
            }
            for &(next, edge) in adj.get(&node).map(Vec::as_slice).unwrap_or(&[]) {
                let through = cost + edge;
                if dist.get(&next).is_none_or(|&d| through < d) {
                    dist.insert(next, through);
                    heap.push(OracleEntry(through, next));
                }
            }
        }
        for &dst in &nodes {
            if src == dst {
                continue;
            }
            let oracle = dist.get(&dst).copied();
            let table = grid.routes.cost(src, dst);
            match (table, oracle) {
                (None, None) => continue,
                (None, Some(_)) => {
                    violations.push(TransientViolation::Blackhole { src, dst });
                    continue;
                }
                (Some(_), None) => {
                    violations.push(TransientViolation::PhantomRoute { src, dst });
                    continue;
                }
                (Some(t), Some(o)) if t != o => {
                    violations.push(TransientViolation::CostMismatch {
                        src,
                        dst,
                        table: t,
                        oracle: o,
                    });
                    continue;
                }
                _ => {}
            }
            // Walk the next-hop chain: it must terminate at `dst` without
            // revisiting a node, over usable links and relays only.
            let mut visited = BTreeSet::new();
            let mut cur = src;
            let mut ok = false;
            for _ in 0..max_walk {
                if cur == dst {
                    ok = true;
                    break;
                }
                if !visited.insert(cur) {
                    violations.push(TransientViolation::RoutingLoop { src, dst });
                    ok = true; // already reported
                    break;
                }
                let Some(hop) = grid.routes.next_hop(cur, dst) else {
                    violations.push(TransientViolation::Blackhole { src, dst });
                    ok = true;
                    break;
                };
                let phantom = down_links.contains(&hop.network)
                    || (hop.node != dst
                        && backbone.contains(&hop.network)
                        && down_gateways.contains(&hop.node));
                if phantom {
                    violations.push(TransientViolation::PhantomRoute { src, dst });
                    ok = true;
                    break;
                }
                cur = hop.node;
            }
            if !ok {
                // Exhausted the walk bound without terminating: a loop the
                // visited-set somehow missed cannot happen, but keep the
                // accounting honest.
                violations.push(TransientViolation::RoutingLoop { src, dst });
            }
        }
    }
    violations
}

/// The receipt of one schedule replay: per-step reconvergence stats and
/// every transient violation found along the way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnReplay {
    /// Deltas applied.
    pub steps: usize,
    /// Violations across all steps (empty = transient-safe throughout).
    pub violations: Vec<TransientViolation>,
    /// One reconvergence receipt per delta, in order.
    pub stats: Vec<ReconvergeStats>,
}

/// Replays `schedule` against the grid delta by delta, running
/// [`check_transients`] after every reconvergence step.
pub fn replay_churn(
    world: &SimWorld,
    grid: &mut GridTopology,
    schedule: &ChurnSchedule,
) -> Result<ChurnReplay, IsolationViolation> {
    let mut violations = Vec::new();
    let mut stats = Vec::with_capacity(schedule.deltas.len());
    for delta in &schedule.deltas {
        stats.push(grid.apply_delta(world, delta)?);
        violations.extend(check_transients(world, grid));
    }
    Ok(ChurnReplay {
        steps: schedule.deltas.len(),
        violations,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SiteSpec;
    use simnet::NetworkSpec;

    fn churn_ring(seed: u64) -> (SimWorld, GridTopology) {
        let mut world = SimWorld::new(seed);
        let specs: Vec<SiteSpec> = (0..4)
            .map(|i| SiteSpec::san_cluster(format!("s{i}"), 3).with_gateways(2))
            .collect();
        let grid = GridTopology::ring(&mut world, &specs, NetworkSpec::vthd_wan());
        (world, grid)
    }

    #[test]
    fn seeded_schedules_are_deterministic_and_balanced() {
        let (_, grid) = churn_ring(5);
        let a = inject_link_churn(&grid, 99, 6);
        let b = inject_link_churn(&grid, 99, 6);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(
            a,
            inject_link_churn(&grid, 100, 6),
            "different seed, different order"
        );
        assert_eq!(a.downs(), 6);
        assert_eq!(a.deltas.len(), 12, "every down has its up");
        // Every element's up comes after its down.
        for (i, delta) in a.deltas.iter().enumerate() {
            if matches!(
                delta,
                BackboneDelta::LinkUp(_) | BackboneDelta::GatewayUp(_)
            ) {
                let elem = ChurnElement::of(delta);
                assert!(
                    a.deltas[..i].iter().any(|d| ChurnElement::of(d) == elem
                        && matches!(
                            d,
                            BackboneDelta::LinkDown(_) | BackboneDelta::GatewayDown(_)
                        )),
                    "up without a preceding down at step {i}"
                );
            }
        }
    }

    #[test]
    fn a_clean_grid_has_no_transient_violations() {
        let (world, grid) = churn_ring(7);
        assert_eq!(check_transients(&world, &grid), vec![]);
    }

    #[test]
    fn replayed_churn_is_transient_safe_and_returns_to_the_pristine_table() {
        let (world, mut grid) = churn_ring(11);
        let pristine = grid.routes.clone();
        let schedule = inject_link_churn(&grid, 42, 6);
        let replay = replay_churn(&world, &mut grid, &schedule).unwrap();
        assert_eq!(replay.steps, schedule.deltas.len());
        assert_eq!(
            replay.violations,
            vec![],
            "every intermediate state is loop-free, blackhole-free and cost-exact"
        );
        // Flaps never recompute an intra table.
        assert!(replay.stats.iter().all(|s| s.sites_recomputed == 0));
        // All downs were paired with ups: the fixpoint is the pristine
        // table, bit for bit.
        assert_eq!(grid.routes, pristine);
    }

    #[test]
    fn a_down_gateway_step_is_cost_exact_against_the_masked_oracle() {
        let (world, mut grid) = churn_ring(13);
        let victim = grid.site(1).gateways[1];
        grid.apply_delta(&world, &BackboneDelta::GatewayDown(victim))
            .unwrap();
        assert_eq!(check_transients(&world, &grid), vec![]);
        // And a masked backbone segment on top of it.
        let segment = grid.backbones[2];
        grid.apply_delta(&world, &BackboneDelta::LinkDown(segment))
            .unwrap();
        assert_eq!(check_transients(&world, &grid), vec![]);
    }

    #[test]
    fn a_stale_flat_table_is_flagged() {
        let mut world = SimWorld::new(3);
        let mut grid = GridTopology::two_sites(&mut world, 3);
        grid.use_flat_routes(&world);
        assert_eq!(check_transients(&world, &grid), vec![]);
        // The world grows a direct shortcut the table never learned of:
        // the oracle sees a cheaper path, the table keeps charging the
        // gateway detour.
        let lan = world.add_network(NetworkSpec::ethernet_100());
        world.attach(grid.site(0).node(1), lan);
        world.attach(grid.site(1).node(1), lan);
        let violations = check_transients(&world, &grid);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, TransientViolation::CostMismatch { .. })),
            "staleness must be flagged: {violations:?}"
        );
    }
}
