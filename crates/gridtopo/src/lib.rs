//! # gridtopo — multi-hop routing and gateways for hierarchical grids
//!
//! The paper frames grid communication as sitting "at a crossroads between
//! parallel and distributed worlds": real grids are federations of
//! SAN-equipped clusters joined by WAN backbones, not flat fabrics. This
//! crate makes that shape first-class on top of [`simnet`]:
//!
//! * [`builder`] — [`GridTopology`] builders for star-of-sites,
//!   backbone-ring and cluster-of-clusters layouts, where each site is a
//!   SAN+LAN cluster and only its *gateway* node touches the backbone;
//! * [`route`] — multi-hop routes ([`Route`], [`PathInfo`]) behind the
//!   [`GridRoutes`] enum: the flat all-pairs [`RouteTable`] (Dijkstra
//!   over per-link costs with deterministic tie-breaking, kept as the
//!   correctness oracle) and the scalable default,
//! * [`hier`] — the two-level [`HierRouteTable`]: per-site tables over
//!   each site's local subgraph plus a gateway-level backbone table,
//!   composed lazily per lookup and *cost-equal* to the flat oracle on
//!   gateway-isolated grids;
//! * [`gateway`] — [`RelayFabric`], store-and-forward relay agents on
//!   gateway nodes with per-hop latency, bounded queues and drop /
//!   backpressure accounting.
//!
//! The `padico_core` selector consumes [`GridRoutes`]/[`PathInfo`] so that
//! endpoints sharing no network resolve to a *relayed* link decision
//! instead of failing, memoizing resolved routes in its bounded cache.
//!
//! ## Example
//!
//! ```
//! use gridtopo::{GridTopology, RelayConfig, RelayFabric};
//! use simnet::SimWorld;
//!
//! let mut world = SimWorld::new(7);
//! let grid = GridTopology::two_sites(&mut world, 4);
//! let fabric = RelayFabric::new(grid.routes.clone(), RelayConfig::default());
//! for node in grid.all_nodes() {
//!     fabric.attach(&mut world, node);
//! }
//! let (src, dst) = (grid.site(0).node(1), grid.site(1).node(2));
//! fabric.bind(&mut world, dst, 40, |_world, msg| {
//!     println!("{} bytes relayed from {}", msg.payload.len(), msg.src);
//! });
//! fabric.send(&mut world, src, dst, 40, vec![0u8; 1024]).unwrap();
//! world.run();
//! assert_eq!(fabric.total_relayed(), 2); // both site gateways forwarded it
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builder;
pub mod churn;
pub mod gateway;
pub mod hier;
pub mod route;

pub use builder::{GridTopology, Site, SiteSpec};
pub use churn::{
    check_transients, inject_link_churn, replay_churn, ChurnReplay, ChurnSchedule,
    TransientViolation,
};
pub use gateway::{
    BackpressureMode, GatewayStats, RelayConfig, RelayError, RelayFabric, RelayedMessage,
};
pub use hier::{
    delta_reconvergences, full_recomputes, BackboneDelta, HierRouteTable, IsolationViolation,
    ReconvergeStats, SiteLayout,
};
pub use route::{hier_fallbacks, link_cost, GridRoutes, Hop, PathInfo, Route, RouteTable};
